//! Parallel-vs-serial equivalence suite.
//!
//! The contract of the parkit layer (DESIGN.md "Parallel execution &
//! determinism") is that the thread policy is an execution detail: every
//! result in this workspace is bit-identical whether computed inline,
//! with one worker, or with many. These tests lock that contract down at
//! the three layers where parkit is wired in — trace generation, GBDT
//! training/prediction, and cross-validation — by running each at
//! 1, 2, and 8 threads and demanding byte- or value-identical output.

use gpu_error_prediction::mlkit::crossval::{cross_validate, cross_validate_with};
use gpu_error_prediction::mlkit::dataset::Dataset;
use gpu_error_prediction::mlkit::gbdt::Gbdt;
use gpu_error_prediction::mlkit::model::Classifier;
use gpu_error_prediction::parkit::Threads;
use gpu_error_prediction::titan_sim::config::SimConfig;
use gpu_error_prediction::titan_sim::engine::generate;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// A deterministic, learnable dataset big enough to cross the parallel
/// work-size gates in the GBDT split finder (samples × features ≥ 32768).
fn synthetic_dataset(n: usize, d: usize) -> Dataset {
    let rows: Vec<Vec<f32>> = (0..n)
        .map(|i| {
            (0..d)
                .map(|j| (((i * 31 + j * 17) % 97) as f32) / 97.0)
                .collect()
        })
        .collect();
    let y: Vec<f32> = rows
        .iter()
        .map(|r| if r[0] + r[1] > r[2] + 0.5 { 1.0 } else { 0.0 })
        .collect();
    Dataset::from_rows(&rows, &y).expect("dataset builds")
}

#[test]
fn trace_generation_is_thread_count_invariant() {
    let reference = {
        let cfg = SimConfig::tiny(3).with_threads(Threads::Serial);
        let t = generate(&cfg).expect("trace generates");
        serde_json::to_string(&t).expect("trace serializes")
    };
    for n in THREAD_COUNTS {
        let cfg = SimConfig::tiny(3).with_threads(Threads::Fixed(n));
        let t = generate(&cfg).expect("trace generates");
        let s = serde_json::to_string(&t).expect("trace serializes");
        assert_eq!(s, reference, "trace diverged at {n} threads");
    }
}

#[test]
fn gbdt_predictions_are_thread_count_invariant() {
    let train = synthetic_dataset(1_200, 30); // 36_000 > split-finder gate
    let test = synthetic_dataset(400, 30);

    let fit_predict = |threads: Threads| -> Vec<f32> {
        let mut model = Gbdt::new()
            .n_trees(25)
            .max_depth(4)
            .min_samples_leaf(5)
            .subsample(0.8)
            .seed(42)
            .threads(threads);
        model.fit(&train).expect("gbdt fits");
        model.predict_proba(&test).expect("gbdt predicts")
    };

    let reference = fit_predict(Threads::Serial);
    assert!(
        reference.iter().any(|&p| p > 0.5) && reference.iter().any(|&p| p < 0.5),
        "degenerate reference predictions"
    );
    for n in THREAD_COUNTS {
        let probs = fit_predict(Threads::Fixed(n));
        // Bit-exact, not approximate: the parallel split finder replicates
        // the serial reduce order including tie-breaks.
        assert_eq!(probs, reference, "predictions diverged at {n} threads");
    }
}

#[test]
fn cross_validation_folds_are_thread_count_invariant() {
    let ds = synthetic_dataset(600, 8);
    let factory = || {
        Gbdt::new()
            .n_trees(10)
            .max_depth(3)
            .min_samples_leaf(2)
            .seed(7)
    };

    let reference = cross_validate(&ds, 5, 11, factory)
        .expect("serial cv runs")
        .folds;
    for n in THREAD_COUNTS {
        let folds = cross_validate_with(&ds, 5, 11, Threads::Fixed(n), factory)
            .expect("parallel cv runs")
            .folds;
        // Per-fold confusion matrices in fold order, not just aggregates.
        assert_eq!(folds, reference, "cv folds diverged at {n} threads");
    }
}

#[test]
fn sbe_threads_env_override_is_parsed() {
    // Auto resolves through SBE_THREADS; don't mutate the process env in a
    // parallel test binary — just check the explicit policies resolve sanely.
    assert_eq!(Threads::Serial.resolve(), 1);
    assert_eq!(Threads::Fixed(0).resolve(), 1);
    assert_eq!(Threads::Fixed(6).resolve(), 6);
    assert!(Threads::Auto.resolve() >= 1);
}
