//! Stream/batch parity: the `streamd` online scoring loop must reproduce
//! the batch TwoStage evaluation bit for bit.
//!
//! One trace, one trained pipeline; the batch path prepares the DS1 split
//! and scores the test window in a single pass, the streaming path
//! replays the trace event by event through `streamd::serve`. Every
//! (aprun, node) in the test window must get a bit-identical probability
//! and the same hard decision — at any thread count and any batching
//! policy — and the streaming obskit metrics snapshot must be
//! byte-identical across thread counts.

use gpu_error_prediction::{mlkit, obskit, parkit, sbepred, streamd, titan_sim};
use mlkit::gbdt::Gbdt;
use sbepred::datasets::DsSplit;
use sbepred::features::{FeatureExtractor, FeatureSpec};
use sbepred::samples::build_samples;
use sbepred::twostage::{prepare_with_extractor, run_classifier};
use std::collections::BTreeMap;
use streamd::artifact::{PipelineArtifact, PipelineModel};
use streamd::serve::{serve, serve_observed, ScorerBackend, ServeConfig};
use titan_sim::config::SimConfig;
use titan_sim::trace::TraceSet;

/// The batch reference: per (aprun, node) probability and prediction.
type RefMap = BTreeMap<(u32, u32), (f32, f32)>;

/// Trains the pipeline on DS1 of tiny(13) and returns the trace, the
/// shippable artifact, the batch reference map, and the test window.
fn train_reference() -> (TraceSet, PipelineArtifact, RefMap, (u64, u64)) {
    let trace = titan_sim::engine::generate(&SimConfig::tiny(13)).expect("trace");
    let samples = build_samples(&trace).expect("samples");
    let fx = FeatureExtractor::new(&trace, &samples).expect("extractor");
    let split = DsSplit::ds1(&trace).expect("split");
    let spec = FeatureSpec::all();
    let prepared = prepare_with_extractor(&fx, &samples, &split, &spec).expect("prepare");
    // Small but non-trivial model so the test stays fast while still
    // exercising real tree traversal in the streaming path.
    let mut model = Gbdt::new().n_trees(20).min_samples_leaf(2).seed(7);
    let outcome = run_classifier(&prepared, &mut model).expect("fit");
    assert!(
        outcome.probabilities.iter().any(|&p| p > 0.0),
        "degenerate reference: no positive probability in the test window"
    );

    let mut reference = RefMap::new();
    for (i, s) in prepared.test_samples.iter().enumerate() {
        reference.insert(
            (s.aprun.0, s.node.0),
            (outcome.probabilities[i], outcome.predictions[i]),
        );
    }
    assert_eq!(reference.len(), prepared.test_samples.len());

    let offenders: Vec<u32> = fx
        .history()
        .offender_nodes_before(split.train_end_min())
        .into_iter()
        .map(|n| n.0)
        .collect();
    let artifact = PipelineArtifact::new(
        spec,
        offenders,
        prepared.scaler.clone(),
        PipelineModel::Gbdt(model),
        split.train_end_min(),
        split.name(),
    );
    (trace, artifact, reference, split.test_window())
}

/// Asserts one serve run reproduces the batch reference bit for bit.
fn assert_parity(report: &streamd::serve::ServeReport, reference: &RefMap) {
    assert_eq!(
        report.scored.len(),
        reference.len(),
        "stream scored a different sample universe than batch"
    );
    for s in &report.scored {
        let (ref_prob, ref_pred) = reference
            .get(&(s.aprun, s.node))
            .unwrap_or_else(|| panic!("stream scored unknown sample ({}, {})", s.aprun, s.node));
        assert_eq!(
            s.probability.to_bits(),
            ref_prob.to_bits(),
            "probability mismatch at (aprun {}, node {}): stream {} vs batch {}",
            s.aprun,
            s.node,
            s.probability,
            ref_prob
        );
        assert_eq!(
            s.predicted,
            *ref_pred >= 0.5,
            "hard decision mismatch at (aprun {}, node {})",
            s.aprun,
            s.node
        );
    }
}

#[test]
fn stream_matches_batch_bit_for_bit_across_thread_counts() {
    let (trace, artifact, reference, (from, until)) = train_reference();
    let mut snapshots: Vec<String> = Vec::new();
    for threads in [
        parkit::Threads::Serial,
        parkit::Threads::Fixed(1),
        parkit::Threads::Fixed(2),
        parkit::Threads::Fixed(8),
    ] {
        let cfg = ServeConfig {
            threads,
            ..ServeConfig::window(from, until)
        };
        let mut alerts: Vec<streamd::serve::Alert> = Vec::new();
        let mut rec = obskit::Recorder::new();
        let report = serve_observed(&trace, &artifact, &cfg, &mut alerts, &mut rec).expect("serve");
        assert_parity(&report, &reference);
        // Alerts are exactly the predicted-positive stage-2 launches.
        assert_eq!(report.n_alerts as usize, alerts.len());
        assert_eq!(
            alerts.len(),
            report.scored.iter().filter(|s| s.predicted).count()
        );
        snapshots.push(rec.snapshot_json());
    }
    let first = &snapshots[0];
    for (i, snap) in snapshots.iter().enumerate() {
        assert_eq!(
            snap, first,
            "metrics snapshot at thread policy #{i} differs from serial"
        );
    }
}

#[test]
fn compiled_backend_matches_batch_across_thread_counts() {
    let (trace, artifact, reference, (from, until)) = train_reference();
    // Reference snapshot from the interpreted serial run: the compiled
    // backend must reproduce it byte for byte at every thread policy —
    // the backend may change cost, never a measurement.
    let interpreted_snapshot = {
        let cfg = ServeConfig {
            threads: parkit::Threads::Serial,
            ..ServeConfig::window(from, until)
        };
        let mut rec = obskit::Recorder::new();
        let mut sink = streamd::serve::NullSink;
        let report = serve_observed(&trace, &artifact, &cfg, &mut sink, &mut rec).expect("serve");
        assert_parity(&report, &reference);
        rec.snapshot_json()
    };
    for threads in [
        parkit::Threads::Serial,
        parkit::Threads::Fixed(1),
        parkit::Threads::Fixed(2),
        parkit::Threads::Fixed(8),
    ] {
        let cfg = ServeConfig {
            threads,
            backend: ScorerBackend::Compiled,
            ..ServeConfig::window(from, until)
        };
        let mut alerts: Vec<streamd::serve::Alert> = Vec::new();
        let mut rec = obskit::Recorder::new();
        let report = serve_observed(&trace, &artifact, &cfg, &mut alerts, &mut rec).expect("serve");
        assert_parity(&report, &reference);
        assert_eq!(report.n_alerts as usize, alerts.len());
        assert_eq!(
            rec.snapshot_json(),
            interpreted_snapshot,
            "compiled snapshot at {threads:?} differs from interpreted serial"
        );
    }
}

#[test]
fn compiled_backend_survives_batching_policies_and_round_trip() {
    let (trace, artifact, reference, (from, until)) = train_reference();
    let shipped =
        PipelineArtifact::from_bytes(&artifact.to_bytes().expect("encode")).expect("decode");
    for (capacity, delay) in [(1, 0), (7, 1), (usize::MAX, u64::MAX)] {
        let cfg = ServeConfig {
            batch_capacity: capacity,
            max_delay_min: delay,
            backend: ScorerBackend::Compiled,
            ..ServeConfig::window(from, until)
        };
        let mut sink = streamd::serve::NullSink;
        let report = serve(&trace, &shipped, &cfg, &mut sink).expect("serve");
        assert_parity(&report, &reference);
    }
}

#[test]
fn batching_policy_never_changes_a_prediction() {
    let (trace, artifact, reference, (from, until)) = train_reference();
    for (capacity, delay) in [(1, 0), (7, 1), (64, 5), (usize::MAX, u64::MAX)] {
        let cfg = ServeConfig {
            batch_capacity: capacity,
            max_delay_min: delay,
            ..ServeConfig::window(from, until)
        };
        let mut sink = streamd::serve::NullSink;
        let report = serve(&trace, &artifact, &cfg, &mut sink).expect("serve");
        assert_parity(&report, &reference);
    }
}

#[test]
fn artifact_round_trip_preserves_parity() {
    let (trace, artifact, reference, (from, until)) = train_reference();
    let shipped =
        PipelineArtifact::from_bytes(&artifact.to_bytes().expect("encode")).expect("decode");
    assert_eq!(shipped.schema_hash(), artifact.schema_hash());
    assert_eq!(shipped.model().threshold(), artifact.model().threshold());
    let cfg = ServeConfig::window(from, until);
    let mut sink = streamd::serve::NullSink;
    let report = serve(&trace, &shipped, &cfg, &mut sink).expect("serve");
    assert_parity(&report, &reference);
}
