//! Replay determinism of the continual-learning loop.
//!
//! The same observed event stream must produce byte-identical drift
//! verdict logs, retrain points, promoted artifact bytes, and post-swap
//! scores — run to run and across `SBE_THREADS` settings. And with the
//! drift loop effectively disabled, the adaptive driver must be a
//! perfect passthrough of `serve_observed`.

use gpu_error_prediction::{driftd, mlkit, obskit, parkit, sbepred, streamd, titan_sim};

use driftd::adapt::{run_adapt, AdaptConfig, AdaptReport};
use driftd::monitor::MonitorConfig;
use driftd::retrain::RetrainConfig;
use driftd::window::WindowConfig;
use mlkit::gbdt::Gbdt;
use mlkit::model::Classifier;
use obskit::Recorder;
use sbepred::datasets::DsSplit;
use sbepred::features::{FeatureExtractor, FeatureSpec};
use sbepred::samples::build_samples;
use sbepred::twostage::prepare_with_extractor;
use streamd::artifact::{PipelineArtifact, PipelineModel};
use streamd::serve::{serve_observed, NullSink, ServeConfig};
use titan_sim::config::SimConfig;
use titan_sim::trace::TraceSet;

/// Builds the trace plus a deliberately *miscalibrated* champion: the
/// GBDT is fitted on inverted labels, so an honest challenger trained
/// on the live window has headroom to win promotion.
fn fixture(invert_labels: bool) -> (TraceSet, PipelineArtifact) {
    let trace = titan_sim::engine::generate(&SimConfig::tiny(13)).expect("trace");
    let samples = build_samples(&trace).expect("samples");
    let fx = FeatureExtractor::new(&trace, &samples).expect("extractor");
    let split = DsSplit::ds1(&trace).expect("split");
    let spec = FeatureSpec::no_telemetry();
    let prepared = prepare_with_extractor(&fx, &samples, &split, &spec).expect("prepare");

    let train = if invert_labels {
        let y: Vec<f32> = prepared
            .train
            .y()
            .iter()
            .map(|&v| if v > 0.5 { 0.0 } else { 1.0 })
            .collect();
        mlkit::dataset::Dataset::new(prepared.train.x().clone(), y).expect("inverted dataset")
    } else {
        prepared.train.clone()
    };
    let mut model = Gbdt::new().n_trees(20).min_samples_leaf(2).seed(7);
    model.fit(&train).expect("fit");

    let offenders: Vec<u32> = fx
        .history()
        .offender_nodes_before(split.train_end_min())
        .into_iter()
        .map(|n| n.0)
        .collect();
    let artifact = PipelineArtifact::new(
        spec,
        offenders,
        prepared.scaler.clone(),
        PipelineModel::Gbdt(model),
        split.train_end_min(),
        split.name(),
    );
    (trace, artifact)
}

/// An aggressive adaptation config: thresholds low enough that the tiny
/// trace's drift signal actually fires, check ticks every hour.
fn aggressive_cfg(from: u64, until: u64, threads: parkit::Threads) -> AdaptConfig {
    let mut serve = ServeConfig::window(from, until);
    serve.threads = threads;
    AdaptConfig {
        serve,
        monitor: MonitorConfig {
            baseline_rows: 64,
            min_current: 32,
            min_labeled: 16,
            ece_threshold: 0.05,
            psi_threshold: 0.05,
            ..MonitorConfig::pinned()
        },
        window: WindowConfig {
            capacity: 4096,
            label_horizon_min: 120,
        },
        retrain: RetrainConfig {
            min_labeled: 48,
            min_holdout: 12,
            n_trees: 12,
            max_depth: 3,
            min_samples_leaf: 2,
            threads,
            ..RetrainConfig::pinned()
        },
        check_every_min: 60,
    }
}

fn run(trace: &TraceSet, artifact: &PipelineArtifact, cfg: &AdaptConfig) -> AdaptReport {
    let mut sink = NullSink;
    let mut rec = Recorder::new();
    run_adapt(trace, artifact, cfg, &mut sink, &mut rec).expect("run_adapt")
}

/// The full fingerprint CI and this suite compare: drift log (verdicts,
/// retrain points, promotions, final generation, scores fnv) plus each
/// promoted artifact checksum.
fn fingerprint(report: &AdaptReport) -> (String, Vec<u64>, u64, u32) {
    (
        report.drift_log(),
        report.promotions.iter().map(|p| p.artifact_fnv).collect(),
        report.scores_fnv,
        report.final_generation,
    )
}

/// The adaptation window the firing tests run over: the whole trace
/// after the champion's training cut, so the drift loop sees weeks of
/// post-deployment launches.
fn adapt_window(trace: &TraceSet) -> (u64, u64) {
    let split = DsSplit::ds1(trace).expect("split");
    (split.train_end_min(), trace.config().total_minutes())
}

#[test]
fn adaptation_fires_and_promotes_on_a_miscalibrated_champion() {
    let (trace, artifact) = fixture(true);
    let (from, until) = adapt_window(&trace);
    let cfg = aggressive_cfg(from, until, parkit::Threads::Fixed(2));
    let report = run(&trace, &artifact, &cfg);

    assert!(
        !report.verdicts.is_empty(),
        "the miscalibrated champion must trip the drift monitor \
         (pairs={}, requests={})",
        report.n_pairs,
        report.n_requests
    );
    assert_eq!(
        report.retrains.len(),
        report.verdicts.len(),
        "every verdict runs exactly one retrain attempt"
    );
    assert!(
        report.final_generation >= 1,
        "an honest challenger must beat the inverted champion at least \
         once; drift log:\n{}",
        report.drift_log()
    );
    assert_eq!(report.promotions.len() as u32, report.final_generation);
    // Generations advance strictly, parent-to-child.
    for (i, p) in report.promotions.iter().enumerate() {
        assert_eq!(p.generation, i as u32 + 1);
        assert!(p.train_from_min < p.train_until_min);
    }
    // Scores still cover the whole request universe.
    assert_eq!(report.scored.len() as u64, report.n_requests);
}

#[test]
fn adaptation_replays_byte_identically() {
    let (trace, artifact) = fixture(true);
    let (from, until) = adapt_window(&trace);
    let cfg = aggressive_cfg(from, until, parkit::Threads::Fixed(2));
    let a = fingerprint(&run(&trace, &artifact, &cfg));
    let b = fingerprint(&run(&trace, &artifact, &cfg));
    assert_eq!(a, b, "same stream must replay to identical drift state");

    // CI hook: export the canonical drift log (verdicts, retrain points,
    // promoted-artifact checksums, final scores fnv) for upload.
    if let Ok(path) = std::env::var("DRIFT_LOG_OUT") {
        std::fs::write(&path, &a.0).expect("write drift log");
    }
}

#[test]
fn adaptation_is_thread_invariant() {
    let (trace, artifact) = fixture(true);
    let (from, until) = adapt_window(&trace);
    let reference = fingerprint(&run(
        &trace,
        &artifact,
        &aggressive_cfg(from, until, parkit::Threads::Fixed(1)),
    ));
    assert!(
        reference.3 >= 1,
        "fixture must promote for the invariance check to bite"
    );
    for threads in [parkit::Threads::Fixed(2), parkit::Threads::Fixed(8)] {
        let got = fingerprint(&run(
            &trace,
            &artifact,
            &aggressive_cfg(from, until, threads),
        ));
        assert_eq!(
            reference, got,
            "verdicts, promoted bytes, and scores must not depend on {threads:?}"
        );
    }
}

#[test]
fn quiet_monitor_is_a_byte_exact_passthrough() {
    // A well-trained champion under the pinned (conservative) monitor:
    // the drift loop should never fire, and the adaptive driver's
    // scores must equal plain serve_observed output byte for byte.
    let (trace, artifact) = fixture(false);
    let split = DsSplit::ds1(&trace).expect("split");
    let (from, until) = split.test_window();
    let serve = ServeConfig::window(from, until);
    let cfg = AdaptConfig {
        serve,
        ..AdaptConfig::window(from, until)
    };
    let adaptive = run(&trace, &artifact, &cfg);
    assert_eq!(
        adaptive.final_generation,
        0,
        "pinned thresholds must not fire on an in-distribution stream; \
         drift log:\n{}",
        adaptive.drift_log()
    );

    let mut sink = NullSink;
    let mut rec = Recorder::new();
    let plain =
        serve_observed(&trace, &artifact, &serve, &mut sink, &mut rec).expect("serve_observed");
    assert_eq!(adaptive.scored.len(), plain.scored.len());
    for (a, p) in adaptive.scored.iter().zip(plain.scored.iter()) {
        assert_eq!((a.minute, a.aprun, a.node), (p.minute, p.aprun, p.node));
        assert_eq!(a.probability.to_bits(), p.probability.to_bits());
        assert_eq!(a.predicted, p.predicted);
        assert_eq!(a.stage2, p.stage2);
    }
}
