//! Fleet/process parity: the `sbed` network daemon must reproduce
//! in-process `streamd` scoring bit for bit.
//!
//! Two anchors:
//!
//! * **Trace-anchored** — a real simulated trace is decomposed into
//!   wire events and driven through a loopback daemon by a mock fleet;
//!   every (aprun, node) probability must match the in-process
//!   `streamd::serve` run on the same trace, bit for bit.
//! * **Synthetic at scale** — a seeded synthetic workload (≥ 100
//!   connections, ≥ 10k requests, 1,600-node topology) scores
//!   identically at 1, 2, and 8 scoring worker threads, and the
//!   recorded request log replays byte-identically (rolling response
//!   checksum, report, and metrics snapshot).

use gpu_error_prediction::{mlkit, obskit, parkit, sbed, sbepred, streamd, titan_sim};
use mlkit::dataset::Dataset;
use mlkit::gbdt::Gbdt;
use mlkit::model::Classifier;
use mlkit::scaler::StandardScaler;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sbed::client::{run_fleet, FleetConfig, FleetOutcome};
use sbed::daemon::{Daemon, DaemonConfig};
use sbed::fleet::{synth_events, SynthConfig};
use sbed::replay::replay_log_file;
use sbed::wire::WireEvent;
use sbepred::datasets::DsSplit;
use sbepred::features::{FeatureExtractor, FeatureSpec};
use sbepred::samples::build_samples;
use sbepred::twostage::prepare_with_extractor;
use std::collections::BTreeMap;
use std::sync::Arc;
use streamd::artifact::{PipelineArtifact, PipelineModel};
use streamd::serve::{serve, NullSink, ServeConfig};
use titan_sim::config::SimConfig;
use titan_sim::topology::Topology;
use titan_sim::trace::TraceSet;

/// (aprun, node) → (probability bits, hard decision).
type ScoreMap = BTreeMap<(u32, u32), (u32, bool)>;

/// Decomposes a trace into the wire events the daemon scores from —
/// the exact same stream `streamd::serve` consumes internally.
fn trace_to_wire_events(trace: &TraceSet) -> Vec<WireEvent> {
    let stream = titan_sim::events::EventStream::new(trace).expect("event stream");
    let catalog = trace.catalog();
    stream
        .map(|ev| match ev {
            titan_sim::events::TraceEvent::Tick { minute } => WireEvent::Tick { minute },
            titan_sim::events::TraceEvent::Launch { minute, aprun } => {
                let run = trace.aprun(aprun).expect("aprun");
                let profile = catalog.profile(run.app_id).expect("profile");
                WireEvent::Launch {
                    minute,
                    aprun: aprun.0,
                    app: run.app_id.0,
                    runtime_min: run.runtime_min(),
                    core_util: profile.core_util,
                    mem_util: profile.mem_util,
                    nodes: run.nodes.iter().map(|n| n.0).collect(),
                }
            }
            titan_sim::events::TraceEvent::SbeVisible {
                minute,
                node,
                app,
                count,
                ..
            } => WireEvent::Sbe {
                minute,
                node: node.0,
                app: app.0,
                count,
            },
        })
        .collect()
}

/// Trains a shippable no-telemetry artifact on DS1 of a tiny trace
/// (telemetry features do not travel on the wire, so network artifacts
/// ship without them).
fn train_wire_artifact() -> (TraceSet, PipelineArtifact, (u64, u64)) {
    let trace = titan_sim::engine::generate(&SimConfig::tiny(13)).expect("trace");
    let samples = build_samples(&trace).expect("samples");
    let fx = FeatureExtractor::new(&trace, &samples).expect("extractor");
    let split = DsSplit::ds1(&trace).expect("split");
    let spec = FeatureSpec::no_telemetry();
    let prepared = prepare_with_extractor(&fx, &samples, &split, &spec).expect("prepare");
    let mut model = Gbdt::new().n_trees(20).min_samples_leaf(2).seed(7);
    model.fit(&prepared.train).expect("fit");
    let offenders: Vec<u32> = fx
        .history()
        .offender_nodes_before(split.train_end_min())
        .into_iter()
        .map(|n| n.0)
        .collect();
    let artifact = PipelineArtifact::new(
        spec,
        offenders,
        prepared.scaler.clone(),
        PipelineModel::Gbdt(model),
        split.train_end_min(),
        split.name(),
    );
    (trace, artifact, split.test_window())
}

/// A deterministic synthetic artifact sized for `n_nodes` (seeded
/// random training rows; model quality is irrelevant — bit-identity of
/// scoring is what the suite checks).
fn synthetic_artifact(n_nodes: u32) -> PipelineArtifact {
    let spec = FeatureSpec::no_telemetry();
    let n = spec.n_features();
    let mut rng = StdRng::seed_from_u64(42);
    let rows: Vec<Vec<f32>> = (0..160)
        .map(|_| (0..n).map(|_| rng.gen::<f32>() * 2.0 - 1.0).collect())
        .collect();
    let y: Vec<f32> = rows
        .iter()
        .map(|r| {
            if r.iter().sum::<f32>() > 0.0 {
                1.0
            } else {
                0.0
            }
        })
        .collect();
    let data = Dataset::from_rows(&rows, &y).expect("dataset");
    let scaler = StandardScaler::fit(&data).expect("scaler");
    let scaled = scaler.transform(&data).expect("transform");
    let mut model = Gbdt::new()
        .n_trees(12)
        .max_depth(3)
        .min_samples_leaf(2)
        .seed(5);
    model.fit(&scaled).expect("fit");
    let offenders: Vec<u32> = (0..n_nodes).step_by(2).collect();
    PipelineArtifact::new(
        spec,
        offenders,
        scaler,
        PipelineModel::Gbdt(model),
        0,
        "synthetic",
    )
}

fn fleet_score_map(outcome: &FleetOutcome) -> ScoreMap {
    let mut map = ScoreMap::new();
    for scores in outcome.scores.values() {
        for e in &scores.entries {
            let prev = map.insert(
                (scores.aprun, e.node),
                (e.probability.to_bits(), e.predicted),
            );
            assert!(
                prev.is_none(),
                "duplicate score for (aprun {}, node {})",
                scores.aprun,
                e.node
            );
        }
    }
    map
}

/// Runs one daemon + fleet pass and returns the fleet outcome plus the
/// daemon's end-of-run report.
fn run_loopback(
    artifact: &PipelineArtifact,
    serve_cfg: &ServeConfig,
    topology: Topology,
    events: &[WireEvent],
    fleet_cfg: &FleetConfig,
    record_log: Option<std::path::PathBuf>,
) -> (FleetOutcome, sbed::daemon::DaemonReport) {
    let mut cfg = DaemonConfig::new("127.0.0.1:0", *serve_cfg, topology);
    cfg.record_log = record_log;
    let daemon = Daemon::spawn(Arc::new(artifact.clone()), cfg).expect("daemon spawns");
    let outcome =
        run_fleet(daemon.addr(), events, fleet_cfg, &obskit::NullClock).expect("fleet run");
    let report = daemon.join().expect("daemon join");
    (outcome, report)
}

#[test]
fn fleet_scores_match_in_process_serve_bit_for_bit() {
    let (trace, artifact, (from, until)) = train_wire_artifact();
    let serve_cfg = ServeConfig::window(from, until);

    // In-process reference on the same trace.
    let mut sink = NullSink;
    let reference = serve(&trace, &artifact, &serve_cfg, &mut sink).expect("serve");
    let mut ref_map = ScoreMap::new();
    for s in &reference.scored {
        ref_map.insert((s.aprun, s.node), (s.probability.to_bits(), s.predicted));
    }
    assert!(!ref_map.is_empty(), "degenerate reference: nothing scored");

    let events = trace_to_wire_events(&trace);
    assert_eq!(events.len() as u64, reference.n_events);

    for conns in [1usize, 7] {
        let (outcome, report) = run_loopback(
            &artifact,
            &serve_cfg,
            trace.config().topology,
            &events,
            &FleetConfig::healthy(conns),
            None,
        );
        assert_eq!(outcome.n_acks, events.len() as u64);
        assert_eq!(report.report.n_events, events.len() as u64);
        assert_eq!(report.n_rejected, 0, "the daemon rejected trace events");
        let fleet_map = fleet_score_map(&outcome);
        assert_eq!(
            fleet_map, ref_map,
            "fleet scores diverged from in-process serve at {conns} connections"
        );
        // The FINISH report's stats must agree with the in-process run.
        assert_eq!(report.report.n_requests, reference.n_requests);
        assert_eq!(report.report.n_stage2, reference.n_stage2);
        assert_eq!(report.report.n_alerts, reference.n_alerts);
    }
}

#[test]
fn fleet_at_scale_is_thread_invariant_and_replays_byte_identically() {
    // ≥ 100 connections, ≥ 10k requests, 1,600-node topology.
    let topology = Topology::scaled().expect("scaled topology");
    let n_nodes = topology.n_nodes();
    let synth = SynthConfig {
        seed: 20_180_625,
        n_nodes,
        minutes: 120,
        launches_per_min: 35,
        max_nodes_per_launch: 8,
        n_apps: 32,
        sbe_per_min: 50,
    };
    let events = synth_events(&synth);
    assert!(
        events.len() >= 10_000,
        "workload too small: {}",
        events.len()
    );
    let artifact = synthetic_artifact(n_nodes);
    let fleet_cfg = FleetConfig::healthy(100);

    let mut runs: Vec<(usize, FleetOutcome, sbed::daemon::DaemonReport)> = Vec::new();
    for workers in [1usize, 2, 8] {
        let serve_cfg = ServeConfig {
            threads: parkit::Threads::Fixed(workers),
            ..ServeConfig::window(0, synth.minutes)
        };
        let log_path =
            std::env::temp_dir().join(format!("sbed_parity_{}_{workers}.bin", std::process::id()));
        let (outcome, report) = run_loopback(
            &artifact,
            &serve_cfg,
            topology,
            &events,
            &fleet_cfg,
            Some(log_path.clone()),
        );
        assert_eq!(outcome.n_acks, events.len() as u64);
        assert_eq!(report.report.n_events, events.len() as u64);
        assert_eq!(report.n_connections, 100);

        // The recorded log replays bit-identically: response stream
        // checksum, report, and metrics snapshot.
        let replayed = replay_log_file(&log_path, &artifact, &serve_cfg, topology).expect("replay");
        assert_eq!(replayed.n_frames, events.len() as u64 + 1); // + FINISH
        assert_eq!(
            replayed.response_fnv, report.response_fnv,
            "replay response stream diverged at {workers} workers"
        );
        assert_eq!(replayed.report, report.report);
        assert_eq!(
            replayed.snapshot, report.snapshot,
            "metrics snapshot not byte-stable under replay at {workers} workers"
        );
        std::fs::remove_file(&log_path).ok();
        runs.push((workers, outcome, report));
    }

    // Worker-thread invariance: identical scores, identical response
    // checksum, identical report, identical snapshot.
    let (_, first_outcome, first_report) = &runs[0];
    let first_map = fleet_score_map(first_outcome);
    assert!(!first_map.is_empty(), "degenerate workload: nothing scored");
    for (workers, outcome, report) in &runs[1..] {
        assert_eq!(
            fleet_score_map(outcome),
            first_map,
            "scores diverged between 1 and {workers} workers"
        );
        assert_eq!(report.response_fnv, first_report.response_fnv);
        assert_eq!(report.report, first_report.report);
        assert_eq!(report.snapshot, first_report.snapshot);
    }
}

#[test]
fn failure_injection_does_not_change_scores() {
    // Designated failure connections corrupt every 3rd frame before
    // retransmitting it clean; the daemon's answers must not move.
    let topology = Topology::tiny().expect("tiny topology");
    let synth = SynthConfig::demo(9, topology.n_nodes());
    let events = synth_events(&synth);
    let artifact = synthetic_artifact(topology.n_nodes());
    let serve_cfg = ServeConfig::window(0, synth.minutes);

    let (clean, clean_report) = run_loopback(
        &artifact,
        &serve_cfg,
        topology,
        &events,
        &FleetConfig::healthy(4),
        None,
    );

    let faulty_cfg = FleetConfig {
        failure_conns: 2,
        corrupt_every: 3,
        ..FleetConfig::healthy(4)
    };
    let (faulty, faulty_report) =
        run_loopback(&artifact, &serve_cfg, topology, &events, &faulty_cfg, None);

    let retries: u64 = faulty.stats.iter().map(|s| s.corruption_retries).sum();
    assert!(retries > 0, "failure injection never fired");
    assert!(faulty_report.n_transport_errors >= retries);
    assert_eq!(fleet_score_map(&faulty), fleet_score_map(&clean));
    assert_eq!(faulty_report.response_fnv, clean_report.response_fnv);
    assert_eq!(faulty_report.report, clean_report.report);
    assert_eq!(faulty_report.snapshot, clean_report.snapshot);
}
