//! End-to-end integration: trace generation → characterization →
//! TwoStage learning, asserting the calibration properties DESIGN.md §5
//! promises and the model behaviours the paper reports.

use gpu_error_prediction::mlkit::gbdt::Gbdt;
use gpu_error_prediction::mlkit::linear::LogisticRegression;
use gpu_error_prediction::sbepred::baselines::{evaluate_scheme, BasicScheme};
use gpu_error_prediction::sbepred::datasets::DsSplit;
use gpu_error_prediction::sbepred::experiments::{characterization, prediction, Lab};
use gpu_error_prediction::sbepred::features::FeatureSpec;
use gpu_error_prediction::sbepred::history::SbeHistory;
use gpu_error_prediction::sbepred::samples::{build_samples, in_window};
use gpu_error_prediction::sbepred::twostage::{prepare, run_classifier};
use gpu_error_prediction::titan_sim::config::SimConfig;
use gpu_error_prediction::titan_sim::engine::{generate, generate_full};
use gpu_error_prediction::titan_sim::trace::TraceSet;

// Seed choice: the statistical assertions below (DESIGN.md §5 calibration
// properties) need the DS1 test window to contain SBE-positive samples.
// Under the in-repo RNG streams (vendor/rand, xoshiro256++ — see
// DESIGN.md "Parallel execution & determinism"), seed 3 yields a tiny
// trace whose final 2-day test window happens to hold zero positives,
// making recall/F1 degenerate (0/0). Seed 13 produces a well-populated
// window (20+ positives) while keeping the positive rate in the
// realistic minority band asserted by `positive_rate_is_a_small_minority`.
fn trace() -> TraceSet {
    generate(&SimConfig::tiny(13)).expect("trace generates")
}

#[test]
fn positive_rate_is_a_small_minority() {
    let t = trace();
    let rate = t.positive_rate();
    assert!(rate > 0.001, "positive rate {rate} too low to learn from");
    assert!(rate < 0.2, "positive rate {rate} too high to be realistic");
}

#[test]
fn offender_nodes_are_a_small_subset_dominated_by_weak_gpus() {
    let (t, faults) = generate_full(&SimConfig::tiny(3)).expect("trace generates");
    let offenders = t.offender_nodes();
    let n = t.config().topology.n_nodes() as usize;
    assert!(
        offenders.len() * 3 < n,
        "{} of {n} nodes offend",
        offenders.len()
    );
    // Most offenders are ground-truth weak GPUs.
    let weak_offenders = offenders
        .iter()
        .filter(|&&node| faults.is_weak(node).expect("valid node"))
        .count();
    assert!(
        weak_offenders * 2 >= offenders.len(),
        "{weak_offenders} of {} offenders are weak",
        offenders.len()
    );
}

#[test]
fn error_concentration_on_few_apps() {
    let t = trace();
    let lab = Lab::new(&t).expect("lab builds");
    let out = characterization::fig3(&lab).expect("fig3 runs");
    let top20 = out.json["top20_share"].as_f64().expect("share present");
    assert!(top20 > 0.7, "top-20% apps hold only {top20}");
}

#[test]
fn affected_periods_are_hotter_and_hungrier() {
    let t = trace();
    let lab = Lab::new(&t).expect("lab builds");
    let t6 = characterization::fig6(&lab).expect("fig6 runs");
    assert!(t6.json["shift"].as_f64().expect("shift") > 0.5);
    let t7 = characterization::fig7(&lab).expect("fig7 runs");
    assert!(t7.json["shift"].as_f64().expect("shift") > 3.0);
}

#[test]
fn cumulative_temperature_does_not_predict_offenders() {
    let t = trace();
    let lab = Lab::new(&t).expect("lab builds");
    let out = characterization::fig5(&lab).expect("fig5 runs");
    let rho = out.json["spearman_temp_vs_offenders"]
        .as_f64()
        .expect("rho present");
    assert!(
        rho.abs() < 0.6,
        "spatial temperature correlation {rho} too strong"
    );
}

#[test]
fn basic_a_high_recall_low_precision() {
    let t = trace();
    let samples = build_samples(&t).expect("samples build");
    let history = SbeHistory::build(&samples).expect("history builds");
    let split = DsSplit::ds1(&t).expect("split fits");
    let (ts, te) = split.test_window();
    let test = in_window(&samples, ts, te);
    let cm = evaluate_scheme(BasicScheme::A, &history, &split, &test).expect("evaluates");
    assert!(cm.recall() > 0.5, "Basic A recall {}", cm.recall());
    assert!(cm.precision() < 0.8, "Basic A precision {}", cm.precision());
}

#[test]
fn twostage_gbdt_beats_basic_a_on_f1() {
    let t = trace();
    let samples = build_samples(&t).expect("samples build");
    let history = SbeHistory::build(&samples).expect("history builds");
    let split = DsSplit::ds1(&t).expect("split fits");
    let (ts, te) = split.test_window();
    let test = in_window(&samples, ts, te);
    let basic = evaluate_scheme(BasicScheme::A, &history, &split, &test).expect("evaluates");

    let prepared = prepare(&t, &split, &FeatureSpec::all()).expect("prepares");
    let mut model = Gbdt::new()
        .n_trees(60)
        .max_depth(5)
        .min_samples_leaf(5)
        .pos_weight(2.0);
    let out = run_classifier(&prepared, &mut model).expect("runs");
    let cm = out.confusion().unwrap();
    assert!(
        cm.f1() > basic.f1(),
        "GBDT F1 {} did not beat Basic A {}",
        cm.f1(),
        basic.f1()
    );
}

#[test]
fn stage2_reduces_training_volume_and_imbalance() {
    let t = trace();
    let split = DsSplit::ds1(&t).expect("split fits");
    let prepared = prepare(&t, &split, &FeatureSpec::all()).expect("prepares");
    assert!(prepared.train.len() * 2 < prepared.train_samples.len());
    assert!(prepared.train.imbalance_ratio() < 25.0);
    // The stage-2 test subset is exactly the offender-node samples.
    assert_eq!(
        prepared.stage2_test_idx.len(),
        prepared.stage2_test_samples.len()
    );
}

#[test]
fn models_share_the_prepared_split() {
    let t = trace();
    let split = DsSplit::ds1(&t).expect("split fits");
    let prepared = prepare(&t, &split, &FeatureSpec::all()).expect("prepares");
    let mut gbdt = Gbdt::new().n_trees(30).min_samples_leaf(5);
    let mut lr = LogisticRegression::new().epochs(30);
    let a = run_classifier(&prepared, &mut gbdt).expect("gbdt runs");
    let b = run_classifier(&prepared, &mut lr).expect("lr runs");
    assert_eq!(a.truth, b.truth);
    // GBDT probabilities must differ from LR's (distinct models).
    assert_ne!(a.probabilities, b.probabilities);
}

#[test]
fn all_experiment_drivers_run_on_tiny_trace() {
    let t = trace();
    let lab = Lab::new(&t).expect("lab builds");
    characterization::fig1(&lab).expect("fig1");
    characterization::fig2(&lab).expect("fig2");
    characterization::fig4(&lab).expect("fig4");
    characterization::fig8(&lab).expect("fig8");
    prediction::table1(&lab).expect("table1");
    prediction::table4(&lab).expect("table4");
    prediction::table5(&lab).expect("table5");
    prediction::fig13(&lab).expect("fig13");
}
