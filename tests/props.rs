//! Property-based tests (proptest) on core invariants across the
//! workspace: topology coordinate algebra, statistics, metrics, history
//! accounting, sampling ratios, and forecasting stability.

use gpu_error_prediction::mlkit::dataset::Dataset;
use gpu_error_prediction::mlkit::metrics::ConfusionMatrix;
use gpu_error_prediction::mlkit::sampling::{random_oversample, random_undersample};
use gpu_error_prediction::mlkit::stats::{mean, percentile, ranks, spearman, std_dev, Ecdf};
use gpu_error_prediction::titan_sim::telemetry::window_stats;
use gpu_error_prediction::titan_sim::topology::{NodeId, Topology};
use gpu_error_prediction::tscast::ar::ArModel;
use gpu_error_prediction::tscast::Forecaster;
use proptest::prelude::*;

proptest! {
    #[test]
    fn topology_location_round_trips(
        gx in 1u16..12, gy in 1u16..8, cages in 1u16..4, slots in 1u16..6, nodes in 1u16..5,
        pick in 0u32..100_000,
    ) {
        let topo = Topology::new(gx, gy, cages, slots, nodes).expect("valid dims");
        let node = NodeId(pick % topo.n_nodes());
        let loc = topo.location(node).expect("in range");
        prop_assert_eq!(topo.node_id(loc).expect("valid loc"), node);
        // Slot membership is consistent.
        let slot = topo.slot_of(node).expect("in range");
        let members = topo.slot_members(slot).expect("valid slot");
        prop_assert!(members.contains(&node));
        prop_assert_eq!(members.len(), nodes as usize);
    }

    #[test]
    fn window_stats_match_naive_computation(xs in prop::collection::vec(-100.0f32..100.0, 1..200)) {
        let s = window_stats(&xs);
        let xs64: Vec<f64> = xs.iter().map(|&v| v as f64).collect();
        prop_assert!((s.mean as f64 - mean(&xs64)).abs() < 1e-2);
        prop_assert!((s.std as f64 - std_dev(&xs64)).abs() < 1e-2);
        if xs.len() >= 2 {
            let diffs: Vec<f64> = xs64.windows(2).map(|w| w[1] - w[0]).collect();
            prop_assert!((s.diff_mean as f64 - mean(&diffs)).abs() < 1e-2);
        }
    }

    #[test]
    fn ranks_are_a_permutation_mean(xs in prop::collection::vec(-1e6f64..1e6, 1..100)) {
        let r = ranks(&xs);
        // Rank sum is always n(n+1)/2 (ties average preserves the sum).
        let n = xs.len() as f64;
        let sum: f64 = r.iter().sum();
        prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-6);
    }

    #[test]
    fn spearman_is_symmetric_and_bounded(
        pairs in prop::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 3..100)
    ) {
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        if let (Ok(a), Ok(b)) = (spearman(&xs, &ys), spearman(&ys, &xs)) {
            prop_assert!((a - b).abs() < 1e-9);
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&a));
        }
    }

    #[test]
    fn percentile_is_monotone(
        xs in prop::collection::vec(-1e3f64..1e3, 1..100),
        p1 in 0.0f64..100.0,
        p2 in 0.0f64..100.0,
    ) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let a = percentile(&xs, lo).expect("valid");
        let b = percentile(&xs, hi).expect("valid");
        prop_assert!(a <= b + 1e-9);
    }

    #[test]
    fn ecdf_is_monotone_and_bounded(
        xs in prop::collection::vec(-1e3f64..1e3, 1..100),
        probe1 in -2e3f64..2e3,
        probe2 in -2e3f64..2e3,
    ) {
        let cdf = Ecdf::new(&xs);
        let (lo, hi) = if probe1 <= probe2 { (probe1, probe2) } else { (probe2, probe1) };
        let a = cdf.eval(lo);
        let b = cdf.eval(hi);
        prop_assert!(a <= b);
        prop_assert!((0.0..=1.0).contains(&a));
        prop_assert!((0.0..=1.0).contains(&b));
    }

    #[test]
    fn confusion_counts_partition_the_samples(
        labels in prop::collection::vec((0u8..2, 0u8..2), 1..200)
    ) {
        let truth: Vec<f32> = labels.iter().map(|&(t, _)| t as f32).collect();
        let pred: Vec<f32> = labels.iter().map(|&(_, p)| p as f32).collect();
        let cm = ConfusionMatrix::from_predictions(&truth, &pred).expect("valid");
        prop_assert_eq!(cm.total() as usize, labels.len());
        // Precision and recall stay in [0, 1].
        prop_assert!((0.0..=1.0).contains(&cm.precision()));
        prop_assert!((0.0..=1.0).contains(&cm.recall()));
        prop_assert!((0.0..=1.0).contains(&cm.f1()));
    }

    #[test]
    fn undersample_never_exceeds_requested_ratio(
        n_pos in 1usize..20,
        n_neg in 1usize..200,
        ratio in 0.5f64..5.0,
    ) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..n_pos {
            rows.push(vec![i as f32, 1.0]);
            y.push(1.0);
        }
        for i in 0..n_neg {
            rows.push(vec![i as f32, 0.0]);
            y.push(0.0);
        }
        let ds = Dataset::from_rows(&rows, &y).expect("valid");
        let out = random_undersample(&ds, ratio, 7).expect("samples");
        prop_assert_eq!(out.n_positive(), n_pos);
        let max_neg = ((n_pos as f64 * ratio).round() as usize).clamp(1, n_neg);
        prop_assert!(out.n_negative() <= max_neg);
    }

    #[test]
    fn oversample_reaches_requested_ratio(
        n_pos in 1usize..10,
        n_neg in 10usize..100,
    ) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..n_pos {
            rows.push(vec![i as f32]);
            y.push(1.0);
        }
        for i in 0..n_neg {
            rows.push(vec![-(i as f32)]);
            y.push(0.0);
        }
        let ds = Dataset::from_rows(&rows, &y).expect("valid");
        let out = random_oversample(&ds, 2.0, 7).expect("samples");
        prop_assert_eq!(out.n_negative(), n_neg);
        prop_assert!(out.imbalance_ratio() <= 2.0 + 1e-9);
    }

    #[test]
    fn ar_forecasts_are_finite_for_stationary_series(
        phi in -0.9f64..0.9,
        start in -10.0f64..10.0,
        horizon in 1usize..50,
    ) {
        // Generate a stationary AR(1) path with bounded noise.
        let mut x = start;
        let mut state = 0x9e37_79b9u64;
        let series: Vec<f64> = (0..300)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let noise = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
                x = phi * x + noise;
                x
            })
            .collect();
        if let Ok(model) = ArModel::fit(&series, 2) {
            let fc = model.forecast(&series, horizon).expect("forecasts");
            prop_assert_eq!(fc.len(), horizon);
            for v in fc {
                prop_assert!(v.is_finite());
                prop_assert!(v.abs() < 1e6);
            }
        }
    }
}
