//! Forecast-evaluation integration: tscast's walk-forward backtest
//! against hand-computed error values, AR-vs-smoothing model ranking on
//! a structured series, and the core forecast-feature plumbing built on
//! top of both.

use gpu_error_prediction::sbepred::forecast::forecast_series_stats;
use gpu_error_prediction::tscast::ar::fit_best_order;
use gpu_error_prediction::tscast::eval::{backtest, forecast_errors};
use gpu_error_prediction::tscast::smooth::Ewma;
use gpu_error_prediction::tscast::Forecaster;

#[test]
fn naive_backtest_on_ramp_matches_hand_computed_errors() {
    // Ewma with alpha = 1 is the naive "last value" forecaster. On the
    // 16-point ramp 0,1,...,15 with 4 points of warm-up history, every
    // one-step forecast at t is series[t-1] = t-1 against actual t:
    // twelve errors of exactly -1 each.
    let series: Vec<f64> = (0..16).map(f64::from).collect();
    let naive = Ewma::new(1.0).expect("alpha 1 is valid");
    let e = backtest(&naive, &series, 4).expect("backtest runs");

    assert_eq!(e.n, 12);
    assert!((e.mae - 1.0).abs() < 1e-12, "mae = {}", e.mae);
    assert!((e.rmse - 1.0).abs() < 1e-12, "rmse = {}", e.rmse);
    // MAPE averages |(-1)/t| over t = 4..=15; no actual is zero.
    let expected_mape: f64 = (4..16).map(|t| 1.0 / f64::from(t)).sum::<f64>() / 12.0;
    assert!((e.mape - expected_mape).abs() < 1e-12, "mape = {}", e.mape);
}

#[test]
fn forecast_errors_agree_with_backtest_composition() {
    // backtest() is exactly forecast_errors() over the walk-forward
    // pairs; recompute the pairs by hand and demand identical numbers.
    let series: Vec<f64> = (0..20).map(|t| f64::from(t % 7)).collect();
    let model = Ewma::new(0.5).expect("valid alpha");
    let via_backtest = backtest(&model, &series, 6).expect("backtest runs");

    let mut forecasts = Vec::new();
    let mut actuals = Vec::new();
    for t in 6..series.len() {
        forecasts.push(model.forecast(&series[..t], 1).expect("forecasts")[0]);
        actuals.push(series[t]);
    }
    let direct = forecast_errors(&forecasts, &actuals).expect("errors compute");
    assert_eq!(via_backtest, direct);
}

#[test]
fn ar_beats_smoothing_on_an_autoregressive_series() {
    // A deterministic damped-oscillation AR(2) process with a small
    // fixed "innovation" table: x_t = 1.2 x_{t-1} - 0.52 x_{t-2} + e_t.
    // The AR fit can track the oscillation; a lagging EWMA cannot.
    let innovations: [f64; 8] = [0.3, -0.2, 0.1, 0.4, -0.3, 0.2, -0.1, -0.4];
    let mut series = vec![1.0f64, 0.5];
    for t in 2..160 {
        let x = 1.2 * series[t - 1] - 0.52 * series[t - 2] + innovations[t % 8];
        series.push(x);
    }

    let ar = fit_best_order(&series, 8).expect("AR fits");
    assert!(ar.order() >= 1);
    let ar_errors = backtest(&ar, &series, 40).expect("AR backtest runs");
    let ewma_errors =
        backtest(&Ewma::new(0.3).expect("valid alpha"), &series, 40).expect("EWMA backtest runs");

    assert!(
        ar_errors.mae < ewma_errors.mae,
        "AR mae {} not better than EWMA mae {}",
        ar_errors.mae,
        ewma_errors.mae
    );
    assert!(
        ar_errors.rmse < ewma_errors.rmse,
        "AR rmse {} not better than EWMA rmse {}",
        ar_errors.rmse,
        ewma_errors.rmse
    );
}

#[test]
fn forecast_series_stats_degenerate_and_constant_inputs() {
    // Empty history or zero horizon: all-zero stats, no panic.
    let zero = forecast_series_stats(&[], 10);
    assert_eq!(zero.mean, 0.0);
    assert_eq!(zero.std, 0.0);
    let zero = forecast_series_stats(&[40.0; 50], 0);
    assert_eq!(zero.mean, 0.0);

    // A constant history forecasts flat at that constant: mean exact,
    // no spread, no drift.
    let stats = forecast_series_stats(&[55.0; 200], 30);
    assert!((stats.mean - 55.0).abs() < 1e-3, "mean = {}", stats.mean);
    assert!(stats.std.abs() < 1e-3, "std = {}", stats.std);
    assert!(
        stats.diff_mean.abs() < 1e-3,
        "diff_mean = {}",
        stats.diff_mean
    );
}

#[test]
fn forecast_series_stats_tracks_a_trending_series() {
    // A slow upward ramp: the forecast window's mean must land above the
    // history's last value minus noise, i.e. the model extrapolates
    // rather than resetting to the series mean.
    let history: Vec<f32> = (0..240).map(|t| 20.0 + 0.05 * t as f32).collect();
    let last = *history.last().expect("non-empty");
    let stats = forecast_series_stats(&history, 20);
    assert!(
        stats.mean > last - 2.0,
        "forecast mean {} fell far below last observation {}",
        stats.mean,
        last
    );
    assert!(stats.mean.is_finite() && stats.std.is_finite());
}
