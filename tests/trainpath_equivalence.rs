//! Training-engine differential suite.
//!
//! The histogram training engine (`mlkit::hist`, DESIGN.md "Training
//! fastpath") ships three split finders behind `TrainMode`:
//!
//! * `Reference` — the pre-engine per-feature path, kept verbatim;
//! * `Exact` — gathered single-pass build, contractually
//!   **bit-identical** to `Reference` (it is the default, and the
//!   pinned goldens train through it);
//! * `Fast` — sibling subtraction + row-block parallelism, which
//!   changes floating-point summation trees and is therefore locked by
//!   split identity on randomized ensembles plus quality parity.
//!
//! These tests pin all three relationships and the thread-invariance
//! contract (`SBE_THREADS` must never change a single output bit) for
//! both new engines.

use gpu_error_prediction::mlkit::dataset::Dataset;
use gpu_error_prediction::mlkit::gbdt::Gbdt;
use gpu_error_prediction::mlkit::hist::TrainMode;
use gpu_error_prediction::mlkit::metrics::{roc_auc, ConfusionMatrix};
use gpu_error_prediction::mlkit::model::Classifier;
use gpu_error_prediction::parkit::Threads;

/// Deterministic, learnable dataset with enough rows × features to
/// cross the parallel gates in both engines.
fn synthetic_dataset(n: usize, d: usize, salt: usize) -> Dataset {
    let rows: Vec<Vec<f32>> = (0..n)
        .map(|i| {
            (0..d)
                .map(|j| (((i * 31 + j * 17 + salt * 13) % 193) as f32) / 193.0)
                .collect()
        })
        .collect();
    let y: Vec<f32> = rows
        .iter()
        .map(|r| {
            if r[0] + r[1] + 0.5 * r[2] > r[3] + 0.9 {
                1.0
            } else {
                0.0
            }
        })
        .collect();
    Dataset::from_rows(&rows, &y).expect("dataset builds")
}

fn fit_predict(
    train: &Dataset,
    test: &Dataset,
    mode: TrainMode,
    threads: Threads,
    cfg: &(usize, usize, f64, f64, u64),
) -> Vec<f32> {
    let (n_trees, max_depth, subsample, colsample, seed) = *cfg;
    let mut model = Gbdt::new()
        .n_trees(n_trees)
        .max_depth(max_depth)
        .min_samples_leaf(5)
        .subsample(subsample)
        .colsample(colsample)
        .seed(seed)
        .threads(threads)
        .train_mode(mode);
    model.fit(train).expect("gbdt fits");
    model.predict_proba(test).expect("gbdt predicts")
}

fn bits(probs: &[f32]) -> Vec<u32> {
    probs.iter().map(|p| p.to_bits()).collect()
}

/// Randomized ensembles: the `Exact` engine must reproduce the
/// `Reference` engine bit for bit — same splits, same leaves, same
/// probabilities — across subsampling, column sampling, and depth.
#[test]
fn exact_engine_bit_identical_to_reference() {
    let train = synthetic_dataset(1_500, 24, 0);
    let test = synthetic_dataset(500, 24, 1);
    let configs: [(usize, usize, f64, f64, u64); 4] = [
        (20, 4, 1.0, 1.0, 7),
        (15, 6, 0.8, 1.0, 13),
        (15, 5, 1.0, 0.5, 42),
        (12, 7, 0.7, 0.6, 99),
    ];
    for cfg in &configs {
        let reference = fit_predict(&train, &test, TrainMode::Reference, Threads::Serial, cfg);
        let exact = fit_predict(&train, &test, TrainMode::Exact, Threads::Serial, cfg);
        assert_eq!(
            bits(&reference),
            bits(&exact),
            "exact diverged from reference under {cfg:?}"
        );
    }
}

/// `Fast` changes floating-point summation order (sibling subtraction,
/// row-block merges), so bit identity with `Exact` is not contractual —
/// but on these randomized ensembles no gain comparison sits within
/// rounding of a tie, so the chosen splits (and hence the trees, whose
/// leaves are computed from exact index-order sums in every mode) come
/// out identical. A tie flip would be a real finding, not noise.
#[test]
fn fast_engine_split_identical_on_randomized_ensembles() {
    let train = synthetic_dataset(1_500, 24, 2);
    let test = synthetic_dataset(500, 24, 3);
    let configs: [(usize, usize, f64, f64, u64); 4] = [
        (20, 4, 1.0, 1.0, 7),
        (15, 6, 0.8, 1.0, 13),
        (15, 5, 1.0, 0.5, 42),
        (12, 7, 0.7, 0.6, 99),
    ];
    for cfg in &configs {
        let exact = fit_predict(&train, &test, TrainMode::Exact, Threads::Serial, cfg);
        let fast = fit_predict(&train, &test, TrainMode::Fast, Threads::Serial, cfg);
        assert_eq!(
            bits(&exact),
            bits(&fast),
            "fast chose different splits under {cfg:?}"
        );
    }
}

/// Quality-parity backstop on a production-shaped workload: even if a
/// future change legitimately flips a within-rounding tie, `Fast` must
/// stay a drop-in replacement for `Exact` in AUC and F1.
#[test]
fn fast_engine_quality_parity() {
    let train = synthetic_dataset(4_000, 32, 4);
    let test = synthetic_dataset(1_200, 32, 5);
    let cfg = (40usize, 6usize, 0.8f64, 0.8f64, 7u64);
    let classify = |mode: TrainMode| {
        let probs = fit_predict(&train, &test, mode, Threads::Serial, &cfg);
        let pred: Vec<f32> = probs
            .iter()
            .map(|&p| if p >= 0.5 { 1.0 } else { 0.0 })
            .collect();
        let auc = roc_auc(test.y(), &probs).expect("auc computes");
        let f1 = ConfusionMatrix::from_predictions(test.y(), &pred)
            .expect("confusion computes")
            .f1();
        (auc, f1)
    };
    let (auc_e, f1_e) = classify(TrainMode::Exact);
    let (auc_f, f1_f) = classify(TrainMode::Fast);
    assert!(auc_e > 0.9, "exact engine should learn this task: {auc_e}");
    assert!(
        (auc_e - auc_f).abs() < 0.01,
        "AUC drifted: exact {auc_e} vs fast {auc_f}"
    );
    assert!(
        (f1_e - f1_f).abs() < 0.02,
        "F1 drifted: exact {f1_e} vs fast {f1_f}"
    );
}

/// Both engines must be bit-identical across thread policies: `Exact`
/// because feature-group fan-out never touches a per-bin accumulation
/// order, `Fast` because row blocks are cut by position, not by worker.
#[test]
fn both_engines_thread_count_invariant() {
    let train = synthetic_dataset(1_800, 24, 6);
    let test = synthetic_dataset(400, 24, 7);
    let cfg = (15usize, 6usize, 0.8f64, 0.7f64, 21u64);
    for mode in [TrainMode::Exact, TrainMode::Fast] {
        let reference = fit_predict(&train, &test, mode, Threads::Serial, &cfg);
        assert!(
            reference.iter().any(|&p| p > 0.5) && reference.iter().any(|&p| p < 0.5),
            "degenerate reference predictions"
        );
        for n in [1usize, 2, 8] {
            let probs = fit_predict(&train, &test, mode, Threads::Fixed(n), &cfg);
            assert_eq!(
                bits(&reference),
                bits(&probs),
                "{mode:?} diverged at {n} threads"
            );
        }
    }
}
