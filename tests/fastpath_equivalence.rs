//! Differential suite: compiled inference must be *bit-identical* to the
//! interpreted path, for any fitted model.
//!
//! Proptest generates random dataset shapes and hyper-parameters, the
//! test derives the data deterministically from a generated seed, fits a
//! GBDT (and an LR), compiles it, and compares probabilities bit for bit
//! on the training rows plus out-of-range query rows — through the
//! single-row scorer, the zero-alloc `FeatureFrame` batch API, and after
//! a `PipelineArtifact` save/load round-trip. Any divergence (a
//! reordered accumulation, a mis-flattened node, a tie broken the other
//! way) fails with the generated inputs printed.

use gpu_error_prediction::mlkit::dataset::Dataset;
use gpu_error_prediction::mlkit::fastpath::FeatureFrame;
use gpu_error_prediction::mlkit::gbdt::Gbdt;
use gpu_error_prediction::mlkit::linear::LogisticRegression;
use gpu_error_prediction::mlkit::model::Classifier;
use gpu_error_prediction::mlkit::scaler::StandardScaler;
use gpu_error_prediction::sbepred::features::FeatureSpec;
use gpu_error_prediction::streamd::artifact::{CompiledScorer, PipelineArtifact, PipelineModel};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic random rows in `[-scale, scale)` from a proptest seed.
fn gen_rows(rng: &mut StdRng, n: usize, d: usize, scale: f32) -> Vec<Vec<f32>> {
    (0..n)
        .map(|_| {
            (0..d)
                .map(|_| (rng.gen::<f32>() * 2.0 - 1.0) * scale)
                .collect()
        })
        .collect()
}

/// Labels from the row contents, with the first two rows forced to
/// opposite classes so fitting never sees a single-class dataset.
fn labels(rows: &[Vec<f32>]) -> Vec<f32> {
    let mut y: Vec<f32> = rows
        .iter()
        .map(|r| {
            if r.iter().sum::<f32>() > 0.0 {
                1.0
            } else {
                0.0
            }
        })
        .collect();
    y[0] = 0.0;
    y[1] = 1.0;
    y
}

/// Compares compiled vs interpreted on every row of `rows`, through the
/// batch frame API and the single-row scorer. Returns the first
/// mismatch's description, `None` when bit-identical.
fn gbdt_mismatch(model: &Gbdt, rows: &[Vec<f32>]) -> Option<String> {
    let ds = Dataset::from_rows(rows, &vec![0.0; rows.len()]).expect("dataset");
    let interpreted = model.predict_proba(&ds).expect("interpreted predict");
    let compiled = model.compile().expect("compile");
    let frame = FeatureFrame::from_rows(rows).expect("frame");
    let mut out = vec![0.0f32; rows.len()];
    compiled
        .predict_proba_into(&frame, &mut out)
        .expect("compiled predict");
    for (i, (a, b)) in interpreted.iter().zip(&out).enumerate() {
        if a.to_bits() != b.to_bits() {
            return Some(format!(
                "batch mismatch at row {i}: interpreted {a} vs compiled {b}"
            ));
        }
        let single = compiled.proba_row(&rows[i]);
        if single.to_bits() != a.to_bits() {
            return Some(format!(
                "proba_row mismatch at row {i}: interpreted {a} vs compiled {single}"
            ));
        }
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn gbdt_compiled_is_bit_identical(
        d in 2usize..6,
        n in 30usize..90,
        n_trees in 1usize..12,
        max_depth in 1usize..6,
        n_bins in 2usize..32,
        learning_rate in 0.05f32..0.5,
        subsample in 0.5f64..1.0,
        colsample in 0.5f64..1.0,
        seed in 0u64..u64::MAX,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows = gen_rows(&mut rng, n, d, 10.0);
        let y = labels(&rows);
        let ds = Dataset::from_rows(&rows, &y).expect("dataset");
        let mut model = Gbdt::new()
            .n_trees(n_trees)
            .max_depth(max_depth)
            .min_samples_leaf(1 + (seed % 5) as usize)
            .n_bins(n_bins)
            .learning_rate(learning_rate)
            .subsample(subsample)
            .colsample(colsample)
            .seed(seed);
        model.fit(&ds).expect("fit");
        if let Some(msg) = gbdt_mismatch(&model, &rows) {
            prop_assert!(false, "{msg}");
        }
        // Out-of-distribution queries — wider range than training, so
        // traversal crosses every learned threshold from both sides.
        let queries = gen_rows(&mut rng, 8, d, 25.0);
        if let Some(msg) = gbdt_mismatch(&model, &queries) {
            prop_assert!(false, "on queries: {msg}");
        }
    }

    #[test]
    fn gbdt_parity_survives_artifact_round_trip(
        d in 2usize..6,
        n in 30usize..90,
        n_trees in 1usize..10,
        max_depth in 1usize..5,
        seed in 0u64..u64::MAX,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows = gen_rows(&mut rng, n, d, 10.0);
        let y = labels(&rows);
        let ds = Dataset::from_rows(&rows, &y).expect("dataset");
        let scaler = StandardScaler::fit(&ds).expect("scaler");
        let mut model = Gbdt::new()
            .n_trees(n_trees)
            .max_depth(max_depth)
            .min_samples_leaf(2)
            .seed(seed);
        model.fit(&ds).expect("fit");
        let artifact = PipelineArtifact::new(
            FeatureSpec::only_hist(),
            vec![1, 2, 3],
            scaler,
            PipelineModel::Gbdt(model),
            500,
            "DS1",
        );
        let shipped = PipelineArtifact::from_bytes(&artifact.to_bytes().expect("encode"))
            .expect("decode");
        let compiled = shipped.compile().expect("compile decoded");
        prop_assert!(matches!(compiled, CompiledScorer::Gbdt(_)));
        let interpreted = shipped.model().predict_proba(&ds).expect("predict");
        let frame = FeatureFrame::from_rows(&rows).expect("frame");
        let mut out = vec![0.0f32; rows.len()];
        compiled
            .predict_proba_into(&frame, &mut out)
            .expect("compiled predict");
        for (i, (a, b)) in interpreted.iter().zip(&out).enumerate() {
            prop_assert!(
                a.to_bits() == b.to_bits(),
                "round-trip mismatch at row {i}: interpreted {a} vs compiled {b}"
            );
        }
    }

    #[test]
    fn logistic_compiled_is_bit_identical(
        d in 2usize..6,
        n in 30usize..90,
        epochs in 5usize..40,
        lr in 0.01f32..0.5,
        seed in 0u64..u64::MAX,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows = gen_rows(&mut rng, n, d, 2.0);
        let y = labels(&rows);
        let ds = Dataset::from_rows(&rows, &y).expect("dataset");
        let mut model = LogisticRegression::new()
            .epochs(epochs)
            .learning_rate(lr)
            .seed(seed);
        model.fit(&ds).expect("fit");
        let compiled = model.compile().expect("compile");
        let interpreted = model.predict_proba(&ds).expect("predict");
        let frame = FeatureFrame::from_rows(&rows).expect("frame");
        let mut out = vec![0.0f32; rows.len()];
        compiled
            .predict_proba_into(&frame, &mut out)
            .expect("compiled predict");
        for (i, (a, b)) in interpreted.iter().zip(&out).enumerate() {
            prop_assert!(
                a.to_bits() == b.to_bits(),
                "LR mismatch at row {i}: interpreted {a} vs compiled {b}"
            );
            let single = compiled.proba_row(&rows[i]);
            prop_assert!(
                single.to_bits() == a.to_bits(),
                "LR proba_row mismatch at row {i}: interpreted {a} vs compiled {single}"
            );
        }
    }
}
