//! Cross-crate determinism: the same seed must reproduce the trace, the
//! features, and the trained models bit-for-bit, regardless of thread
//! scheduling in the parallel telemetry sweep.

use gpu_error_prediction::mlkit::gbdt::Gbdt;
use gpu_error_prediction::mlkit::model::Classifier;
use gpu_error_prediction::sbepred::datasets::DsSplit;
use gpu_error_prediction::sbepred::features::{FeatureExtractor, FeatureSpec};
use gpu_error_prediction::sbepred::samples::build_samples;
use gpu_error_prediction::sbepred::twostage::{prepare, run_classifier};
use gpu_error_prediction::titan_sim::config::SimConfig;
use gpu_error_prediction::titan_sim::engine::{generate, TelemetryQueryEngine};
use gpu_error_prediction::titan_sim::telemetry::SeriesKind;
use gpu_error_prediction::titan_sim::topology::NodeId;

#[test]
fn trace_generation_is_reproducible() {
    let a = generate(&SimConfig::tiny(99)).expect("generates");
    let b = generate(&SimConfig::tiny(99)).expect("generates");
    assert_eq!(a.samples(), b.samples());
    assert_eq!(a.node_cum_temp(), b.node_cum_temp());
    assert_eq!(a.node_cum_power(), b.node_cum_power());
    assert_eq!(a.jobs().len(), b.jobs().len());
}

#[test]
fn different_seeds_differ() {
    let a = generate(&SimConfig::tiny(1)).expect("generates");
    let b = generate(&SimConfig::tiny(2)).expect("generates");
    assert_ne!(a.samples(), b.samples());
}

#[test]
fn telemetry_requeries_are_bit_identical() {
    let t = generate(&SimConfig::tiny(5)).expect("generates");
    let engine = TelemetryQueryEngine::new(&t).expect("engine builds");
    let a = engine
        .node_series(NodeId(7), SeriesKind::GpuTemp, 1_000, 2_000)
        .expect("probes");
    let b = engine
        .node_series(NodeId(7), SeriesKind::GpuTemp, 1_000, 2_000)
        .expect("probes");
    assert_eq!(a, b);
    // A second engine over the same trace agrees too.
    let engine2 = TelemetryQueryEngine::new(&t).expect("engine builds");
    let c = engine2
        .node_series(NodeId(7), SeriesKind::GpuTemp, 1_000, 2_000)
        .expect("probes");
    assert_eq!(a, c);
}

#[test]
fn feature_extraction_is_reproducible() {
    let t = generate(&SimConfig::tiny(5)).expect("generates");
    let samples = build_samples(&t).expect("samples build");
    let fx = FeatureExtractor::new(&t, &samples).expect("extractor builds");
    let spec = FeatureSpec::all();
    let a = fx.extract(&samples[..50], &spec).expect("extracts");
    let b = fx.extract(&samples[..50], &spec).expect("extracts");
    assert_eq!(a.x().as_slice(), b.x().as_slice());
}

#[test]
fn stored_sample_averages_match_requeried_telemetry() {
    // The generation pass and the query engine must agree on the run
    // means — proof the procedural regeneration is faithful.
    let t = generate(&SimConfig::tiny(5)).expect("generates");
    let engine = TelemetryQueryEngine::new(&t).expect("engine builds");
    let pairs: Vec<_> = t
        .samples()
        .iter()
        .step_by(37)
        .take(30)
        .map(|s| (s.aprun, s.node))
        .collect();
    let stats = engine.query(&pairs).expect("queries");
    for (st, s) in stats.iter().zip(t.samples().iter().step_by(37).take(30)) {
        assert!(
            (st.run_temp.mean - s.avg_gpu_temp_c).abs() < 0.01,
            "temp {} vs {}",
            st.run_temp.mean,
            s.avg_gpu_temp_c
        );
    }
}

#[test]
fn full_pipeline_is_reproducible() {
    let run = || {
        let t = generate(&SimConfig::tiny(13)).expect("generates");
        let split = DsSplit::ds1(&t).expect("split fits");
        let prepared = prepare(&t, &split, &FeatureSpec::all()).expect("prepares");
        let mut model = Gbdt::new().n_trees(20).min_samples_leaf(5).seed(4);
        let out = run_classifier(&prepared, &mut model).expect("runs");
        (
            out.predictions,
            model.predict_proba(&prepared.test).expect("predicts"),
        )
    };
    let (pred_a, proba_a) = run();
    let (pred_b, proba_b) = run();
    assert_eq!(pred_a, pred_b);
    assert_eq!(proba_a, proba_b);
}
