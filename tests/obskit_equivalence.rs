//! Instrumentation-equivalence suite.
//!
//! The contract of the obskit layer (DESIGN.md "Observability") is that
//! recording is *passive*: running the pipeline with a full recorder, a
//! null recorder, or any thread policy must produce bit-identical
//! predictions, and the metrics themselves must not depend on the thread
//! policy. These tests run the whole instrumented path — trace
//! generation → feature extraction → TwoStage → GBDT training — six
//! ways (null/full recorder × 1/2/8 threads) and demand:
//!
//! * identical predictions and confusion metrics across all six runs,
//! * byte-identical `obskit/1` snapshots across the three full-recorder
//!   runs (merge order is pinned, the span clock is logical),
//! * an untouched (empty) snapshot from the null-recorder runs.

use gpu_error_prediction::mlkit::gbdt::Gbdt;
use gpu_error_prediction::obskit::{NullClock, Recorder};
use gpu_error_prediction::parkit::Threads;
use gpu_error_prediction::sbepred::datasets::DsSplit;
use gpu_error_prediction::sbepred::experiments::Lab;
use gpu_error_prediction::sbepred::features::FeatureSpec;
use gpu_error_prediction::sbepred::twostage::{
    prepare_with_extractor_observed, run_classifier_observed,
};
use gpu_error_prediction::titan_sim::config::SimConfig;
use gpu_error_prediction::titan_sim::engine::generate_observed;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// The empty snapshot a never-touched recorder serializes to.
const EMPTY_SNAPSHOT: &str =
    r#"{"schema":"obskit/1","ticks":0,"counters":{},"gauges":{},"histograms":{},"spans":{}}"#;

/// One full pipeline pass on the tiny(13) trace under the given thread
/// policy, with every instrumented layer writing into `rec`. Returns the
/// stage-wise predictions and the headline metrics.
fn run_pipeline(threads: Threads, rec: &mut Recorder) -> (Vec<f32>, [f64; 3]) {
    let cfg = SimConfig::tiny(13).with_threads(threads);
    let trace = generate_observed(&cfg, rec).expect("trace generates");
    let lab = Lab::with_threads(&trace, threads).expect("lab builds");
    let split = DsSplit::ds1(&trace).expect("ds1 splits");
    let prepared = prepare_with_extractor_observed(
        lab.extractor(),
        lab.samples(),
        &split,
        &FeatureSpec::all(),
        rec,
    )
    .expect("two-stage prepares");
    // A light GBDT keeps the six passes fast while still exercising the
    // boosting-round/split-candidate instrumentation.
    let mut model = Gbdt::new()
        .n_trees(20)
        .max_depth(4)
        .min_samples_leaf(10)
        .subsample(0.8)
        .pos_weight(2.0)
        .seed(7)
        .threads(threads);
    let out =
        run_classifier_observed(&prepared, &mut model, rec, &NullClock).expect("two-stage runs");
    let cm = out.confusion().expect("confusion computes");
    (out.predictions, [cm.f1(), cm.precision(), cm.recall()])
}

#[test]
fn recording_and_thread_policy_never_change_predictions() {
    // Reference: serial run with a *null* recorder — the untouched path.
    let mut null_rec = Recorder::null();
    let (ref_preds, ref_metrics) = run_pipeline(Threads::Serial, &mut null_rec);
    assert_eq!(
        null_rec.snapshot_json(),
        EMPTY_SNAPSHOT,
        "null recorder must stay empty"
    );
    assert!(
        ref_preds.contains(&1.0),
        "degenerate reference: no positive predictions"
    );

    let mut full_snapshots = Vec::new();
    for n in THREAD_COUNTS {
        // Null-recorder run at n threads.
        let mut rec = Recorder::null();
        let (preds, metrics) = run_pipeline(Threads::Fixed(n), &mut rec);
        assert_eq!(
            preds, ref_preds,
            "null-recorder predictions diverged at {n} threads"
        );
        assert_eq!(
            metrics, ref_metrics,
            "null-recorder metrics diverged at {n} threads"
        );
        assert_eq!(
            rec.snapshot_json(),
            EMPTY_SNAPSHOT,
            "null recorder wrote at {n} threads"
        );

        // Full-recorder run at n threads.
        let mut rec = Recorder::new();
        let (preds, metrics) = run_pipeline(Threads::Fixed(n), &mut rec);
        assert_eq!(
            preds, ref_preds,
            "full-recorder predictions diverged at {n} threads"
        );
        assert_eq!(
            metrics, ref_metrics,
            "full-recorder metrics diverged at {n} threads"
        );
        full_snapshots.push(rec.snapshot_json());
    }

    // The recorded metrics are themselves deterministic: fork/merge in
    // slot order and the logical span clock make every thread policy
    // produce the same snapshot, byte for byte.
    assert_eq!(
        full_snapshots[0], full_snapshots[1],
        "snapshot diverged 1 vs 2 threads"
    );
    assert_eq!(
        full_snapshots[0], full_snapshots[2],
        "snapshot diverged 1 vs 8 threads"
    );
}

#[test]
fn full_recorder_covers_every_pipeline_layer() {
    let mut rec = Recorder::new();
    let (preds, _) = run_pipeline(Threads::Serial, &mut rec);

    // Simulator layer.
    assert!(rec.counter("titan_sim.samples") > 0);
    assert_eq!(
        rec.span("titan_sim.generate").expect("generate span").count,
        1
    );
    // Feature layer: stage-2 train + test extractions both flow through
    // the observed extractor.
    assert!(rec.counter("features.samples_extracted") > 0);
    assert_eq!(rec.span("features.extract").expect("extract span").count, 2);
    // TwoStage layer.
    assert_eq!(rec.counter("twostage.predictions"), preds.len() as u64);
    assert!(rec.counter("twostage.stage2_predictions") <= rec.counter("twostage.predictions"));
    let filter_rate = rec
        .gauge_value("twostage.stage1_filter_rate")
        .expect("filter gauge");
    assert!((0.0..=1.0).contains(&filter_rate));
    // Model layer.
    assert_eq!(rec.counter("mlkit.gbdt.boosting_rounds"), 20);
    assert!(rec.counter("mlkit.tree.split_candidates") > 0);
}
