//! Serialisation round-trips: trained models, configurations, and trace
//! records must survive serde (the deployment path: train offline every
//! two weeks, ship the model to the scheduler).

use gpu_error_prediction::mlkit::dataset::Dataset;
use gpu_error_prediction::mlkit::gbdt::Gbdt;
use gpu_error_prediction::mlkit::linear::LogisticRegression;
use gpu_error_prediction::mlkit::model::Classifier;
use gpu_error_prediction::mlkit::scaler::StandardScaler;
use gpu_error_prediction::titan_sim::config::SimConfig;
use gpu_error_prediction::titan_sim::engine::generate;

fn toy_dataset() -> Dataset {
    let rows: Vec<Vec<f32>> = (0..120)
        .map(|i| vec![(i % 10) as f32, ((i * 3) % 7) as f32])
        .collect();
    let y: Vec<f32> = rows
        .iter()
        .map(|r| if r[0] + r[1] > 8.0 { 1.0 } else { 0.0 })
        .collect();
    Dataset::from_rows(&rows, &y).expect("valid dataset")
}

#[test]
fn gbdt_round_trips_through_json() {
    let ds = toy_dataset();
    let mut model = Gbdt::new().n_trees(20).max_depth(4).min_samples_leaf(2);
    model.fit(&ds).expect("fits");
    let before = model.predict_proba(&ds).expect("predicts");

    let json = serde_json::to_string(&model).expect("serialises");
    let restored: Gbdt = serde_json::from_str(&json).expect("deserialises");
    let after = restored.predict_proba(&ds).expect("predicts");
    assert_eq!(before, after);
}

#[test]
fn logistic_regression_round_trips_through_json() {
    let ds = toy_dataset();
    let mut model = LogisticRegression::new().epochs(30);
    model.fit(&ds).expect("fits");
    let before = model.predict_proba(&ds).expect("predicts");
    let json = serde_json::to_string(&model).expect("serialises");
    let restored: LogisticRegression = serde_json::from_str(&json).expect("deserialises");
    assert_eq!(before, restored.predict_proba(&ds).expect("predicts"));
}

#[test]
fn scaler_round_trips_through_json() {
    let ds = toy_dataset();
    let scaler = StandardScaler::fit(&ds).expect("fits");
    let json = serde_json::to_string(&scaler).expect("serialises");
    let restored: StandardScaler = serde_json::from_str(&json).expect("deserialises");
    assert_eq!(
        scaler.transform(&ds).expect("transforms").x().as_slice(),
        restored.transform(&ds).expect("transforms").x().as_slice()
    );
}

#[test]
fn sim_config_round_trips_and_regenerates_identically() {
    let cfg = SimConfig::tiny(77);
    let json = serde_json::to_string(&cfg).expect("serialises");
    let restored: SimConfig = serde_json::from_str(&json).expect("deserialises");
    assert_eq!(cfg, restored);
    let a = generate(&cfg).expect("generates");
    let b = generate(&restored).expect("generates");
    assert_eq!(a.samples(), b.samples());
}

#[test]
fn trace_samples_serialise() {
    let t = generate(&SimConfig::tiny(7)).expect("generates");
    let json = serde_json::to_string(&t.samples()[..10]).expect("serialises");
    let restored: Vec<gpu_error_prediction::titan_sim::trace::SampleRecord> =
        serde_json::from_str(&json).expect("deserialises");
    assert_eq!(&t.samples()[..10], restored.as_slice());
}
