//! Serialisation round-trips: trained models, configurations, and trace
//! records must survive serde (the deployment path: train offline every
//! two weeks, ship the model to the scheduler).

use gpu_error_prediction::mlkit::dataset::Dataset;
use gpu_error_prediction::mlkit::gbdt::Gbdt;
use gpu_error_prediction::mlkit::linear::LogisticRegression;
use gpu_error_prediction::mlkit::model::Classifier;
use gpu_error_prediction::mlkit::scaler::StandardScaler;
use gpu_error_prediction::titan_sim::config::SimConfig;
use gpu_error_prediction::titan_sim::engine::generate;

fn toy_dataset() -> Dataset {
    let rows: Vec<Vec<f32>> = (0..120)
        .map(|i| vec![(i % 10) as f32, ((i * 3) % 7) as f32])
        .collect();
    let y: Vec<f32> = rows
        .iter()
        .map(|r| if r[0] + r[1] > 8.0 { 1.0 } else { 0.0 })
        .collect();
    Dataset::from_rows(&rows, &y).expect("valid dataset")
}

#[test]
fn gbdt_round_trips_through_json() {
    let ds = toy_dataset();
    let mut model = Gbdt::new().n_trees(20).max_depth(4).min_samples_leaf(2);
    model.fit(&ds).expect("fits");
    let before = model.predict_proba(&ds).expect("predicts");

    let json = serde_json::to_string(&model).expect("serialises");
    let restored: Gbdt = serde_json::from_str(&json).expect("deserialises");
    let after = restored.predict_proba(&ds).expect("predicts");
    assert_eq!(before, after);
}

#[test]
fn logistic_regression_round_trips_through_json() {
    let ds = toy_dataset();
    let mut model = LogisticRegression::new().epochs(30);
    model.fit(&ds).expect("fits");
    let before = model.predict_proba(&ds).expect("predicts");
    let json = serde_json::to_string(&model).expect("serialises");
    let restored: LogisticRegression = serde_json::from_str(&json).expect("deserialises");
    assert_eq!(before, restored.predict_proba(&ds).expect("predicts"));
}

#[test]
fn scaler_round_trips_through_json() {
    let ds = toy_dataset();
    let scaler = StandardScaler::fit(&ds).expect("fits");
    let json = serde_json::to_string(&scaler).expect("serialises");
    let restored: StandardScaler = serde_json::from_str(&json).expect("deserialises");
    assert_eq!(
        scaler.transform(&ds).expect("transforms").x().as_slice(),
        restored.transform(&ds).expect("transforms").x().as_slice()
    );
}

#[test]
fn sim_config_round_trips_and_regenerates_identically() {
    let cfg = SimConfig::tiny(77);
    let json = serde_json::to_string(&cfg).expect("serialises");
    let restored: SimConfig = serde_json::from_str(&json).expect("deserialises");
    assert_eq!(cfg, restored);
    let a = generate(&cfg).expect("generates");
    let b = generate(&restored).expect("generates");
    assert_eq!(a.samples(), b.samples());
}

#[test]
fn trace_samples_serialise() {
    let t = generate(&SimConfig::tiny(7)).expect("generates");
    let json = serde_json::to_string(&t.samples()[..10]).expect("serialises");
    let restored: Vec<gpu_error_prediction::titan_sim::trace::SampleRecord> =
        serde_json::from_str(&json).expect("deserialises");
    assert_eq!(&t.samples()[..10], restored.as_slice());
}

#[test]
fn full_twostage_pipeline_round_trips_through_artifact() {
    use gpu_error_prediction::sbepred::datasets::DsSplit;
    use gpu_error_prediction::sbepred::features::{FeatureExtractor, FeatureSpec};
    use gpu_error_prediction::sbepred::samples::build_samples;
    use gpu_error_prediction::sbepred::twostage::{prepare_with_extractor, run_classifier};
    use gpu_error_prediction::streamd::artifact::{PipelineArtifact, PipelineModel};

    // Train a real TwoStage pipeline end to end.
    let trace = generate(&SimConfig::tiny(13)).expect("generates");
    let samples = build_samples(&trace).expect("samples");
    let fx = FeatureExtractor::new(&trace, &samples).expect("extractor");
    let split = DsSplit::ds1(&trace).expect("split");
    let spec = FeatureSpec::all();
    let prepared = prepare_with_extractor(&fx, &samples, &split, &spec).expect("prepares");
    let mut model = Gbdt::new().n_trees(20).min_samples_leaf(2).seed(7);
    run_classifier(&prepared, &mut model).expect("fits");
    let before = model.predict_proba(&prepared.test).expect("predicts");

    let offenders: Vec<u32> = fx
        .history()
        .offender_nodes_before(split.train_end_min())
        .into_iter()
        .map(|n| n.0)
        .collect();
    let artifact = PipelineArtifact::new(
        spec,
        offenders.clone(),
        prepared.scaler.clone(),
        PipelineModel::Gbdt(model),
        split.train_end_min(),
        split.name(),
    );

    // Every component must survive the versioned envelope byte-for-byte:
    // spec, offender set, scaler transform, and classifier output.
    let restored =
        PipelineArtifact::from_bytes(&artifact.to_bytes().expect("encodes")).expect("decodes");
    assert_eq!(restored.spec(), artifact.spec());
    assert_eq!(restored.offenders(), offenders.as_slice());
    assert_eq!(restored.trained_end_min(), split.train_end_min());
    assert_eq!(restored.split_name(), split.name());
    assert_eq!(
        restored
            .scaler()
            .transform(&prepared.test)
            .expect("transforms")
            .x()
            .as_slice(),
        artifact
            .scaler()
            .transform(&prepared.test)
            .expect("transforms")
            .x()
            .as_slice()
    );
    let after = restored
        .model()
        .predict_proba(&prepared.test)
        .expect("predicts");
    assert_eq!(before, after);
}
