//! Golden regression test: the tiny pipeline's headline numbers are
//! pinned to `results/golden_tiny.json`. Any change to the simulator,
//! feature extraction, or the models that moves these metrics shows up
//! here before it shows up in the paper tables.
//!
//! Regenerate after an intentional change with
//! `cargo test --release --test golden -- --ignored regenerate_golden`
//! and commit the new file alongside the change that explains it.

use gpu_error_prediction::sbepred::experiments::{prediction, Lab};
use gpu_error_prediction::titan_sim::config::SimConfig;
use gpu_error_prediction::titan_sim::engine::generate;
use serde_json::Value;

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/results/golden_tiny.json");

/// Cross-platform slack for transcendental libm differences; the metrics
/// themselves are deterministic integer-ratio style quantities.
const TOLERANCE: f64 = 1e-6;

/// Computes the pinned metric set from scratch. Train times are
/// deliberately excluded — they are the one nondeterministic field.
fn compute() -> Value {
    let t = generate(&SimConfig::tiny(13)).expect("trace generates");
    let lab = Lab::new(&t).expect("lab builds");
    let fig10 = prediction::fig10(&lab).expect("fig10 runs");
    let models: Vec<Value> = fig10.json["rows"]
        .as_array()
        .expect("fig10 rows")
        .iter()
        .map(|row| {
            serde_json::json!({
                "model": row["model"].as_str().expect("model name"),
                "f1": row["f1"].as_f64().expect("f1"),
                "precision": row["precision"].as_f64().expect("precision"),
                "recall": row["recall"].as_f64().expect("recall"),
            })
        })
        .collect();
    serde_json::json!({
        "config": "SimConfig::tiny(13)",
        "n_samples": t.samples().len() as u64,
        "total_sbes": t.total_sbes(),
        "total_dbes": t.total_dbes(),
        "positive_rate": t.positive_rate(),
        "n_offender_nodes": t.offender_nodes().len() as u64,
        "ds1_models": models,
    })
}

/// Recursively compares two JSON values, allowing `tol` on numbers.
fn assert_close(path: &str, got: &Value, want: &Value) {
    match (got, want) {
        (Value::Object(g), Value::Object(w)) => {
            let gk: Vec<&String> = g.iter().map(|(k, _)| k).collect();
            let wk: Vec<&String> = w.iter().map(|(k, _)| k).collect();
            assert_eq!(gk, wk, "key set mismatch at {path}");
            for (k, wv) in w.iter() {
                let gv = g.get(k).expect("key present by the check above");
                assert_close(&format!("{path}.{k}"), gv, wv);
            }
        }
        (Value::Array(g), Value::Array(w)) => {
            assert_eq!(g.len(), w.len(), "array length mismatch at {path}");
            for (i, (gv, wv)) in g.iter().zip(w).enumerate() {
                assert_close(&format!("{path}[{i}]"), gv, wv);
            }
        }
        _ => {
            if let (Some(g), Some(w)) = (got.as_f64(), want.as_f64()) {
                assert!(
                    (g - w).abs() <= TOLERANCE,
                    "numeric drift at {path}: got {g}, golden {w} (tol {TOLERANCE})"
                );
            } else {
                assert_eq!(got, want, "value mismatch at {path}");
            }
        }
    }
}

#[test]
fn tiny_pipeline_matches_golden() {
    let golden_text = std::fs::read_to_string(GOLDEN_PATH)
        .expect("results/golden_tiny.json is committed; regenerate with the ignored test");
    let golden: Value = serde_json::from_str(&golden_text).expect("golden parses");
    let got = compute();
    assert_close("$", &got, &golden);
}

/// Rewrites the golden file from the current pipeline. Run explicitly
/// (`-- --ignored regenerate_golden`) after an intentional metric change.
#[test]
#[ignore = "regenerates the golden file; run on intentional metric changes"]
fn regenerate_golden() {
    let text = serde_json::to_string_pretty(&compute()).expect("serializes");
    std::fs::write(GOLDEN_PATH, text + "\n").expect("golden file writes");
}
