//! Golden regression test: the tiny pipeline's headline numbers are
//! pinned to `results/golden_tiny.json`. Any change to the simulator,
//! feature extraction, or the models that moves these metrics shows up
//! here before it shows up in the paper tables.
//!
//! Regenerate after an intentional change with
//! `cargo test --release --test golden -- --ignored regenerate_golden`
//! and commit the new file alongside the change that explains it.

use gpu_error_prediction::mlkit::gbdt::Gbdt;
use gpu_error_prediction::obskit::{NullClock, Recorder};
use gpu_error_prediction::parkit::Threads;
use gpu_error_prediction::sbepred::datasets::DsSplit;
use gpu_error_prediction::sbepred::experiments::{prediction, Lab};
use gpu_error_prediction::sbepred::features::FeatureSpec;
use gpu_error_prediction::sbepred::twostage::{
    prepare_with_extractor_observed, run_classifier_observed,
};
use gpu_error_prediction::titan_sim::config::SimConfig;
use gpu_error_prediction::titan_sim::engine::{generate, generate_observed};
use serde_json::Value;

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/results/golden_tiny.json");

const GOLDEN_METRICS_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/results/golden_metrics_tiny.json"
);

/// Cross-platform slack for transcendental libm differences; the metrics
/// themselves are deterministic integer-ratio style quantities.
const TOLERANCE: f64 = 1e-6;

/// Computes the pinned metric set from scratch. Train times are
/// deliberately excluded — they are the one nondeterministic field.
fn compute() -> Value {
    let t = generate(&SimConfig::tiny(13)).expect("trace generates");
    let lab = Lab::new(&t).expect("lab builds");
    let fig10 = prediction::fig10(&lab).expect("fig10 runs");
    let models: Vec<Value> = fig10.json["rows"]
        .as_array()
        .expect("fig10 rows")
        .iter()
        .map(|row| {
            serde_json::json!({
                "model": row["model"].as_str().expect("model name"),
                "f1": row["f1"].as_f64().expect("f1"),
                "precision": row["precision"].as_f64().expect("precision"),
                "recall": row["recall"].as_f64().expect("recall"),
            })
        })
        .collect();
    serde_json::json!({
        "config": "SimConfig::tiny(13)",
        "n_samples": t.samples().len() as u64,
        "total_sbes": t.total_sbes(),
        "total_dbes": t.total_dbes(),
        "positive_rate": t.positive_rate(),
        "n_offender_nodes": t.offender_nodes().len() as u64,
        "ds1_models": models,
    })
}

/// Recursively compares two JSON values, allowing `tol` on numbers.
fn assert_close(path: &str, got: &Value, want: &Value) {
    match (got, want) {
        (Value::Object(g), Value::Object(w)) => {
            let gk: Vec<&String> = g.iter().map(|(k, _)| k).collect();
            let wk: Vec<&String> = w.iter().map(|(k, _)| k).collect();
            assert_eq!(gk, wk, "key set mismatch at {path}");
            for (k, wv) in w.iter() {
                let gv = g.get(k).expect("key present by the check above");
                assert_close(&format!("{path}.{k}"), gv, wv);
            }
        }
        (Value::Array(g), Value::Array(w)) => {
            assert_eq!(g.len(), w.len(), "array length mismatch at {path}");
            for (i, (gv, wv)) in g.iter().zip(w).enumerate() {
                assert_close(&format!("{path}[{i}]"), gv, wv);
            }
        }
        _ => {
            if let (Some(g), Some(w)) = (got.as_f64(), want.as_f64()) {
                assert!(
                    (g - w).abs() <= TOLERANCE,
                    "numeric drift at {path}: got {g}, golden {w} (tol {TOLERANCE})"
                );
            } else {
                assert_eq!(got, want, "value mismatch at {path}");
            }
        }
    }
}

/// Computes the pinned observability snapshot: the tiny(13) trace plus
/// one observed DS1 pass with a light GBDT, recorded serially. Counters,
/// histograms, and span ticks are all logical quantities, so the
/// `obskit/1` snapshot is byte-stable across platforms and thread
/// policies — the comparison below is exact, not tolerance-based.
fn compute_metrics() -> String {
    let mut rec = Recorder::new();
    let cfg = SimConfig::tiny(13).with_threads(Threads::Serial);
    let trace = generate_observed(&cfg, &mut rec).expect("trace generates");
    let lab = Lab::with_threads(&trace, Threads::Serial).expect("lab builds");
    let split = DsSplit::ds1(&trace).expect("ds1 splits");
    let prepared = prepare_with_extractor_observed(
        lab.extractor(),
        lab.samples(),
        &split,
        &FeatureSpec::all(),
        &mut rec,
    )
    .expect("two-stage prepares");
    let mut model = Gbdt::new()
        .n_trees(20)
        .max_depth(4)
        .min_samples_leaf(10)
        .subsample(0.8)
        .pos_weight(2.0)
        .seed(7)
        .threads(Threads::Serial);
    run_classifier_observed(&prepared, &mut model, &mut rec, &NullClock).expect("two-stage runs");
    rec.snapshot_json() + "\n"
}

#[test]
fn tiny_pipeline_matches_golden() {
    let golden_text = std::fs::read_to_string(GOLDEN_PATH)
        .expect("results/golden_tiny.json is committed; regenerate with the ignored test");
    let golden: Value = serde_json::from_str(&golden_text).expect("golden parses");
    let got = compute();
    assert_close("$", &got, &golden);
}

#[test]
fn tiny_metrics_snapshot_matches_golden() {
    let golden = std::fs::read_to_string(GOLDEN_METRICS_PATH)
        .expect("results/golden_metrics_tiny.json is committed; regenerate with the ignored test");
    let got = compute_metrics();
    assert_eq!(
        got, golden,
        "obskit snapshot drifted from results/golden_metrics_tiny.json; \
         if the instrumentation change is intentional, regenerate with \
         `cargo test --release --test golden -- --ignored regenerate_golden`"
    );
}

/// Rewrites the golden files from the current pipeline. Run explicitly
/// (`-- --ignored regenerate_golden`) after an intentional metric change.
#[test]
#[ignore = "regenerates the golden files; run on intentional metric changes"]
fn regenerate_golden() {
    let text = serde_json::to_string_pretty(&compute()).expect("serializes");
    std::fs::write(GOLDEN_PATH, text + "\n").expect("golden file writes");
    std::fs::write(GOLDEN_METRICS_PATH, compute_metrics()).expect("metrics golden writes");
}
