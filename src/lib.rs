//! `gpu-error-prediction` — facade crate for the DSN 2018 reproduction.
//!
//! Re-exports the workspace members so examples and integration tests can
//! use one coherent namespace:
//!
//! * [`titan_sim`] — the Titan-like trace simulator substrate,
//! * [`mlkit`] — the from-scratch machine-learning substrate,
//! * [`tscast`] — time-series forecasting substrate,
//! * [`parkit`] — the deterministic parallel execution layer,
//! * [`obskit`] — the deterministic observability layer,
//! * [`sbepred`] — the paper's contribution: feature engineering, the
//!   TwoStage prediction method, baselines, and experiment drivers,
//! * [`streamd`] — online streaming inference: versioned model
//!   artifacts, trace replay, and batched scoring with stream/batch
//!   parity,
//! * [`sbed`] — the fleet-scale TCP scoring daemon: wire protocol,
//!   sequenced multi-connection serving, mock-fleet load driver, and
//!   bit-identical request-log replay,
//! * [`driftd`] — continual learning: online drift detection,
//!   champion/challenger retraining, and zero-downtime artifact hot
//!   swap with lineage-verified succession.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the architecture.

pub use driftd;
pub use mlkit;
pub use obskit;
pub use parkit;
pub use sbed;
pub use sbepred;
pub use streamd;
pub use titan_sim;
pub use tscast;
