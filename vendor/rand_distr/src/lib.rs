//! Offline, dependency-free replacement for the subset of `rand_distr`
//! this workspace uses: [`Distribution`], [`Normal`], [`LogNormal`] and
//! [`Poisson`].
//!
//! Implemented from the standard published algorithms (Box–Muller for
//! the normal; Knuth inversion and Hörmann's PTRS transformed-rejection
//! for the Poisson), not from the upstream crate sources. Sample streams
//! therefore differ from upstream `rand_distr`; the workspace's
//! statistical assertions are calibrated against these (see DESIGN.md).

// The PTRS constants below are quoted at full published precision; the
// excess digits document the source even where f64 rounds them.
#![allow(clippy::excessive_precision)]

use rand::RngCore;

/// Types that can produce samples of `T` from a random source.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Parameter-validation error for distribution constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error {
    what: &'static str,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.what)
    }
}

impl std::error::Error for Error {}

/// Uniform in the open interval `(0, 1)` — never exactly zero, so it is
/// safe under `ln`.
#[inline]
fn open01<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    ((rng.next_u64() >> 11) as f64 + 0.5) * (1.0 / (1u64 << 53) as f64)
}

/// One standard-normal draw (Box–Muller).
#[inline]
fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    let u1 = open01(rng);
    let u2 = open01(rng);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Normal (Gaussian) distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when `std_dev` is negative or either parameter
    /// is non-finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Normal, Error> {
        if !mean.is_finite() || !std_dev.is_finite() || std_dev < 0.0 {
            return Err(Error {
                what: "Normal requires finite mean and std_dev >= 0",
            });
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// Log-normal distribution: `exp(N(mu, sigma))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    norm: Normal,
}

impl LogNormal {
    /// Creates a log-normal distribution with the given location and
    /// scale of the underlying normal.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when `sigma` is negative or either parameter is
    /// non-finite.
    pub fn new(mu: f64, sigma: f64) -> Result<LogNormal, Error> {
        Ok(LogNormal {
            norm: Normal::new(mu, sigma)?,
        })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}

/// Poisson distribution with rate `lambda`.
///
/// Sampling is exact for all supported rates: Knuth's product-of-
/// uniforms inversion below `lambda = 12`, and Hörmann's PTRS
/// transformed-rejection algorithm above (O(1) per sample even at the
/// simulator's clamped maximum intensity of 1e6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates a Poisson distribution.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when `lambda` is not finite and strictly
    /// positive.
    pub fn new(lambda: f64) -> Result<Poisson, Error> {
        if !lambda.is_finite() || lambda <= 0.0 {
            return Err(Error {
                what: "Poisson requires finite lambda > 0",
            });
        }
        Ok(Poisson { lambda })
    }
}

impl Distribution<f64> for Poisson {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.lambda < 12.0 {
            sample_poisson_knuth(self.lambda, rng)
        } else {
            sample_poisson_ptrs(self.lambda, rng)
        }
    }
}

/// Knuth inversion: count uniforms until their product drops below
/// `exp(-lambda)`. O(lambda) but only used for small rates.
fn sample_poisson_knuth<R: RngCore + ?Sized>(lambda: f64, rng: &mut R) -> f64 {
    let limit = (-lambda).exp();
    let mut product = open01(rng);
    let mut count = 0u64;
    while product > limit {
        count += 1;
        product *= open01(rng);
    }
    count as f64
}

/// Hörmann (1993) PTRS: transformed rejection with squeeze. Exact and
/// O(1) for `lambda >= ~10`.
fn sample_poisson_ptrs<R: RngCore + ?Sized>(lambda: f64, rng: &mut R) -> f64 {
    let log_lambda = lambda.ln();
    let b = 0.931 + 2.53 * lambda.sqrt();
    let a = -0.059 + 0.024_83 * b;
    let inv_alpha = 1.123_9 + 1.132_8 / (b - 3.4);
    let v_r = 0.927_7 - 3.622_4 / (b - 2.0);

    loop {
        let u = open01(rng) - 0.5;
        let v = open01(rng);
        let us = 0.5 - u.abs();
        let k = ((2.0 * a / us + b) * u + lambda + 0.445).floor();
        if us >= 0.07 && v <= v_r {
            return k;
        }
        if k < 0.0 || (us < 0.013 && v > us) {
            continue;
        }
        let log_accept = (v * inv_alpha / (a / (us * us) + b)).ln();
        if log_accept <= k * log_lambda - lambda - ln_gamma(k + 1.0) {
            return k;
        }
    }
}

/// Natural log of the gamma function (Lanczos approximation, g = 7,
/// n = 9), accurate to ~1e-13 for positive arguments.
fn ln_gamma(x: f64) -> f64 {
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (std::f64::consts::TAU).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(LogNormal::new(0.0, f64::NAN).is_err());
        assert!(Poisson::new(0.0).is_err());
        assert!(Poisson::new(-3.0).is_err());
        assert!(Poisson::new(1e6).is_ok());
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        for n in 1u64..20 {
            let exact: f64 = (1..n).map(|k| (k as f64).ln()).sum();
            assert!((ln_gamma(n as f64) - exact).abs() < 1e-9, "n={n}");
        }
    }

    #[test]
    fn normal_moments() {
        let d = Normal::new(3.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.03, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn lognormal_median() {
        let d = LogNormal::new(1.0, 0.9).unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let n = 100_000;
        let mut xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[n / 2];
        // Median of LogNormal(mu, sigma) is exp(mu).
        assert!((median - 1.0f64.exp()).abs() < 0.08, "median {median}");
    }

    #[test]
    fn poisson_moments_small_and_large() {
        let mut rng = StdRng::seed_from_u64(13);
        for &lambda in &[0.5, 4.0, 18.0, 260.0, 2600.0] {
            let d = Poisson::new(lambda).unwrap();
            let n = 60_000;
            let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
            let mean = xs.iter().sum::<f64>() / n as f64;
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
            // Poisson mean == variance == lambda; allow ~4 sigma of
            // estimator noise.
            let tol = 4.0 * (lambda / n as f64).sqrt() + 0.02 * lambda.max(1.0);
            assert!((mean - lambda).abs() < tol, "lambda={lambda} mean={mean}");
            assert!(
                (var - lambda).abs() < 6.0 * tol,
                "lambda={lambda} var={var}"
            );
            assert!(xs.iter().all(|&x| x >= 0.0 && x.fract() == 0.0));
        }
    }
}
