//! Offline replacement for serde's derive macros.
//!
//! Generates implementations of the vendored `serde::Serialize` /
//! `serde::Deserialize` traits (the simplified `Value`-tree model — see
//! the vendored `serde` crate docs). The input item is parsed directly
//! from the `proc_macro::TokenStream` so no `syn`/`quote` dependency is
//! needed.
//!
//! Supported shapes (everything this workspace derives):
//!
//! * structs with named fields, tuple structs (newtype and general),
//!   unit structs
//! * enums with unit variants, struct variants, and newtype variants
//!   (externally tagged, like serde's default)
//! * `#[serde(skip)]` on named struct fields: omitted on serialize,
//!   `Default::default()` on deserialize
//!
//! Generic parameters are intentionally unsupported — nothing in the
//! workspace derives serde on a generic type.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Serialize)
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Which {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, which: Which) -> TokenStream {
    let code = match parse_item(input) {
        Ok(item) => match which {
            Which::Serialize => gen_serialize(&item),
            Which::Deserialize => gen_deserialize(&item),
        },
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    code.parse().expect("derive emitted invalid Rust")
}

// --------------------------------------------------------------- parsing

struct Field {
    name: String,
    skip: bool,
}

enum VariantKind {
    Unit,
    Newtype,
    Struct(Vec<String>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Shape {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// True when the token is the `#` that starts an attribute.
fn is_pound(t: &TokenTree) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == '#')
}

/// Consumes attributes from the front of `toks`, returning whether any
/// of them was exactly `#[serde(skip)]`.
fn eat_attrs(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> bool {
    let mut skip = false;
    while toks.peek().map(is_pound).unwrap_or(false) {
        toks.next();
        if let Some(TokenTree::Group(g)) = toks.next() {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if let [TokenTree::Ident(id), TokenTree::Group(args)] = inner.as_slice() {
                if id.to_string() == "serde"
                    && args
                        .stream()
                        .into_iter()
                        .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "skip"))
                {
                    skip = true;
                }
            }
        }
    }
    skip
}

/// Consumes `pub`, `pub(...)` if present.
fn eat_vis(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if matches!(toks.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        toks.next();
        if matches!(toks.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            toks.next();
        }
    }
}

/// Skips one field *type* (tokens up to a top-level `,`), tracking
/// angle-bracket depth so commas inside generics don't terminate early.
fn skip_type(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    let mut depth = 0i32;
    while let Some(t) = toks.peek() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => return,
            _ => {}
        }
        toks.next();
    }
}

fn parse_named_fields(group: TokenStream) -> Result<Vec<Field>, String> {
    let mut toks = group.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let skip = eat_attrs(&mut toks);
        eat_vis(&mut toks);
        let name = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => return Err(format!("unexpected token in fields: {other}")),
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        skip_type(&mut toks);
        toks.next(); // the comma, if any
        fields.push(Field { name, skip });
    }
    Ok(fields)
}

/// Counts top-level comma-separated items in a tuple-field group.
fn count_tuple_fields(group: TokenStream) -> usize {
    let mut toks = group.into_iter().peekable();
    if toks.peek().is_none() {
        return 0;
    }
    let mut count = 1;
    let mut depth = 0i32;
    let mut trailing = true;
    for t in toks {
        trailing = false;
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                trailing = true;
            }
            _ => {}
        }
    }
    if trailing {
        count -= 1;
    }
    count
}

fn parse_variants(group: TokenStream) -> Result<Vec<Variant>, String> {
    let mut toks = group.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        eat_attrs(&mut toks);
        let name = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => return Err(format!("unexpected token in enum: {other}")),
        };
        let kind = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                if fields.iter().any(|f| f.skip) {
                    return Err("`#[serde(skip)]` is not supported in enum variants".into());
                }
                toks.next();
                VariantKind::Struct(fields.into_iter().map(|f| f.name).collect())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                toks.next();
                if n != 1 {
                    return Err(format!(
                        "variant `{name}`: only newtype tuple variants are supported"
                    ));
                }
                VariantKind::Newtype
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant (`= expr`) up to the comma.
        let mut depth = 0i32;
        for t in toks.by_ref() {
            match &t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut toks = input.into_iter().peekable();
    eat_attrs(&mut toks);
    eat_vis(&mut toks);
    let kw = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "cannot derive serde for generic type `{name}` with this vendored macro"
        ));
    }
    let shape = match kw.as_str() {
        "struct" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            other => return Err(format!("unexpected struct body: {other:?}")),
        },
        "enum" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("unexpected enum body: {other:?}")),
        },
        other => return Err(format!("cannot derive serde for `{other}` items")),
    };
    Ok(Item { name, shape })
}

// --------------------------------------------------------------- codegen

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
            let mut s = format!(
                "let mut __m = ::serde::Map::with_capacity({});\n",
                live.len()
            );
            for f in live {
                s.push_str(&format!(
                    "__m.insert(::std::string::String::from({:?}), \
                     ::serde::Serialize::to_value(&self.{}));\n",
                    f.name, f.name
                ));
            }
            s.push_str("::serde::Value::Object(__m)");
            s
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::String(\
                         ::std::string::String::from({v:?})),\n",
                        v = v.name
                    )),
                    VariantKind::Newtype => arms.push_str(&format!(
                        "{name}::{v}(__x) => {{\
                         let mut __m = ::serde::Map::with_capacity(1);\
                         __m.insert(::std::string::String::from({v:?}), \
                         ::serde::Serialize::to_value(__x));\
                         ::serde::Value::Object(__m) }}\n",
                        v = v.name
                    )),
                    VariantKind::Struct(fields) => {
                        let pat = fields.join(", ");
                        let mut inner = format!(
                            "let mut __f = ::serde::Map::with_capacity({});\n",
                            fields.len()
                        );
                        for f in fields {
                            inner.push_str(&format!(
                                "__f.insert(::std::string::String::from({f:?}), \
                                 ::serde::Serialize::to_value({f}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{v} {{ {pat} }} => {{\
                             {inner}\
                             let mut __m = ::serde::Map::with_capacity(1);\
                             __m.insert(::std::string::String::from({v:?}), \
                             ::serde::Value::Object(__f));\
                             ::serde::Value::Object(__m) }}\n",
                            v = v.name
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let mut s = format!(
                "let __m = __v.as_object().ok_or_else(|| \
                 ::serde::DeError::expected(\"object\", {name:?}))?;\n\
                 ::std::result::Result::Ok({name} {{\n"
            );
            for f in fields {
                if f.skip {
                    s.push_str(&format!(
                        "{}: ::std::default::Default::default(),\n",
                        f.name
                    ));
                } else {
                    s.push_str(&format!(
                        "{}: ::serde::de::field(__m, {:?}, {:?})?,\n",
                        f.name, f.name, name
                    ));
                }
            }
            s.push_str("})");
            s
        }
        Shape::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::Tuple(n) => {
            let mut s = format!(
                "let __a = __v.as_array().ok_or_else(|| \
                 ::serde::DeError::expected(\"array\", {name:?}))?;\n\
                 if __a.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::DeError::expected(\"array of {n}\", {name:?})); }}\n\
                 ::std::result::Result::Ok({name}(\n"
            );
            for i in 0..*n {
                s.push_str(&format!("::serde::Deserialize::from_value(&__a[{i}])?,\n"));
            }
            s.push_str("))");
            s
        }
        Shape::Unit => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "{v:?} => return ::std::result::Result::Ok({name}::{v}),\n",
                        v = v.name
                    )),
                    VariantKind::Newtype => tagged_arms.push_str(&format!(
                        "{v:?} => return ::std::result::Result::Ok({name}::{v}(\
                         ::serde::Deserialize::from_value(__inner)?)),\n",
                        v = v.name
                    )),
                    VariantKind::Struct(fields) => {
                        let mut inner = format!(
                            "{v:?} => {{\n\
                             let __f = __inner.as_object().ok_or_else(|| \
                             ::serde::DeError::expected(\"object\", {v:?}))?;\n\
                             return ::std::result::Result::Ok({name}::{v} {{\n",
                            v = v.name
                        );
                        for f in fields {
                            inner.push_str(&format!(
                                "{f}: ::serde::de::field(__f, {f:?}, {:?})?,\n",
                                v.name
                            ));
                        }
                        inner.push_str("});\n}\n");
                        tagged_arms.push_str(&inner);
                    }
                }
            }
            format!(
                "if let ::std::option::Option::Some(__s) = __v.as_str() {{\n\
                 match __s {{\n{unit_arms}\
                 _ => return ::std::result::Result::Err(::serde::DeError::custom(\
                 format!(\"unknown variant `{{__s}}` of {name}\"))),\n}}\n}}\n\
                 if let ::std::option::Option::Some(__m) = __v.as_object() {{\n\
                 if let ::std::option::Option::Some((__tag, __inner)) = __m.iter().next() {{\n\
                 match __tag.as_str() {{\n{tagged_arms}\
                 _ => return ::std::result::Result::Err(::serde::DeError::custom(\
                 format!(\"unknown variant `{{__tag}}` of {name}\"))),\n}}\n}}\n}}\n\
                 ::std::result::Result::Err(::serde::DeError::expected(\"enum value\", {name:?}))"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n"
    )
}
