//! Offline, dependency-free replacement for the subset of `criterion`
//! this workspace uses: `criterion_group!`/`criterion_main!`,
//! benchmark groups, `Bencher::iter`/`iter_batched` and `black_box`.
//!
//! Statistics are intentionally simple — per benchmark it reports the
//! minimum, mean, and median of `sample_size` wall-clock samples. That
//! is enough for the serial-vs-parallel speedup comparisons in
//! `crates/bench`; it makes no attempt at criterion's outlier analysis
//! or HTML reports.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target accumulated measurement time per sample batch.
const TARGET_BATCH: Duration = Duration::from_millis(25);

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // `cargo bench -- <filter>` passes the filter as a free argument;
        // flags like `--bench` are ignored.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 20,
        }
    }

    /// Runs a standalone benchmark (no group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_bench(self.filter.as_deref(), id, 20, f);
        self
    }
}

/// A named set of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timing samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target measurement time. Accepted for API compatibility;
    /// this implementation sizes batches automatically.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_bench(self.criterion.filter.as_deref(), &full, self.sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Batch sizing hint for [`Bencher::iter_batched`]. The hint is accepted
/// for API compatibility; batches are always one setup per routine call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Passed to each benchmark closure; runs and times the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, running it enough times per sample to amortise
    /// clock overhead.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Estimate a batch size hitting ~TARGET_BATCH per sample.
        let probe = Instant::now();
        black_box(routine());
        let once = probe.elapsed().max(Duration::from_nanos(50));
        let per_sample = (TARGET_BATCH.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u32;

        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / per_sample);
        }
    }

    /// Times `routine` on fresh inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(filter: Option<&str>, id: &str, sample_size: usize, mut f: F) {
    if let Some(pat) = filter {
        if !id.contains(pat) {
            return;
        }
    }
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id:<48} (no samples)");
        return;
    }
    b.samples.sort_unstable();
    let min = b.samples[0];
    let median = b.samples[b.samples.len() / 2];
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    println!(
        "{id:<48} min {:>12?}  mean {:>12?}  median {:>12?}  ({} samples)",
        min,
        mean,
        median,
        b.samples.len()
    );
}

/// Groups benchmark functions under one registry function, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion { filter: None };
        let mut group = c.benchmark_group("demo");
        group.sample_size(5);
        let mut count = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                count = count.wrapping_add(1);
                count
            })
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
        };
        let mut ran = false;
        c.bench_function("other", |b| {
            ran = true;
            b.iter(|| 1)
        });
        assert!(!ran);
    }
}
