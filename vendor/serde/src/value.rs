//! The in-memory JSON data model: [`Value`], [`Number`], [`Map`].

/// A JSON number. Kept as a tagged union so integer seeds above 2^53
/// round-trip exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Anything with a fractional part or exponent.
    F64(f64),
}

impl Number {
    /// Lossy view as `f64`.
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U64(n) => n as f64,
            Number::I64(n) => n as f64,
            Number::F64(x) => x,
        }
    }

    /// Exact view as `u64` when representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U64(n) => Some(n),
            Number::I64(n) => u64::try_from(n).ok(),
            Number::F64(x) if x >= 0.0 && x.fract() == 0.0 && x <= u64::MAX as f64 => {
                Some(x as u64)
            }
            Number::F64(_) => None,
        }
    }

    /// Exact view as `i64` when representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U64(n) => i64::try_from(n).ok(),
            Number::I64(n) => Some(n),
            Number::F64(x) if x.fract() == 0.0 && x >= i64::MIN as f64 && x <= i64::MAX as f64 => {
                Some(x as i64)
            }
            Number::F64(_) => None,
        }
    }
}

/// An insertion-ordered string-keyed map — the payload of
/// [`Value::Object`].
///
/// Backed by a `Vec` so iteration (and therefore serialized output) is
/// deterministic, which the parallel-equivalence tests rely on.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Map {
        Map {
            entries: Vec::new(),
        }
    }

    /// Creates an empty map with reserved capacity.
    pub fn with_capacity(n: usize) -> Map {
        Map {
            entries: Vec::with_capacity(n),
        }
    }

    /// Inserts a key/value pair, replacing (in place) any existing entry
    /// with the same key. Returns the previous value if there was one.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Map {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

impl<'a> IntoIterator for &'a Map {
    type Item = (&'a String, &'a Value);
    type IntoIter = std::iter::Map<
        std::slice::Iter<'a, (String, Value)>,
        fn(&'a (String, Value)) -> (&'a String, &'a Value),
    >;

    fn into_iter(self) -> Self::IntoIter {
        fn split(e: &(String, Value)) -> (&String, &Value) {
            (&e.0, &e.1)
        }
        self.entries.iter().map(split)
    }
}

/// An in-memory JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (insertion-ordered).
    Object(Map),
}

/// Shared sentinel for indexing misses.
static NULL: Value = Value::Null;

impl Value {
    /// `f64` view of a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Exact `u64` view of a number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// Exact `i64` view of a number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// Borrowed string view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object view.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member lookup; `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        self.as_i64() == Some(*other)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Member access; yields `Null` (not a panic) for misses, like
    /// `serde_json`.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}
