//! `Serialize` / `Deserialize` implementations for std types.

use crate::{DeError, Deserialize, Map, Number, Serialize, Value};
use std::collections::HashMap;

// ---------------------------------------------------------------- scalars

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, DeError> {
        v.as_bool().ok_or_else(|| DeError::expected("bool", "bool"))
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                v.as_u64()
                    .and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| DeError::expected(stringify!($t), "number"))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 {
                    Value::Number(Number::U64(n as u64))
                } else {
                    Value::Number(Number::I64(n))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                v.as_i64()
                    .and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| DeError::expected(stringify!($t), "number"))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::Number(Number::F64(*self))
        } else {
            // JSON has no NaN/inf; mirror serde_json's `null`.
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<f64, DeError> {
        match v {
            Value::Null => Ok(f64::NAN),
            _ => v.as_f64().ok_or_else(|| DeError::expected("f64", "number")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        // Exact widening; narrowing back in `Deserialize` recovers the
        // identical f32 bit pattern for finite values.
        if self.is_finite() {
            Value::Number(Number::F64(f64::from(*self)))
        } else {
            Value::Null
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<f32, DeError> {
        match v {
            Value::Null => Ok(f32::NAN),
            _ => v
                .as_f64()
                .map(|x| x as f32)
                .ok_or_else(|| DeError::expected("f32", "number")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::expected("string", "String"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

// ------------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn on_missing() -> Option<Self> {
        Some(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::expected("array", "Vec"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<[T; N], DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let got = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::custom(format!("expected array of {N}, got {got}")))
    }
}

macro_rules! impl_tuple {
    ($($name:ident : $idx:tt),+ ; $len:expr) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let a = v
                    .as_array()
                    .ok_or_else(|| DeError::expected("array", "tuple"))?;
                if a.len() != $len {
                    return Err(DeError::custom(format!(
                        "expected tuple of {}, got {}",
                        $len,
                        a.len()
                    )));
                }
                Ok(($($name::from_value(&a[$idx])?,)+))
            }
        }
    };
}

impl_tuple!(A: 0; 1);
impl_tuple!(A: 0, B: 1; 2);
impl_tuple!(A: 0, B: 1, C: 2; 3);
impl_tuple!(A: 0, B: 1, C: 2, D: 3; 4);

/// Types usable as JSON-object keys.
pub trait MapKey: Sized {
    /// Renders the key as a JSON object key.
    fn to_key_string(&self) -> String;
    /// Parses the key back.
    fn parse_key(s: &str) -> Option<Self>;
}

macro_rules! impl_int_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key_string(&self) -> String {
                self.to_string()
            }
            fn parse_key(s: &str) -> Option<$t> {
                s.parse().ok()
            }
        }
    )*};
}

impl_int_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl MapKey for String {
    fn to_key_string(&self) -> String {
        self.clone()
    }
    fn parse_key(s: &str) -> Option<String> {
        Some(s.to_owned())
    }
}

impl<K: MapKey + Ord, V: Serialize> Serialize for HashMap<K, V> {
    /// Entries are sorted by key so output is deterministic regardless
    /// of hasher state — required by the equivalence test suite.
    fn to_value(&self) -> Value {
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_key_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<HashMap<K, V>, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::expected("object", "HashMap"))?;
        let mut out = HashMap::with_capacity(obj.len());
        for (k, val) in obj.iter() {
            let key =
                K::parse_key(k).ok_or_else(|| DeError::custom(format!("bad map key `{k}`")))?;
            out.insert(key, V::from_value(val)?);
        }
        Ok(out)
    }
}

impl<K: MapKey + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    /// Already key-ordered; serialization is trivially deterministic.
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<std::collections::BTreeMap<K, V>, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::expected("object", "BTreeMap"))?;
        let mut out = std::collections::BTreeMap::new();
        for (k, val) in obj.iter() {
            let key =
                K::parse_key(k).ok_or_else(|| DeError::custom(format!("bad map key `{k}`")))?;
            out.insert(key, V::from_value(val)?);
        }
        Ok(out)
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(|v| v.to_value()).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(v: &Value) -> Result<std::collections::BTreeSet<T>, DeError> {
        let arr = v
            .as_array()
            .ok_or_else(|| DeError::expected("array", "BTreeSet"))?;
        arr.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Box<T>, DeError> {
        T::from_value(v).map(Box::new)
    }
}

// ------------------------------------------------------------------ Value

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for Map {
    fn to_value(&self) -> Value {
        Value::Object(self.clone())
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(self.as_secs_f64()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(x: T) {
        let v = x.to_value();
        assert_eq!(T::from_value(&v).unwrap(), x);
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(42u64);
        roundtrip(u64::MAX);
        roundtrip(-7i64);
        roundtrip(3.5f64);
        roundtrip(1.1f32);
        roundtrip(true);
        roundtrip(String::from("hi"));
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Some(5u8));
        roundtrip(Option::<u8>::None);
        roundtrip((1u64, 2u64));
        roundtrip([1.0f32, 2.0, 3.0, 4.0]);
        roundtrip(vec![(1u32, 2u32), (3, 4)]);
        let mut m = HashMap::new();
        m.insert(3u32, 0.5f32);
        m.insert(1u32, 1.5f32);
        roundtrip(m);
    }

    #[test]
    fn hashmap_serialization_is_sorted() {
        let mut m = HashMap::new();
        for k in [9u32, 1, 5, 3] {
            m.insert(k, k);
        }
        let v = m.to_value();
        let keys: Vec<&str> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["1", "3", "5", "9"]);
    }

    #[test]
    fn option_is_optional_field() {
        assert_eq!(Option::<u32>::on_missing(), Some(None));
        assert_eq!(u32::on_missing(), None);
    }
}
