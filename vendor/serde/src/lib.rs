//! Offline, dependency-free replacement for the subset of `serde` this
//! workspace uses.
//!
//! The build container has no network access, so the real `serde` cannot
//! be downloaded. This crate keeps the *spelling* of the serde API the
//! workspace relies on — `use serde::{Serialize, Deserialize}` plus the
//! derive macros — while using a much simpler data model underneath:
//! values serialize into an in-memory JSON [`Value`] tree, and
//! deserialize back out of one. The companion `serde_json` vendor crate
//! supplies the text layer (`to_string`, `from_str`, `json!`).
//!
//! Design notes:
//!
//! * [`Value::Object`] keeps insertion order (backed by a `Vec`), and
//!   `HashMap` serialization sorts by key, so serialized output is fully
//!   deterministic — a property the parallel-equivalence test suite
//!   depends on (serialized traces are compared across thread counts).
//! * Numbers are a tagged union ([`Number`]) so `u64` seeds above 2^53
//!   survive round-trips exactly.
//! * `#[serde(skip)]` is supported on named struct fields: skipped on
//!   serialize, filled from `Default` on deserialize.

mod error;
mod impls;
mod value;

pub use error::DeError;
pub use impls::MapKey;
pub use value::{Map, Number, Value};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A type that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reads `Self` out of a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the value's shape does not match.
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// What to produce when a struct field is absent from the input.
    ///
    /// `None` means "absence is an error" (the default); `Option<T>`
    /// overrides this to yield `None`, matching serde's treatment of
    /// optional fields.
    fn on_missing() -> Option<Self> {
        None
    }
}

/// Support code referenced by the derive macros; not part of the public
/// API contract.
pub mod de {
    use super::{DeError, Deserialize, Map};

    /// Looks up and deserializes one struct field.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the field is missing (and has no
    /// `on_missing` fallback) or has the wrong shape.
    pub fn field<T: Deserialize>(m: &Map, key: &str, ty: &str) -> Result<T, DeError> {
        match m.get(key) {
            Some(v) => T::from_value(v).map_err(|e| DeError::custom(format!("{ty}.{key}: {e}"))),
            None => T::on_missing()
                .ok_or_else(|| DeError::custom(format!("{ty}: missing field `{key}`"))),
        }
    }
}
