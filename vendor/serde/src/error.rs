//! Deserialization error type.

/// Error produced when a [`crate::Value`] does not match the expected
/// shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Builds an error from a message.
    pub fn custom(msg: impl Into<String>) -> DeError {
        DeError { msg: msg.into() }
    }

    /// Builds a "expected X while reading Y" error.
    pub fn expected(what: &str, ctx: &str) -> DeError {
        DeError {
            msg: format!("{ctx}: expected {what}"),
        }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}
