//! Value-generation strategies.

use rand::rngs::StdRng;
use rand::{Rng, RngCore};
use std::fmt::Debug;
use std::ops::Range;

/// A recipe for generating values of one type.
///
/// `generate` returns `None` when the candidate was rejected by a
/// filter; the runner then retries with fresh randomness.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one candidate value.
    fn generate(&self, rng: &mut StdRng) -> Option<Self::Value>;

    /// Keeps only candidates for which `f` returns `Some`, mapping them
    /// in the same step. `whence` labels the filter in diagnostics.
    fn prop_filter_map<O, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            inner: self,
            f,
            whence,
        }
    }

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        MapStrategy { inner: self, f }
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    #[allow(dead_code)]
    whence: &'static str,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> Option<O> {
        self.inner.generate(rng).and_then(&self.f)
    }
}

/// See [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for MapStrategy<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> Option<O> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> Option<T> {
        Some(self.0.clone())
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> Option<$t> {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128 * span) >> 64;
                Some((self.start as i128 + draw as i128) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> Option<$t> {
                assert!(self.start < self.end, "empty strategy range");
                let u: $t = rng.gen();
                Some(self.start + u * (self.end - self.start))
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Option<Self::Value> {
                Some(($(self.$idx.generate(rng)?,)+))
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
