//! Offline, dependency-free replacement for the subset of `proptest`
//! this workspace uses.
//!
//! Provides the `proptest!` test macro, `prop_assert*`/`prop_assume!`,
//! `ProptestConfig::with_cases`, range/tuple/`collection::vec`
//! strategies and `prop_filter_map`/`prop_map` combinators.
//!
//! Differences from upstream: no shrinking (a failing case panics with
//! the generated inputs' `Debug` form), and generation is deterministic
//! per test binary (override with `PROPTEST_SEED`).

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// What the upstream crate calls the prelude.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `#[test] fn name(pat in strategy, ...)`
/// runs `cases` times with freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run_cases(&($cfg), stringify!($name), |__rng| {
                let __vals = ( $(
                    match $crate::strategy::Strategy::generate(&($strat), __rng) {
                        ::std::option::Option::Some(v) => v,
                        ::std::option::Option::None => {
                            return $crate::test_runner::CaseResult::Reject;
                        }
                    },
                )* );
                let __dbg = ::std::format!("{:?}", __vals);
                let ( $($arg,)* ) = __vals;
                let __res = (move || -> $crate::test_runner::CaseResult {
                    $body
                    $crate::test_runner::CaseResult::Pass
                })();
                match __res {
                    $crate::test_runner::CaseResult::Fail(msg) => {
                        $crate::test_runner::CaseResult::Fail(::std::format!(
                            "{msg}\n  inputs: {}", __dbg
                        ))
                    }
                    other => other,
                }
            });
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

/// Fails the current case (without panicking out of the runner) when the
/// condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return $crate::test_runner::CaseResult::Fail(::std::format!($($fmt)+));
        }
    };
}

/// Equality assertion; prints both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: {} == {}\n  left: {:?}\n  right: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            __l,
            __r
        );
    }};
}

/// Inequality assertion; prints both sides on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: {} != {}\n  left: {:?}\n  right: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            __l,
            __r
        );
    }};
}

/// Discards the current case (it is regenerated, not failed) when the
/// condition is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return $crate::test_runner::CaseResult::Reject;
        }
    };
}
