//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// Length specification for [`vec`]: an exact length or a half-open
/// range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Generates `Vec`s whose elements come from `element` and whose length
/// falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Option<Vec<S::Value>> {
        let len = if self.size.lo + 1 == self.size.hi {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..self.size.hi)
        };
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.element.generate(rng)?);
        }
        Some(out)
    }
}
