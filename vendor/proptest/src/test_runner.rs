//! The case runner behind the `proptest!` macro.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
    /// Give up after this many rejected candidates in a row.
    pub max_local_rejects: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            max_local_rejects: 65_536,
        }
    }
}

/// Outcome of one generated case.
#[derive(Debug)]
pub enum CaseResult {
    /// The property held.
    Pass,
    /// The inputs were filtered out (`prop_assume!` / filters).
    Reject,
    /// The property failed.
    Fail(String),
}

/// Runs `f` until `cfg.cases` cases pass, panicking on the first
/// failure. Generation is deterministic: the stream is seeded from the
/// test name (override the base seed with `PROPTEST_SEED`).
pub fn run_cases(cfg: &ProptestConfig, name: &str, mut f: impl FnMut(&mut StdRng) -> CaseResult) {
    let base = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5BE_CA5E5u64);
    let name_hash = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
    });
    let mut rng = StdRng::seed_from_u64(base ^ name_hash);

    let mut passed = 0u32;
    let mut rejects = 0u32;
    while passed < cfg.cases {
        match f(&mut rng) {
            CaseResult::Pass => {
                passed = passed.saturating_add(1);
                rejects = 0;
            }
            CaseResult::Reject => {
                rejects = rejects.saturating_add(1);
                assert!(
                    rejects <= cfg.max_local_rejects,
                    "proptest `{name}`: too many rejected candidates \
                     ({rejects}); loosen the filter or the strategy"
                );
            }
            CaseResult::Fail(msg) => {
                panic!("proptest `{name}` failed after {passed} passing cases:\n  {msg}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..10, y in -5i32..5, f in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_lengths_in_range(xs in prop::collection::vec(0u8..255, 2..7)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 7);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn filter_map_applies(x in (0u32..50).prop_filter_map("evens", |v| {
            if v % 2 == 0 { Some(v * 2) } else { None }
        })) {
            prop_assert_eq!(x % 4, 0);
        }
    }

    #[test]
    #[should_panic(expected = "failed after")]
    // The nested proptest! expansion defines a #[test] fn inside a fn
    // body on purpose: we invoke it directly to observe the panic.
    #[allow(unnameable_test_items)]
    fn failures_panic_with_inputs() {
        proptest! {
            #[test]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
