//! JSON text emission.

use crate::Error;
use serde::{Number, Serialize, Value};
use std::fmt::Write as _;

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Currently infallible for tree inputs; the `Result` mirrors the
/// upstream `serde_json` signature so call sites using `?` compile
/// unchanged.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// See [`to_string`].
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
}

fn write_number(out: &mut String, n: &Number) {
    match *n {
        Number::U64(x) => {
            let _ = write!(out, "{x}");
        }
        Number::I64(x) => {
            let _ = write!(out, "{x}");
        }
        Number::F64(x) => {
            if x.is_finite() {
                // Rust's Display prints the shortest decimal that parses
                // back to the identical f64 and never uses exponents, so
                // the output is both valid JSON and round-trip exact.
                let _ = write!(out, "{x}");
            } else {
                out.push_str("null");
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
