//! Offline, dependency-free replacement for the subset of `serde_json`
//! this workspace uses: [`to_string`], [`to_string_pretty`],
//! [`from_str`], [`Value`]/[`Map`]/[`Number`] and the [`json!`] macro.
//!
//! Text format notes:
//!
//! * floats print via Rust's shortest round-trip `Display`, so every
//!   finite value parses back bit-identically;
//! * object key order is preserved (see the vendored `serde` crate), so
//!   output is deterministic — the parallel-equivalence tests compare
//!   serialized traces across thread counts.

mod read;
mod write;

pub use read::from_str;
pub use serde::{Map, Number, Value};
pub use write::{to_string, to_string_pretty};

/// Error for serialization or parsing failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    pub(crate) fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error::new(e.to_string())
    }
}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> std::io::Error {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(v: &T) -> Value {
    v.to_value()
}

/// Builds a [`Value`] with JSON-like syntax.
///
/// Supports the workspace's usage: object literals with string-literal
/// keys and expression values, array literals, `null`, and bare
/// expressions (anything implementing the vendored `serde::Serialize`).
/// Nested structure is written with nested `json!` calls.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:tt : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut __map = $crate::Map::new();
        $( __map.insert(::std::string::String::from($key), $crate::to_value(&$val)); )*
        $crate::Value::Object(__map)
    }};
    ([ $($val:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![ $( $crate::to_value(&$val) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        assert_eq!(json!(null), Value::Null);
        assert_eq!(to_string(&json!({})).unwrap(), "{}");
        let v = json!({"a": 1, "b": [1.5, 2.5], "c": json!({"d": "x"})});
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"a":1,"b":[1.5,2.5],"c":{"d":"x"}}"#
        );
        assert_eq!(json!(3u64), Value::Number(Number::U64(3)));
    }

    #[test]
    fn roundtrip_via_text() {
        let v = json!({"seed": u64::MAX, "xs": json!([1u64, -2i64, 3.25]), "s": "a\"b\n"});
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_is_indented() {
        let s = to_string_pretty(&json!({"x": 1})).unwrap();
        assert_eq!(s, "{\n  \"x\": 1\n}");
    }

    #[test]
    fn typed_roundtrip() {
        let xs = vec![(1u64, 2u64), (3, 4)];
        let s = to_string(&xs).unwrap();
        let back: Vec<(u64, u64)> = from_str(&s).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn float_shortest_roundtrip() {
        for &x in &[0.1f64, 1.0 / 3.0, 1e-8, 12345.6789, f64::MAX] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{s}");
        }
        for &x in &[0.1f32, 1.1f32, f32::MAX] {
            let s = to_string(&x).unwrap();
            let back: f32 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{s}");
        }
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<u32>("\"hi\"").is_err());
    }
}
