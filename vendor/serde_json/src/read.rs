//! JSON text parsing (recursive descent).

use crate::Error;
use serde::{Deserialize, Map, Number, Value};

/// Parses a JSON document into any deserializable type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON, trailing input, or a shape
/// mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(T::from_value(&value)?)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("recursion limit exceeded"));
        }
        match self.peek() {
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(depth),
            Some(b'{') => self.parse_object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_literal("\\u") {
                                    return Err(self.err("lone surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && self.bytes[end] & 0xC0 == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F64(f)))
            .map_err(|_| self.err("invalid number"))
    }
}
