//! Offline, dependency-free replacement for the subset of the `rand`
//! crate API this workspace uses.
//!
//! The container this repository builds in has no network access and no
//! registry cache, so external crates cannot be downloaded. This crate
//! re-implements — from the documented public API, not the upstream
//! sources — exactly the surface the workspace consumes:
//!
//! * [`RngCore`] / [`SeedableRng::seed_from_u64`]
//! * [`rngs::StdRng`] (xoshiro256++ seeded through SplitMix64)
//! * the [`Rng`] extension trait: `gen`, `gen_bool`, `gen_range` over
//!   half-open and inclusive ranges
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates)
//!
//! Streams are deterministic for a given seed but do **not** match the
//! upstream `rand` crate bit-for-bit; statistical assertions in the
//! test-suite are calibrated against these streams (see DESIGN.md).

pub mod rngs;
pub mod seq;

/// Core random-number source: 64 bits at a time.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a single `u64`, expanding it with
    /// SplitMix64 so that nearby seeds give unrelated streams.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step — the standard seed expander for xoshiro-family
/// generators.
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types samplable from the "standard" distribution (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

/// Uniform integer in `[0, span)` by 128-bit widening multiply.
#[inline]
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

/// Types with a uniform sampler over an interval.
pub trait SampleUniform: Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + uniform_u64(rng, span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64 + 1;
                (lo as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let u: $t = Standard::sample_standard(rng);
                lo + u * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                // Closed float intervals are sampled like half-open ones;
                // the endpoint has measure zero.
                assert!(lo <= hi, "gen_range: empty range");
                let u: $t = Standard::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_uniform!(f32, f64);

/// Ranges that [`Rng::gen_range`] accepts for output type `T`.
///
/// Blanket impls over [`SampleUniform`] (mirroring upstream `rand`) so
/// that float/integer literal fallback resolves the element type the
/// same way it does with the real crate.
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let u: f64 = Standard::sample_standard(self);
        u < p
    }

    /// Uniform draw from a half-open or inclusive range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_in(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = r.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = r.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(3u32..=5);
            assert!((3..=5).contains(&w));
            let f = r.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn uniform_mean_is_centred() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
