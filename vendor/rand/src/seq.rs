//! Slice helpers (`SliceRandom`).

use crate::{Rng, RngCore};

/// Random operations on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates, back to front).
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);

    /// Returns a uniformly chosen reference, or `None` when empty.
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..100).collect();
        let mut rng = StdRng::seed_from_u64(5);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn choose_in_bounds() {
        let v = [1, 2, 3];
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
    }
}
