//! Concrete generators.

use crate::{splitmix64, RngCore, SeedableRng};

/// The workspace's standard generator: xoshiro256++.
///
/// Fast, 256-bit state, passes BigCrush; seeded from a single `u64`
/// through SplitMix64 like the upstream xoshiro reference code. Not the
/// same stream as the upstream `rand::rngs::StdRng` (ChaCha12) — see the
/// crate docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut st = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut st);
        }
        // All-zero state is a fixed point; SplitMix64 cannot produce four
        // zero outputs in a row, but keep the guard for clarity.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Alias kept for API compatibility with `rand::rngs::SmallRng`.
pub type SmallRng = StdRng;
