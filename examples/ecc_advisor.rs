//! ECC advisor: the paper's motivating application (§I, §VIII).
//!
//! ECC protection costs real-world GPU applications up to ~10% of
//! performance through lost memory bandwidth, so computational scientists
//! sometimes turn it off blindly. This example uses the TwoStage
//! predictor's probabilities to decide, per (application, node) run,
//! whether ECC can be switched off safely — and quantifies the trade-off
//! between reclaimed node-hours and unprotected SBEs.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example ecc_advisor
//! ```

use gpu_error_prediction::mlkit::gbdt::Gbdt;
use gpu_error_prediction::sbepred::datasets::DsSplit;
use gpu_error_prediction::sbepred::features::FeatureSpec;
use gpu_error_prediction::sbepred::tuning::{best_f1_threshold, max_recall_at_precision};
use gpu_error_prediction::sbepred::twostage::TwoStage;
use gpu_error_prediction::titan_sim::config::SimConfig;
use gpu_error_prediction::titan_sim::engine::generate;

/// Fraction of performance lost to ECC (paper: up to 10%).
const ECC_OVERHEAD: f64 = 0.10;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = generate(&SimConfig::tiny(7))?;
    let split = DsSplit::ds1(&trace)?;
    let mut model = TwoStage::new(
        Gbdt::new()
            .n_trees(80)
            .max_depth(5)
            .min_samples_leaf(5)
            .pos_weight(2.0),
        FeatureSpec::all(),
    );
    let outcome = model.run(&trace, &split)?;

    // Sweep the probability threshold at which we keep ECC enabled:
    // predict-SBE => keep ECC on; predict-free => turn ECC off and
    // reclaim the overhead.
    println!("ECC advisor on {} test runs:", outcome.test_samples.len());
    println!(
        "{:>10} {:>14} {:>16} {:>18}",
        "threshold", "ECC-off runs", "node-hours saved", "unprotected SBEs"
    );
    for threshold in [0.1f32, 0.3, 0.5, 0.7, 0.9] {
        let mut off_runs = 0u64;
        let mut saved_node_hours = 0.0f64;
        let mut unprotected = 0u64;
        for (i, s) in outcome.test_samples.iter().enumerate() {
            let p = outcome.probabilities[i];
            if p < threshold {
                off_runs += 1;
                saved_node_hours += s.runtime_min() as f64 / 60.0 * ECC_OVERHEAD;
                // Ground truth: SBEs that would have gone uncorrected.
                unprotected += s.sbe_count as u64;
            }
        }
        println!("{threshold:>10.1} {off_runs:>14} {saved_node_hours:>16.1} {unprotected:>18}");
    }

    // Threshold tuning: instead of guessing, derive the operating point.
    if let Ok(best) = best_f1_threshold(&outcome.truth, &outcome.probabilities) {
        println!(
            "\nF1-optimal threshold: {:.3} (P={:.2} R={:.2} F1={:.2})",
            best.threshold, best.metrics.precision, best.metrics.recall, best.metrics.f1
        );
    }
    if let Ok(Some(safe)) = max_recall_at_precision(&outcome.truth, &outcome.probabilities, 0.9) {
        println!(
            "most permissive threshold with precision >= 0.90: {:.3} (recall {:.2})",
            safe.threshold, safe.metrics.recall
        );
    }

    // The always-off policy scientists use today, for contrast.
    let total_hours: f64 = outcome
        .test_samples
        .iter()
        .map(|s| s.runtime_min() as f64 / 60.0 * ECC_OVERHEAD)
        .sum();
    let total_sbes: u64 = outcome
        .test_samples
        .iter()
        .map(|s| s.sbe_count as u64)
        .sum();
    println!(
        "\nnaive always-off policy: saves {total_hours:.1} node-hours but leaves\n\
         all {total_sbes} SBEs uncorrected; the predictor reclaims most of the\n\
         savings while keeping ECC on exactly where errors concentrate."
    );
    Ok(())
}
