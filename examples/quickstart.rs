//! Quickstart: simulate a small Titan-like system, train the paper's
//! TwoStage+GBDT predictor, and evaluate it.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gpu_error_prediction::mlkit::gbdt::Gbdt;
use gpu_error_prediction::sbepred::datasets::DsSplit;
use gpu_error_prediction::sbepred::features::FeatureSpec;
use gpu_error_prediction::sbepred::twostage::TwoStage;
use gpu_error_prediction::titan_sim::config::SimConfig;
use gpu_error_prediction::titan_sim::engine::generate;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate a synthetic trace: 64 nodes, 30 days, deterministic.
    let cfg = SimConfig::tiny(7);
    println!(
        "simulating {} nodes for {} days (seed {})...",
        cfg.topology.n_nodes(),
        cfg.days,
        cfg.seed
    );
    let trace = generate(&cfg)?;
    println!(
        "  {} batch jobs, {} apruns, {} (app, node) samples",
        trace.jobs().len(),
        trace.apruns().len(),
        trace.samples().len()
    );
    println!(
        "  SBE-affected sample rate: {:.2}% (the paper's dataset: <2%)",
        trace.positive_rate() * 100.0
    );

    // 2. Split: 70% of the trace trains, the following window tests.
    let split = DsSplit::ds1(&trace)?;
    let (ts, te) = split.train_window();
    let (vs, ve) = split.test_window();
    println!("  train minutes [{ts}, {te}), test minutes [{vs}, {ve})");

    // 3. TwoStage: stage 1 filters to SBE offender nodes, stage 2 is a
    //    gradient-boosted decision tree over the paper's feature groups.
    let gbdt = Gbdt::new()
        .n_trees(80)
        .max_depth(5)
        .min_samples_leaf(5)
        .pos_weight(2.0);
    let mut model = TwoStage::new(gbdt, FeatureSpec::all());
    let outcome = model.run(&trace, &split)?;

    // 4. Report.
    let cm = outcome.confusion().unwrap();
    println!("\nTwoStage + GBDT on {}:", split.name());
    println!("  stage-2 training samples: {}", outcome.n_stage2_train);
    println!("  training time: {:.2?}", outcome.train_time);
    println!("  precision = {:.3}", cm.precision());
    println!("  recall    = {:.3}", cm.recall());
    println!("  F1        = {:.3}", cm.f1());
    println!(
        "\n(the paper reports F1 = 0.81 / precision 0.76 / recall 0.87 on\n\
         its full-scale DS1; run `cargo run --release -p sbe-bench --bin\n\
         repro -- fig10` for the full-scale reproduction)"
    );
    Ok(())
}
