//! Fleet monitor: the operational loop the paper envisions (§VI-A) —
//! the model is retrained periodically (every two weeks on Titan) as new
//! jobs finish and new SBE history becomes visible, and each window's
//! predictions are scored once its ground truth arrives.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example fleet_monitor
//! ```

use gpu_error_prediction::mlkit::gbdt::Gbdt;
use gpu_error_prediction::sbepred::datasets::DsSplit;
use gpu_error_prediction::sbepred::experiments::Lab;
use gpu_error_prediction::sbepred::features::FeatureSpec;
use gpu_error_prediction::sbepred::twostage::{prepare_with_extractor, run_classifier};
use gpu_error_prediction::titan_sim::config::SimConfig;
use gpu_error_prediction::titan_sim::engine::generate;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = SimConfig::tiny(11);
    let trace = generate(&cfg)?;
    let lab = Lab::new(&trace)?;

    let days = cfg.days as u64;
    let train_days = 10u64;
    let test_days = 3u64;
    let spec = FeatureSpec::all();

    println!("fleet monitor: retrain every {test_days} days, train on the last {train_days}\n");
    println!(
        "{:>16} {:>10} {:>10} {:>8} {:>8} {:>8}",
        "window", "offenders", "stage2", "P", "R", "F1"
    );

    let mut start = 0u64;
    while start + train_days + test_days <= days {
        let split =
            DsSplit::from_days(format!("day{start}"), &trace, start, train_days, test_days)?;
        match prepare_with_extractor(lab.extractor(), lab.samples(), &split, &spec) {
            Ok(prepared) => {
                let mut model = Gbdt::new()
                    .n_trees(60)
                    .max_depth(5)
                    .min_samples_leaf(5)
                    .pos_weight(2.0);
                let out = run_classifier(&prepared, &mut model)?;
                let cm = out.confusion().unwrap();
                println!(
                    "{:>16} {:>10} {:>10} {:>8.3} {:>8.3} {:>8.3}",
                    format!("day {start}-{}", start + train_days + test_days),
                    prepared.n_offenders,
                    out.n_stage2_train,
                    cm.precision(),
                    cm.recall(),
                    cm.f1()
                );
            }
            Err(_) => {
                // Early windows may have no offender history yet — the
                // cold-start case the paper notes is healed by waiting
                // for more history.
                println!(
                    "{:>16} {:>10}",
                    format!("day {start}-{}", start + train_days + test_days),
                    "cold-start"
                );
            }
        }
        start += test_days;
    }

    println!(
        "\noffender sets grow as history accumulates; prediction quality\n\
         stays stable across retraining windows (paper: periodic\n\
         retraining keeps the TwoStage filter current)."
    );
    Ok(())
}
