//! Feature forecasting: predict a run's temperature/power statistics
//! *before* it executes (the paper's §VI-A "second approach" / §VIII),
//! then feed the forecasts into the trained classifier.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example feature_forecast
//! ```

use gpu_error_prediction::sbepred::experiments::{extensions, Lab};
use gpu_error_prediction::sbepred::forecast::{forecast_series_stats, FORECAST_LOOKBACK_MIN};
use gpu_error_prediction::titan_sim::config::SimConfig;
use gpu_error_prediction::titan_sim::engine::{generate, TelemetryQueryEngine};
use gpu_error_prediction::titan_sim::telemetry::{window_stats, SeriesKind};
use gpu_error_prediction::tscast::ar::ArModel;
use gpu_error_prediction::tscast::eval::backtest;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = generate(&SimConfig::tiny(7))?;
    let engine = TelemetryQueryEngine::new(&trace)?;

    // Pick a long-ish run that starts after enough telemetry history.
    let sample = trace
        .samples()
        .iter()
        .find(|s| {
            let run = trace.aprun(s.aprun).expect("valid id");
            run.start_min > FORECAST_LOOKBACK_MIN && run.runtime_min() >= 60
        })
        .expect("a suitable run exists");
    let run = trace.aprun(sample.aprun)?;
    let (start, end) = (run.start_min, run.end_min);

    // 1. Raw one-step AR accuracy on the pre-run temperature series.
    let pre_temp = engine.node_series(
        sample.node,
        SeriesKind::GpuTemp,
        start - FORECAST_LOOKBACK_MIN,
        start,
    )?;
    let hist: Vec<f64> = pre_temp.iter().map(|&v| v as f64).collect();
    let model = ArModel::fit(&hist, 4)?;
    let errors = backtest(&model, &hist, 30)?;
    println!(
        "AR(4) one-step backtest on {} pre-run minutes of node {} temperature:",
        hist.len(),
        sample.node
    );
    println!(
        "  MAE = {:.3} C, RMSE = {:.3} C over {} points",
        errors.mae, errors.rmse, errors.n
    );

    // 2. Forecast the run window's statistics and compare to the truth.
    let horizon = (end - start) as usize;
    let forecast = forecast_series_stats(&pre_temp, horizon);
    let actual = window_stats(
        engine
            .node_series(sample.node, SeriesKind::GpuTemp, start, end)?
            .as_slice(),
    );
    println!("\nrun-window temperature statistics ({horizon} minutes ahead):");
    println!(
        "  forecast: mean {:.2} C, std {:.2}",
        forecast.mean, forecast.std
    );
    println!(
        "  actual:   mean {:.2} C, std {:.2}",
        actual.mean, actual.std
    );

    // 3. End-to-end: measured vs forecast features through the trained
    //    classifier (the ext_forecast experiment).
    let lab = Lab::new(&trace)?;
    let out = extensions::ext_forecast(&lab)?;
    println!("\n{out}");
    Ok(())
}
