//! `parkit` — a small deterministic execution layer over
//! [`std::thread::scope`].
//!
//! Every hot path in this workspace (GBDT split finding, k-fold CV,
//! threshold sweeps, trace generation) is embarrassingly parallel, but
//! parallelism is only admissible here if it cannot change results: the
//! repro claim rests on bit-for-bit determinism. `parkit` therefore
//! provides *order-preserving* primitives only:
//!
//! * [`par_map`] / [`par_map_indexed`] — map over a slice on worker
//!   threads; the output `Vec` is in input order regardless of thread
//!   scheduling. Work is handed out in chunks from an atomic cursor, so
//!   imbalanced items still load-balance.
//! * [`try_par_map`] / [`try_par_map_indexed`] — fallible variants with
//!   **first-error propagation**: the returned error is the one produced
//!   at the *lowest input index*, exactly what a serial loop would
//!   return. (Later items may still be evaluated — callers must not rely
//!   on short-circuiting for side effects.)
//! * [`par_apply_chunks`] — in-place parallel mutation of disjoint
//!   contiguous chunks (static partition, deterministic by
//!   construction).
//!
//! The [`Threads`] policy picks the worker count: [`Threads::Serial`]
//! runs inline on the calling thread (no pool, no spawn), so a
//! `Serial` run and an N-thread run of any `parkit` primitive are
//! bit-for-bit identical as long as the mapped function is pure. The
//! `SBE_THREADS` environment variable overrides [`Threads::Auto`].
//!
//! ```
//! use parkit::{par_map, Threads};
//!
//! let squares = par_map(Threads::Fixed(4), &[1u64, 2, 3, 4], |x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker-count policy for `parkit` primitives.
///
/// Serialization note: structs embedding a `Threads` mark the field
/// `#[serde(skip)]` — the thread policy is an execution detail and must
/// not leak into serialized artifacts (the parallel-equivalence tests
/// compare serialized outputs across policies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Threads {
    /// Run inline on the calling thread; never spawns.
    Serial,
    /// Exactly this many workers (clamped to at least 1).
    Fixed(usize),
    /// `SBE_THREADS` if set and valid, else all available cores.
    #[default]
    Auto,
}

impl Threads {
    /// The effective worker count for this policy.
    pub fn resolve(self) -> usize {
        match self {
            Threads::Serial => 1,
            Threads::Fixed(n) => n.max(1),
            Threads::Auto => env_override()
                // detlint: allow(D008) reason=thread-count selection only; par_map merges per-index results in fixed order, so output is thread-count invariant
                .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, usize::from)),
        }
    }

    /// Whether this policy runs strictly inline.
    pub fn is_serial(self) -> bool {
        self.resolve() <= 1
    }
}

/// Parses `SBE_THREADS`; `0`, empty, or garbage means "not set".
fn env_override() -> Option<usize> {
    std::env::var("SBE_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// Order-preserving parallel map.
pub fn par_map<T, U, F>(threads: Threads, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_indexed(threads, items, |_, t| f(t))
}

/// Order-preserving parallel map with the item index.
pub fn par_map_indexed<T, U, F>(threads: Threads, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    // Infallible: route through the fallible core with an uninhabited
    // error type so there is exactly one execution path to test.
    match try_par_map_indexed(threads, items, |i, t| Ok::<U, Never>(f(i, t))) {
        Ok(v) => v,
        Err(never) => match never {},
    }
}

enum Never {}

/// Fallible order-preserving parallel map. See [`try_par_map_indexed`].
///
/// # Errors
///
/// Returns the error produced at the lowest failing input index.
pub fn try_par_map<T, U, E, F>(threads: Threads, items: &[T], f: F) -> Result<Vec<U>, E>
where
    T: Sync,
    U: Send,
    E: Send,
    F: Fn(&T) -> Result<U, E> + Sync,
{
    try_par_map_indexed(threads, items, |_, t| f(t))
}

/// Fallible order-preserving parallel map with the item index.
///
/// Results come back in input order. On failure the error returned is
/// the one at the lowest failing index — identical to what a serial
/// `for` loop over the same pure function would surface — regardless of
/// which worker hit it first. Chunk size is picked automatically; use
/// [`try_par_map_chunked`] to pin it.
///
/// # Errors
///
/// Returns the error produced at the lowest failing input index.
pub fn try_par_map_indexed<T, U, E, F>(threads: Threads, items: &[T], f: F) -> Result<Vec<U>, E>
where
    T: Sync,
    U: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<U, E> + Sync,
{
    // Four chunks per worker amortises the atomic cursor while keeping
    // tail imbalance low.
    let workers = threads.resolve().min(items.len().max(1));
    let chunk = items.len().div_ceil(workers.max(1) * 4).max(1);
    try_par_map_chunked(threads, chunk, items, f)
}

/// [`try_par_map_indexed`] with an explicit chunk size (the unit of work
/// handed to a worker at a time). Output is identical for every chunk
/// size; only scheduling granularity changes.
///
/// # Errors
///
/// Returns the error produced at the lowest failing input index.
///
/// # Panics
///
/// Re-raises panics from worker threads on the calling thread.
pub fn try_par_map_chunked<T, U, E, F>(
    threads: Threads,
    chunk: usize,
    items: &[T],
    f: F,
) -> Result<Vec<U>, E>
where
    T: Sync,
    U: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<U, E> + Sync,
{
    let n = items.len();
    let workers = threads.resolve().min(n);
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk = chunk.max(1);
    let cursor = AtomicUsize::new(0);
    let f = &f;
    let cursor = &cursor;

    let locals: Vec<Vec<(usize, Result<U, E>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        let end = (start + chunk).min(n);
                        for (k, item) in items[start..end].iter().enumerate() {
                            let i = start + k;
                            local.push((i, f(i, item)));
                        }
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(local) => local,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });

    let mut out: Vec<Option<U>> = std::iter::repeat_with(|| None).take(n).collect();
    let mut first_err: Option<(usize, E)> = None;
    for local in locals {
        for (i, r) in local {
            match r {
                Ok(v) => out[i] = Some(v),
                Err(e) => {
                    if first_err.as_ref().is_none_or(|(j, _)| i < *j) {
                        first_err = Some((i, e));
                    }
                }
            }
        }
    }
    if let Some((_, e)) = first_err {
        return Err(e);
    }
    Ok(out
        .into_iter()
        // detlint: allow(D004) reason=infallible by construction: the chunk cursor hands out each index exactly once, proven by the equivalence suite
        .map(|slot| slot.expect("parkit: every index visited exactly once"))
        .collect())
}

/// Applies `f` to disjoint contiguous chunks of `data` in parallel.
///
/// `f` receives the chunk's starting offset into `data` and the mutable
/// chunk itself. The partition is static (one contiguous region per
/// worker), so for a pure-per-element `f` the result is identical to a
/// serial pass.
pub fn par_apply_chunks<T, F>(threads: Threads, data: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let n = data.len();
    let workers = threads.resolve().min(n);
    if workers <= 1 {
        f(0, data);
        return;
    }
    let chunk_len = n.div_ceil(workers);
    let f = &f;
    std::thread::scope(|scope| {
        for (k, chunk) in data.chunks_mut(chunk_len).enumerate() {
            scope.spawn(move || f(k * chunk_len, chunk));
        }
    });
}

/// Sums float results of a parallel map in their original slice order.
///
/// Float addition is not associative, so reducing `par_map` output with
/// an order that depends on the thread schedule would make results vary
/// across thread counts. This helper fixes the reduction order to the
/// input order: the sum is bit-identical for every [`Threads`] policy.
pub fn sum_in_order(values: &[f64]) -> f64 {
    let mut acc = 0.0;
    for &v in values {
        acc += v;
    }
    acc
}

/// Folds values in their original slice order with an explicit
/// accumulator — the general-purpose sibling of [`sum_in_order`] for
/// non-additive reductions (products, running maxima with tie rules,
/// compensated sums). The fold is strictly left-to-right, so the result
/// is independent of how the values were produced in parallel.
pub fn fold_in_order<T, A, F>(values: &[T], init: A, mut f: F) -> A
where
    F: FnMut(A, &T) -> A,
{
    let mut acc = init;
    for v in values {
        acc = f(acc, v);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_policies() {
        assert_eq!(Threads::Serial.resolve(), 1);
        assert_eq!(Threads::Fixed(3).resolve(), 3);
        assert_eq!(Threads::Fixed(0).resolve(), 1);
        assert!(Threads::Auto.resolve() >= 1);
        assert!(Threads::Serial.is_serial());
    }

    #[test]
    fn in_order_reductions_match_serial() {
        let items: Vec<u64> = (0..1000).collect();
        let mapped = par_map(Threads::Fixed(8), &items, |&x| (x as f64) * 0.1);
        let serial: f64 = items.iter().map(|&x| (x as f64) * 0.1).sum();
        assert_eq!(sum_in_order(&mapped).to_bits(), serial.to_bits());
        let folded = fold_in_order(&mapped, 0.0f64, |acc, &v| acc + v);
        assert_eq!(folded.to_bits(), serial.to_bits());
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        for threads in [Threads::Serial, Threads::Fixed(2), Threads::Fixed(8)] {
            let out = par_map(threads, &items, |&x| x * 3);
            assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn indexed_map_sees_correct_indices() {
        let items = vec!["a"; 257];
        let out = par_map_indexed(Threads::Fixed(4), &items, |i, _| i);
        assert_eq!(out, (0..257).collect::<Vec<_>>());
    }

    #[test]
    fn first_error_wins_regardless_of_schedule() {
        let items: Vec<u32> = (0..500).collect();
        for threads in [Threads::Serial, Threads::Fixed(8)] {
            let res: Result<Vec<u32>, String> = try_par_map(threads, &items, |&x| {
                if x >= 123 {
                    Err(format!("bad {x}"))
                } else {
                    Ok(x)
                }
            });
            assert_eq!(res.unwrap_err(), "bad 123");
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u8> = par_map(Threads::Fixed(8), &[] as &[u8], |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn chunked_variants_agree() {
        let items: Vec<i64> = (0..97).map(|i| i * 7 - 300).collect();
        let serial: Vec<i64> = items.iter().map(|x| x.wrapping_mul(11)).collect();
        for chunk in [1, 2, 3, 16, 97, 1000] {
            let out = try_par_map_chunked(Threads::Fixed(5), chunk, &items, |_, x| {
                Ok::<i64, ()>(x.wrapping_mul(11))
            })
            .unwrap();
            assert_eq!(out, serial, "chunk={chunk}");
        }
    }

    #[test]
    fn apply_chunks_matches_serial() {
        let mut par: Vec<u64> = (0..1003).collect();
        let mut ser = par.clone();
        par_apply_chunks(Threads::Fixed(7), &mut par, |offset, chunk| {
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = (*v).wrapping_mul((offset + k) as u64 + 1);
            }
        });
        par_apply_chunks(Threads::Serial, &mut ser, |offset, chunk| {
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = (*v).wrapping_mul((offset + k) as u64 + 1);
            }
        });
        assert_eq!(par, ser);
    }

    #[test]
    fn worker_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            par_map(Threads::Fixed(4), &[1u8, 2, 3, 4, 5, 6, 7, 8], |&x| {
                assert!(x != 5, "boom");
                x
            })
        });
        assert!(result.is_err());
    }
}
