//! Property tests for the parkit contract: any thread policy and any
//! chunk size produce exactly what a serial loop over the same pure
//! function would — same length, same order, same first error.

use proptest::prelude::*;

/// The policies exercised by every property: inline, one worker (the
/// degenerate pool), and oversubscribed pools.
fn policies() -> [parkit::Threads; 4] {
    [
        parkit::Threads::Serial,
        parkit::Threads::Fixed(1),
        parkit::Threads::Fixed(3),
        parkit::Threads::Fixed(8),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn par_map_matches_serial_map(items in prop::collection::vec(0u64..10_000, 0..300)) {
        let expected: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(31) ^ 7).collect();
        for threads in policies() {
            let got = parkit::par_map(threads, &items, |&x| x.wrapping_mul(31) ^ 7);
            prop_assert_eq!(&got, &expected);
        }
    }

    #[test]
    fn any_chunk_size_preserves_order_and_length(
        items in prop::collection::vec(0u32..1_000, 0..250),
        chunk in 0usize..40,
        workers in 1usize..9,
    ) {
        // Chunk size is scheduling granularity only; index i must map to
        // output slot i for every (chunk, worker-count) combination —
        // including chunk 0 (clamped to 1) and chunks larger than the input.
        let got: Vec<(usize, u32)> = parkit::try_par_map_chunked(
            parkit::Threads::Fixed(workers),
            chunk,
            &items,
            |i, &x| Ok::<_, std::convert::Infallible>((i, x)),
        )
        .unwrap();
        prop_assert_eq!(got.len(), items.len());
        for (i, &(gi, gx)) in got.iter().enumerate() {
            prop_assert_eq!(gi, i);
            prop_assert_eq!(gx, items[i]);
        }
    }

    #[test]
    fn first_error_is_lowest_failing_index(
        n in 1usize..200,
        fail_mod in 2usize..7,
        fail_off in 0usize..7,
        chunk in 1usize..16,
    ) {
        // Fail every index where i % fail_mod == fail_off; the surfaced
        // error must be the lowest such index, as a serial loop would give,
        // no matter which worker hits an error first.
        let items: Vec<usize> = (0..n).collect();
        let serial_first = (0..n).find(|i| i % fail_mod == fail_off);
        for threads in policies() {
            let got = parkit::try_par_map_chunked(threads, chunk, &items, |i, &x| {
                if i % fail_mod == fail_off {
                    Err(i)
                } else {
                    Ok(x)
                }
            });
            match serial_first {
                Some(first) => prop_assert_eq!(got.unwrap_err(), first),
                None => prop_assert_eq!(got.unwrap(), items.clone()),
            }
        }
    }

    #[test]
    fn par_apply_chunks_matches_serial_pass(
        items in prop::collection::vec(-1_000i64..1_000, 0..300),
    ) {
        // A pure per-element update through the offset must equal the
        // serial pass regardless of how the slice is partitioned.
        let mut expected = items.clone();
        for (i, v) in expected.iter_mut().enumerate() {
            *v = v.wrapping_add(i as i64 * 3);
        }
        for threads in policies() {
            let mut got = items.clone();
            parkit::par_apply_chunks(threads, &mut got, |offset, chunk| {
                for (k, v) in chunk.iter_mut().enumerate() {
                    *v = v.wrapping_add((offset + k) as i64 * 3);
                }
            });
            prop_assert_eq!(&got, &expected);
        }
    }

    #[test]
    fn indexed_map_sees_every_index_once(
        n in 0usize..300,
        workers in 1usize..9,
    ) {
        let items: Vec<u8> = vec![0; n];
        let idxs = parkit::par_map_indexed(parkit::Threads::Fixed(workers), &items, |i, _| i);
        prop_assert_eq!(idxs, (0..n).collect::<Vec<_>>());
    }
}
