//! The Random and Basic A/B/C prediction schemes of Table I.
//!
//! * **Random** — flips a fair coin per sample,
//! * **Basic A** — predicts SBE for any run on a node that saw an SBE
//!   during training,
//! * **Basic B** — predicts SBE for any run of an application that was
//!   SBE-affected during training,
//! * **Basic C** — like B but restricted to the top 20% of SBE-affected
//!   applications by training-window SBE count.
//!
//! These simple schemes anchor the evaluation: Basic A achieves high
//! recall but poor precision, showing that the characterization insights
//! alone are insufficient and motivating the TwoStage learner.

use crate::datasets::DsSplit;
use crate::history::SbeHistory;
use crate::samples::LabeledSample;
use crate::Result;
use mlkit::metrics::ConfusionMatrix;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use std::collections::BTreeSet;

/// The basic prediction schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BasicScheme {
    /// Fair-coin classifier.
    Random {
        /// RNG seed.
        seed: u64,
    },
    /// Offender-node scheme.
    A,
    /// Offender-application scheme.
    B,
    /// Top-20% offender-application scheme.
    C,
}

impl BasicScheme {
    /// Display name used in tables.
    pub fn name(&self) -> &'static str {
        match self {
            BasicScheme::Random { .. } => "Random",
            BasicScheme::A => "Basic A",
            BasicScheme::B => "Basic B",
            BasicScheme::C => "Basic C",
        }
    }
}

/// Predicts labels for `test` samples under a scheme, using only history
/// observable within the split's training window.
///
/// # Errors
///
/// Infallible today; fallible for forward compatibility with schemes that
/// need trace lookups.
pub fn predict_scheme(
    scheme: BasicScheme,
    history: &SbeHistory,
    split: &DsSplit,
    test: &[LabeledSample],
) -> Result<Vec<f32>> {
    let (train_start, train_end) = split.train_window();
    match scheme {
        BasicScheme::Random { seed } => {
            let mut rng = StdRng::seed_from_u64(seed);
            Ok(test
                .iter()
                .map(|_| if rng.gen::<bool>() { 1.0 } else { 0.0 })
                .collect())
        }
        BasicScheme::A => {
            let offenders: BTreeSet<u32> = history
                .offender_nodes_before(train_end)
                .into_iter()
                .map(|n| n.0)
                .collect();
            Ok(test
                .iter()
                .map(|s| {
                    if offenders.contains(&s.node.0) {
                        1.0
                    } else {
                        0.0
                    }
                })
                .collect())
        }
        BasicScheme::B => {
            let apps: BTreeSet<u32> = history
                .offender_apps_before(train_end)
                .into_iter()
                .filter(|&(app, _)| history.app_between(app, train_start, train_end) > 0)
                .map(|(app, _)| app.0)
                .collect();
            Ok(test
                .iter()
                .map(|s| if apps.contains(&s.app.0) { 1.0 } else { 0.0 })
                .collect())
        }
        BasicScheme::C => {
            // Rank SBE-affected apps by their training-window SBE count
            // and keep the top 20%.
            let mut apps: Vec<(u32, u64)> = history
                .offender_apps_before(train_end)
                .into_iter()
                .map(|(app, _)| (app.0, history.app_between(app, train_start, train_end)))
                .filter(|&(_, c)| c > 0)
                .collect();
            apps.sort_unstable_by_key(|&(_, c)| std::cmp::Reverse(c));
            let keep = (apps.len() as f64 * 0.2).ceil() as usize;
            let top: BTreeSet<u32> = apps.into_iter().take(keep).map(|(a, _)| a).collect();
            Ok(test
                .iter()
                .map(|s| if top.contains(&s.app.0) { 1.0 } else { 0.0 })
                .collect())
        }
    }
}

/// Evaluates one scheme end to end, returning the confusion matrix over
/// all test samples.
///
/// # Errors
///
/// Propagates prediction and metric errors.
pub fn evaluate_scheme(
    scheme: BasicScheme,
    history: &SbeHistory,
    split: &DsSplit,
    test: &[LabeledSample],
) -> Result<ConfusionMatrix> {
    let pred = predict_scheme(scheme, history, split, test)?;
    let truth = crate::samples::labels(test);
    Ok(ConfusionMatrix::from_predictions(&truth, &pred)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples::{build_samples, in_window};
    use titan_sim::config::SimConfig;
    use titan_sim::engine::generate;
    use titan_sim::trace::TraceSet;

    fn setup() -> (TraceSet, Vec<LabeledSample>, SbeHistory, DsSplit) {
        let t = generate(&SimConfig::tiny(3)).unwrap();
        let ss = build_samples(&t).unwrap();
        let h = SbeHistory::build(&ss).unwrap();
        let split = DsSplit::ds1(&t).unwrap();
        (t, ss, h, split)
    }

    #[test]
    fn random_is_roughly_half_positive() {
        let (_, ss, h, split) = setup();
        let (ts, te) = split.test_window();
        let test = in_window(&ss, ts, te);
        let pred = predict_scheme(BasicScheme::Random { seed: 1 }, &h, &split, &test).unwrap();
        let pos = pred.iter().filter(|&&p| p == 1.0).count() as f64 / pred.len() as f64;
        assert!((pos - 0.5).abs() < 0.1, "positive fraction {pos}");
    }

    #[test]
    fn basic_a_flags_only_offender_nodes() {
        let (_, ss, h, split) = setup();
        let (ts, te) = split.test_window();
        let test = in_window(&ss, ts, te);
        let pred = predict_scheme(BasicScheme::A, &h, &split, &test).unwrap();
        let offenders: BTreeSet<u32> = h
            .offender_nodes_before(split.train_end_min())
            .into_iter()
            .map(|n| n.0)
            .collect();
        for (s, &p) in test.iter().zip(&pred) {
            assert_eq!(p == 1.0, offenders.contains(&s.node.0));
        }
    }

    #[test]
    fn basic_a_recall_beats_b_and_c() {
        // On our traces (like the paper's), node identity is the stronger
        // signal: Basic A should recall at least as much as C.
        let (_, ss, h, split) = setup();
        let (ts, te) = split.test_window();
        let test = in_window(&ss, ts, te);
        let a = evaluate_scheme(BasicScheme::A, &h, &split, &test).unwrap();
        let c = evaluate_scheme(BasicScheme::C, &h, &split, &test).unwrap();
        assert!(a.recall() >= c.recall());
    }

    #[test]
    fn basic_c_subset_of_b() {
        let (_, ss, h, split) = setup();
        let (ts, te) = split.test_window();
        let test = in_window(&ss, ts, te);
        let b = predict_scheme(BasicScheme::B, &h, &split, &test).unwrap();
        let c = predict_scheme(BasicScheme::C, &h, &split, &test).unwrap();
        for (pb, pc) in b.iter().zip(&c) {
            // C positive implies B positive.
            assert!(*pc <= *pb);
        }
    }

    #[test]
    fn scheme_names() {
        assert_eq!(BasicScheme::Random { seed: 0 }.name(), "Random");
        assert_eq!(BasicScheme::A.name(), "Basic A");
        assert_eq!(BasicScheme::B.name(), "Basic B");
        assert_eq!(BasicScheme::C.name(), "Basic C");
    }

    #[test]
    fn deterministic_random_given_seed() {
        let (_, ss, h, split) = setup();
        let (ts, te) = split.test_window();
        let test = in_window(&ss, ts, te);
        let a = predict_scheme(BasicScheme::Random { seed: 7 }, &h, &split, &test).unwrap();
        let b = predict_scheme(BasicScheme::Random { seed: 7 }, &h, &split, &test).unwrap();
        assert_eq!(a, b);
    }
}
