//! Feature engineering (paper §V).
//!
//! Features are organised into the paper's groups, each individually
//! switchable through [`FeatureSpec`] so the ablations of Fig. 11,
//! Table IV, and Fig. 12 can be expressed directly:
//!
//! * **App** — application identity (raw categorical id, as the paper
//!   feeds the binary name), the previous application on the node,
//!   runtime, node count, aggregate GPU core time, aggregate and maximum
//!   GPU memory;
//! * **Location** — cabinet grid coordinates, cage, slot, node position;
//! * **TP (temperature/power)** — [`WindowStats`] of GPU temperature and
//!   power during the run (*Cur*), over the 5/15/30/60-minute windows
//!   before the run (*Prev*), and of the slot neighbours plus the
//!   same-node CPU (*Nei*);
//! * **Hist** — observable SBE history: local (node), global (machine),
//!   application and allocated-nodes counts over the past 24 hours, with
//!   today / yesterday / older splits.
//!
//! Counts enter as `ln(1 + x)`; scaling is left to the caller (the
//! TwoStage pipeline standardises with train-set statistics).

use crate::history::{HistoryView, SbeHistory};
use crate::samples::LabeledSample;
use crate::{PredError, Result};
use mlkit::dataset::Dataset;
use mlkit::matrix::Matrix;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use titan_sim::apps::AppId;
use titan_sim::config::MINUTES_PER_DAY;
use titan_sim::engine::{SampleTelemetry, TelemetryQueryEngine};
use titan_sim::telemetry::WindowStats;
use titan_sim::topology::{NodeId, NodeLocation};
use titan_sim::trace::TraceSet;

/// Which feature groups to emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureSpec {
    /// Application features.
    pub app: bool,
    /// Node-location features.
    pub location: bool,
    /// Temperature/power during the current run on the target node.
    pub tp_cur: bool,
    /// Temperature/power look-back windows (5/15/30/60 min) on the
    /// target node.
    pub tp_prev: bool,
    /// Slot-neighbour temperature/power and same-node CPU temperature.
    pub tp_nei: bool,
    /// Node-scope SBE history.
    pub hist_local: bool,
    /// Machine-scope SBE history.
    pub hist_global: bool,
    /// Application- and allocation-scope SBE history (past 24 h).
    pub hist_app: bool,
    /// Include the "today" history length split.
    pub hist_today: bool,
    /// Include the "yesterday" history length split.
    pub hist_yesterday: bool,
    /// Include the "before yesterday" (full older history) split.
    pub hist_before: bool,
}

impl FeatureSpec {
    /// Every feature group on — the paper's best configuration ("All").
    pub fn all() -> FeatureSpec {
        FeatureSpec {
            app: true,
            location: true,
            tp_cur: true,
            tp_prev: true,
            tp_nei: true,
            hist_local: true,
            hist_global: true,
            hist_app: true,
            hist_today: true,
            hist_yesterday: true,
            hist_before: true,
        }
    }

    fn none() -> FeatureSpec {
        FeatureSpec {
            app: false,
            location: false,
            tp_cur: false,
            tp_prev: false,
            tp_nei: false,
            hist_local: false,
            hist_global: false,
            hist_app: false,
            hist_today: false,
            hist_yesterday: false,
            hist_before: false,
        }
    }

    /// Only application features (Fig. 11 "App").
    pub fn only_app() -> FeatureSpec {
        FeatureSpec {
            app: true,
            ..FeatureSpec::none()
        }
    }

    /// Only temperature/power features (Fig. 11 "TP").
    pub fn only_tp() -> FeatureSpec {
        FeatureSpec {
            tp_cur: true,
            tp_prev: true,
            tp_nei: true,
            ..FeatureSpec::none()
        }
    }

    /// Only SBE-history features (Fig. 11 "Hist").
    pub fn only_hist() -> FeatureSpec {
        FeatureSpec {
            hist_local: true,
            hist_global: true,
            hist_app: true,
            hist_today: true,
            hist_yesterday: true,
            hist_before: true,
            ..FeatureSpec::none()
        }
    }

    /// Every group except temperature/power — the widest spec that can
    /// be assembled without a telemetry source. Network serving (`sbed`)
    /// ships launch facts over the wire but not per-node sensor windows,
    /// so artifacts trained with this spec are the ones a scoring daemon
    /// can serve.
    pub fn no_telemetry() -> FeatureSpec {
        FeatureSpec {
            tp_cur: false,
            tp_prev: false,
            tp_nei: false,
            ..FeatureSpec::all()
        }
    }

    /// Table IV `Cur`: all groups, but only current-run T/P on the target
    /// node.
    pub fn cur() -> FeatureSpec {
        FeatureSpec {
            tp_prev: false,
            tp_nei: false,
            ..FeatureSpec::all()
        }
    }

    /// Table IV `CurPrev`: adds the look-back windows.
    pub fn cur_prev() -> FeatureSpec {
        FeatureSpec {
            tp_nei: false,
            ..FeatureSpec::all()
        }
    }

    /// Table IV `CurNei`: adds slot neighbours and the CPU.
    pub fn cur_nei() -> FeatureSpec {
        FeatureSpec {
            tp_prev: false,
            ..FeatureSpec::all()
        }
    }

    /// Table IV `CurPrevNei`: everything (alias of [`FeatureSpec::all`]).
    pub fn cur_prev_nei() -> FeatureSpec {
        FeatureSpec::all()
    }

    /// Fig. 12(a): all features minus global history.
    pub fn without_global_hist() -> FeatureSpec {
        FeatureSpec {
            hist_global: false,
            ..FeatureSpec::all()
        }
    }

    /// Fig. 12(a): all features minus local (node) history.
    pub fn without_local_hist() -> FeatureSpec {
        FeatureSpec {
            hist_local: false,
            ..FeatureSpec::all()
        }
    }

    /// Fig. 12(b): all features minus the "today" history split.
    pub fn without_hist_today() -> FeatureSpec {
        FeatureSpec {
            hist_today: false,
            ..FeatureSpec::all()
        }
    }

    /// Fig. 12(b): all features minus the "yesterday" history split.
    pub fn without_hist_yesterday() -> FeatureSpec {
        FeatureSpec {
            hist_yesterday: false,
            ..FeatureSpec::all()
        }
    }

    /// Fig. 12(b): all features minus the older-than-yesterday history.
    pub fn without_hist_before() -> FeatureSpec {
        FeatureSpec {
            hist_before: false,
            ..FeatureSpec::all()
        }
    }

    /// `true` when any temperature/power group is enabled (telemetry
    /// re-simulation required).
    pub fn needs_telemetry(&self) -> bool {
        self.tp_cur || self.tp_prev || self.tp_nei
    }

    /// The number of features this spec emits — the width of every
    /// assembled row, computed without building the name list (the serve
    /// fastpath sizes its reusable scratch from this).
    pub fn n_features(&self) -> usize {
        let mut n = 0;
        if self.app {
            n += 7;
        }
        if self.location {
            n += 6;
        }
        if self.tp_cur {
            n += 8;
        }
        if self.tp_prev {
            n += 32;
        }
        if self.tp_nei {
            n += 12;
        }
        let hist_splits = 1
            + usize::from(self.hist_today)
            + usize::from(self.hist_yesterday)
            + usize::from(self.hist_before);
        if self.hist_local {
            n += hist_splits;
        }
        if self.hist_global {
            n += hist_splits;
        }
        if self.hist_app {
            n += 2;
        }
        n
    }

    /// The ordered feature names this spec emits.
    pub fn feature_names(&self) -> Vec<String> {
        let mut names = Vec::new();
        if self.app {
            for n in [
                "app_id",
                "prev_app_id",
                "ln_runtime_min",
                "ln_n_nodes",
                "ln_core_time",
                "ln_agg_mem",
                "max_mem",
            ] {
                names.push(n.to_string());
            }
        }
        if self.location {
            for n in [
                "loc_x", "loc_y", "loc_cage", "loc_slot", "loc_node", "loc_id",
            ] {
                names.push(n.to_string());
            }
        }
        let stats = ["mean", "std", "dmean", "dstd"];
        if self.tp_cur {
            for series in ["run_temp", "run_power"] {
                for s in stats {
                    names.push(format!("{series}_{s}"));
                }
            }
        }
        if self.tp_prev {
            for series in ["temp", "power"] {
                for w in [5u64, 15, 30, 60] {
                    for s in stats {
                        names.push(format!("prev{w}_{series}_{s}"));
                    }
                }
            }
        }
        if self.tp_nei {
            for series in ["cpu_temp", "nei_temp", "nei_power"] {
                for s in stats {
                    names.push(format!("{series}_{s}"));
                }
            }
        }
        if self.hist_local {
            names.push("hist_node_24h".into());
            if self.hist_today {
                names.push("hist_node_today".into());
            }
            if self.hist_yesterday {
                names.push("hist_node_yesterday".into());
            }
            if self.hist_before {
                names.push("hist_node_before".into());
            }
        }
        if self.hist_global {
            names.push("hist_machine_24h".into());
            if self.hist_today {
                names.push("hist_machine_today".into());
            }
            if self.hist_yesterday {
                names.push("hist_machine_yesterday".into());
            }
            if self.hist_before {
                names.push("hist_machine_before".into());
            }
        }
        if self.hist_app {
            names.push("hist_app_24h".into());
            names.push("hist_alloc_24h".into());
        }
        names
    }
}

/// Per-sample scalar facts a feature row is assembled from, independent
/// of *how* they were obtained: the batch [`FeatureExtractor`] derives
/// them from a full trace index, while the streaming engine maintains
/// them incrementally. Both paths feed [`assemble_row`], which is what
/// guarantees bit-identical features.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleFacts {
    /// Application id.
    pub app: u32,
    /// Most recent application to *start* on the node before this run
    /// (`None` for a node's first run).
    pub prev_app: Option<u32>,
    /// Run length in minutes.
    pub runtime_min: u64,
    /// Allocation size in nodes.
    pub n_nodes: u32,
    /// Application GPU core utilisation (from the catalog profile).
    pub core_util: f64,
    /// Application GPU memory utilisation (from the catalog profile).
    pub mem_util: f64,
    /// Physical location of the node.
    pub loc: NodeLocation,
    /// The node id.
    pub node: u32,
}

/// The integer SBE-history counts behind the Hist feature group, queried
/// at a sample's start minute. Counts are exact integers, so batch and
/// incremental indexes agreeing on them implies bit-identical `ln(1+x)`
/// features.
///
/// Fields for scopes the [`FeatureSpec`] disables are left 0 and never
/// emitted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistCounts {
    /// Node-scope count over the past 24 h.
    pub node_24h: u64,
    /// Node-scope count since midnight.
    pub node_today: u64,
    /// Node-scope count during yesterday.
    pub node_yesterday: u64,
    /// Node-scope count before yesterday.
    pub node_before: u64,
    /// Machine-scope count over the past 24 h.
    pub machine_24h: u64,
    /// Machine-scope count since midnight.
    pub machine_today: u64,
    /// Machine-scope count during yesterday.
    pub machine_yesterday: u64,
    /// Machine-scope count before yesterday.
    pub machine_before: u64,
    /// Application-scope count over the past 24 h.
    pub app_24h: u64,
    /// Sum over the allocation's nodes of their past-24 h counts.
    pub alloc_24h: u64,
}

impl HistCounts {
    /// Queries the counts `spec` needs from any [`HistoryView`] at minute
    /// `start`, for a run of `app` on `node` allocated `alloc_nodes`.
    pub fn at<H: HistoryView + ?Sized>(
        history: &H,
        spec: &FeatureSpec,
        node: NodeId,
        app: AppId,
        alloc_nodes: &[NodeId],
        start: u64,
    ) -> HistCounts {
        let mut c = HistCounts::default();
        if !(spec.hist_local || spec.hist_global || spec.hist_app) {
            return c;
        }
        let day0 = start - start % MINUTES_PER_DAY;
        let yday = day0.saturating_sub(MINUTES_PER_DAY);
        let h24 = start.saturating_sub(MINUTES_PER_DAY);
        if spec.hist_local {
            c.node_24h = history.node_between(node, h24, start);
            if spec.hist_today {
                c.node_today = history.node_between(node, day0, start);
            }
            if spec.hist_yesterday {
                c.node_yesterday = history.node_between(node, yday, day0);
            }
            if spec.hist_before {
                c.node_before = history.node_before(node, yday);
            }
        }
        if spec.hist_global {
            c.machine_24h = history.machine_between(h24, start);
            if spec.hist_today {
                c.machine_today = history.machine_between(day0, start);
            }
            if spec.hist_yesterday {
                c.machine_yesterday = history.machine_between(yday, day0);
            }
            if spec.hist_before {
                c.machine_before = history.machine_before(yday);
            }
        }
        if spec.hist_app {
            c.app_24h = history.app_between(app, h24, start);
            c.alloc_24h = alloc_nodes
                .iter()
                .map(|&n| history.node_between(n, h24, start))
                .sum();
        }
        c
    }
}

/// Assembles one feature row in [`FeatureSpec::feature_names`] order from
/// pre-gathered facts. This is *the* row constructor: the batch extractor
/// and the streaming feature engine both call it, so their arithmetic is
/// the same code path.
///
/// # Errors
///
/// Returns [`PredError::InvalidInput`] when `spec` needs telemetry but
/// `telemetry` is `None`.
pub fn assemble_row(
    spec: &FeatureSpec,
    facts: &SampleFacts,
    telemetry: Option<&SampleTelemetry>,
    hist: &HistCounts,
    row: &mut Vec<f32>,
) -> Result<()> {
    if spec.app {
        // The paper feeds the application *binary name* (and the
        // previous application on the node) as categorical features. We
        // encode raw identity: tree models can isolate applications by
        // splitting on it, while linear models cannot — the same
        // asymmetry the paper observes.
        row.push(facts.app as f32);
        row.push(facts.prev_app.map_or(-1.0, |a| a as f32));
        row.push(ln1p(facts.runtime_min as f64));
        row.push(ln1p(facts.n_nodes as f64));
        let core_time = facts.runtime_min as f64 * facts.n_nodes as f64 * facts.core_util / 60.0;
        row.push(ln1p(core_time));
        row.push(ln1p(facts.mem_util * facts.n_nodes as f64));
        row.push(facts.mem_util as f32);
    }
    if spec.location {
        let loc = &facts.loc;
        row.push(loc.cabinet_x as f32);
        row.push(loc.cabinet_y as f32);
        row.push(loc.cage as f32);
        row.push(loc.slot as f32);
        row.push(loc.node as f32);
        row.push(facts.node as f32);
    }
    if spec.needs_telemetry() {
        let t = telemetry.ok_or_else(|| PredError::InvalidInput {
            reason: "feature spec needs telemetry but none was supplied".into(),
        })?;
        if spec.tp_cur {
            push_stats(row, &t.run_temp);
            push_stats(row, &t.run_power);
        }
        if spec.tp_prev {
            for w in &t.prev_temp {
                push_stats(row, w);
            }
            for w in &t.prev_power {
                push_stats(row, w);
            }
        }
        if spec.tp_nei {
            push_stats(row, &t.cpu_temp);
            push_stats(row, &t.nei_temp);
            push_stats(row, &t.nei_power);
        }
    }
    if spec.hist_local {
        row.push(ln1p(hist.node_24h as f64));
        if spec.hist_today {
            row.push(ln1p(hist.node_today as f64));
        }
        if spec.hist_yesterday {
            row.push(ln1p(hist.node_yesterday as f64));
        }
        if spec.hist_before {
            row.push(ln1p(hist.node_before as f64));
        }
    }
    if spec.hist_global {
        row.push(ln1p(hist.machine_24h as f64));
        if spec.hist_today {
            row.push(ln1p(hist.machine_today as f64));
        }
        if spec.hist_yesterday {
            row.push(ln1p(hist.machine_yesterday as f64));
        }
        if spec.hist_before {
            row.push(ln1p(hist.machine_before as f64));
        }
    }
    if spec.hist_app {
        row.push(ln1p(hist.app_24h as f64));
        row.push(ln1p(hist.alloc_24h as f64));
    }
    Ok(())
}

/// Target-encoding context fitted on the *training* window only.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EncoderContext {
    app_rate: BTreeMap<u32, f32>,
    global_rate: f32,
}

/// Smoothing pseudo-count for the target encoding.
const ENCODE_SMOOTHING: f64 = 20.0;

impl EncoderContext {
    /// Fits the application target encoding (smoothed positive rate) on
    /// training samples.
    pub fn fit(train: &[LabeledSample]) -> EncoderContext {
        let mut per_app: BTreeMap<u32, (u64, u64)> = BTreeMap::new();
        let mut pos = 0u64;
        for s in train {
            let e = per_app.entry(s.app.0).or_insert((0, 0));
            e.1 += 1;
            if s.label {
                e.0 += 1;
                pos += 1;
            }
        }
        let global_rate = if train.is_empty() {
            0.0
        } else {
            pos as f64 / train.len() as f64
        };
        let app_rate = per_app
            .into_iter()
            .map(|(app, (p, n))| {
                let rate =
                    (p as f64 + ENCODE_SMOOTHING * global_rate) / (n as f64 + ENCODE_SMOOTHING);
                (app, rate as f32)
            })
            .collect();
        EncoderContext {
            app_rate,
            global_rate: global_rate as f32,
        }
    }

    /// Encoded rate for an app (global rate for unseen apps).
    pub fn app_rate(&self, app: u32) -> f32 {
        self.app_rate.get(&app).copied().unwrap_or(self.global_rate)
    }

    /// Training-window positive rate.
    pub fn global_rate(&self) -> f32 {
        self.global_rate
    }
}

/// Extracts feature matrices for labelled samples from a trace.
#[derive(Debug)]
pub struct FeatureExtractor<'a> {
    trace: &'a TraceSet,
    query_engine: TelemetryQueryEngine<'a>,
    history: SbeHistory,
    /// Per node: chronological `(start_min, app)` of runs, for the
    /// previous-application feature.
    node_runs: BTreeMap<u32, Vec<(u64, u32)>>,
}

impl<'a> FeatureExtractor<'a> {
    /// Builds an extractor; `all_samples` must be the full trace sample
    /// list (history visibility is handled by event timestamps, so using
    /// the full list leaks nothing).
    ///
    /// # Errors
    ///
    /// Propagates simulator/query-engine construction errors.
    pub fn new(trace: &'a TraceSet, all_samples: &[LabeledSample]) -> Result<FeatureExtractor<'a>> {
        let query_engine = TelemetryQueryEngine::new(trace)?;
        let history = SbeHistory::build(all_samples)?;
        let mut node_runs: BTreeMap<u32, Vec<(u64, u32)>> = BTreeMap::new();
        for s in all_samples {
            node_runs
                .entry(s.node.0)
                .or_default()
                .push((s.start_min, s.app.0));
        }
        for v in node_runs.values_mut() {
            v.sort_unstable();
        }
        Ok(FeatureExtractor {
            trace,
            query_engine,
            history,
            node_runs,
        })
    }

    /// The observable SBE-history index.
    pub fn history(&self) -> &SbeHistory {
        &self.history
    }

    /// The underlying telemetry query engine.
    pub fn query_engine(&self) -> &TelemetryQueryEngine<'a> {
        &self.query_engine
    }

    /// The application that ran on `node` most recently before `start`.
    pub fn previous_app(&self, node: u32, start: u64) -> Option<u32> {
        let runs = self.node_runs.get(&node)?;
        let idx = runs.partition_point(|&(s, _)| s < start);
        if idx == 0 {
            None
        } else {
            Some(runs[idx - 1].1)
        }
    }

    /// Extracts the feature [`Dataset`] for `samples` under `spec`.
    ///
    /// # Errors
    ///
    /// Returns [`PredError::InvalidInput`] for an empty sample list or an
    /// all-features-off spec, and propagates telemetry/lookup errors.
    pub fn extract(&self, samples: &[LabeledSample], spec: &FeatureSpec) -> Result<Dataset> {
        self.extract_observed(samples, spec, &mut obskit::Recorder::null())
    }

    /// Like [`FeatureExtractor::extract`], but counts extracted samples,
    /// emitted feature columns, and telemetry queries into `rec`.
    ///
    /// # Errors
    ///
    /// See [`FeatureExtractor::extract`].
    pub fn extract_observed(
        &self,
        samples: &[LabeledSample],
        spec: &FeatureSpec,
        rec: &mut obskit::Recorder,
    ) -> Result<Dataset> {
        let span = rec.span_start("features.extract");
        let ds = self.extract_impl(samples, spec)?;
        rec.incr("features.samples_extracted", ds.len() as u64);
        rec.gauge("features.columns", ds.n_features() as f64);
        if spec.needs_telemetry() {
            rec.incr("features.telemetry_queries", samples.len() as u64);
        }
        rec.observe("features.batch_rows", ds.len() as f64);
        rec.span_end(span);
        Ok(ds)
    }

    /// Gathers the [`SampleFacts`] of one sample from the trace indexes.
    ///
    /// # Errors
    ///
    /// Propagates catalog/topology lookup errors.
    pub fn sample_facts(&self, s: &LabeledSample) -> Result<SampleFacts> {
        let profile = self.trace.catalog().profile(s.app)?;
        let loc = self.trace.config().topology.location(s.node)?;
        Ok(SampleFacts {
            app: s.app.0,
            prev_app: self.previous_app(s.node.0, s.start_min),
            runtime_min: s.runtime_min(),
            n_nodes: s.n_nodes,
            core_util: profile.core_util,
            mem_util: profile.mem_util,
            loc,
            node: s.node.0,
        })
    }

    /// Queries the [`HistCounts`] of one sample at its start minute.
    ///
    /// # Errors
    ///
    /// Propagates aprun lookup errors.
    pub fn hist_counts(&self, s: &LabeledSample, spec: &FeatureSpec) -> Result<HistCounts> {
        if !(spec.hist_local || spec.hist_global || spec.hist_app) {
            return Ok(HistCounts::default());
        }
        let run = self.trace.aprun(s.aprun)?;
        Ok(HistCounts::at(
            &self.history,
            spec,
            s.node,
            s.app,
            &run.nodes,
            s.start_min,
        ))
    }

    fn extract_impl(&self, samples: &[LabeledSample], spec: &FeatureSpec) -> Result<Dataset> {
        if samples.is_empty() {
            return Err(PredError::InvalidInput {
                reason: "no samples to extract features for".into(),
            });
        }
        let names = spec.feature_names();
        if names.is_empty() {
            return Err(PredError::InvalidInput {
                reason: "feature spec selects no features".into(),
            });
        }
        let telemetry: Vec<SampleTelemetry> = if spec.needs_telemetry() {
            let pairs: Vec<_> = samples.iter().map(|s| (s.aprun, s.node)).collect();
            self.query_engine.query(&pairs)?
        } else {
            Vec::new()
        };

        let d = names.len();
        let mut x = Matrix::zeros(samples.len(), d);
        for (i, s) in samples.iter().enumerate() {
            let facts = self.sample_facts(s)?;
            let hist = self.hist_counts(s, spec)?;
            let t = if spec.needs_telemetry() {
                Some(&telemetry[i])
            } else {
                None
            };
            let mut row: Vec<f32> = Vec::with_capacity(d);
            assemble_row(spec, &facts, t, &hist, &mut row)?;
            debug_assert_eq!(row.len(), d, "feature row width mismatch");
            x.row_mut(i).copy_from_slice(&row);
        }
        let y = crate::samples::labels(samples);
        Ok(Dataset::new(x, y)?.with_feature_names(names)?)
    }
}

#[inline]
fn ln1p(x: f64) -> f32 {
    (x.max(0.0) + 1.0).ln() as f32
}

fn push_stats(row: &mut Vec<f32>, w: &WindowStats) {
    row.push(w.mean);
    row.push(w.std);
    row.push(w.diff_mean);
    row.push(w.diff_std);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples::build_samples;
    use titan_sim::config::SimConfig;
    use titan_sim::engine::generate;

    fn setup() -> (TraceSet, Vec<LabeledSample>) {
        let t = generate(&SimConfig::tiny(3)).unwrap();
        let ss = build_samples(&t).unwrap();
        (t, ss)
    }

    #[test]
    fn feature_names_consistent_with_extraction() {
        let (t, ss) = setup();
        let fx = FeatureExtractor::new(&t, &ss).unwrap();
        let _enc = EncoderContext::fit(&ss);
        for spec in [
            FeatureSpec::all(),
            FeatureSpec::only_app(),
            FeatureSpec::only_tp(),
            FeatureSpec::only_hist(),
            FeatureSpec::no_telemetry(),
            FeatureSpec::cur(),
            FeatureSpec::cur_prev(),
            FeatureSpec::cur_nei(),
            FeatureSpec::without_local_hist(),
            FeatureSpec::without_hist_today(),
        ] {
            let ds = fx.extract(&ss[..40], &spec).unwrap();
            assert_eq!(ds.n_features(), spec.feature_names().len());
            assert_eq!(ds.len(), 40);
            assert_eq!(ds.feature_names(), spec.feature_names());
        }
    }

    #[test]
    fn all_features_finite() {
        let (t, ss) = setup();
        let fx = FeatureExtractor::new(&t, &ss).unwrap();
        let _enc = EncoderContext::fit(&ss);
        let ds = fx.extract(&ss[..60], &FeatureSpec::all()).unwrap();
        for v in ds.x().as_slice() {
            assert!(v.is_finite(), "non-finite feature {v}");
        }
    }

    #[test]
    fn n_features_matches_name_list_for_every_preset() {
        for spec in [
            FeatureSpec::all(),
            FeatureSpec::none(),
            FeatureSpec::only_app(),
            FeatureSpec::only_tp(),
            FeatureSpec::only_hist(),
            FeatureSpec::cur(),
            FeatureSpec::cur_prev(),
            FeatureSpec::cur_nei(),
            FeatureSpec::without_global_hist(),
            FeatureSpec::without_local_hist(),
            FeatureSpec::without_hist_today(),
            FeatureSpec::without_hist_yesterday(),
            FeatureSpec::without_hist_before(),
        ] {
            assert_eq!(spec.n_features(), spec.feature_names().len(), "{spec:?}");
        }
    }

    #[test]
    fn spec_constructors_differ() {
        assert_ne!(FeatureSpec::cur(), FeatureSpec::cur_prev());
        assert_ne!(FeatureSpec::cur_nei(), FeatureSpec::cur_prev_nei());
        assert_eq!(FeatureSpec::cur_prev_nei(), FeatureSpec::all());
        assert!(
            FeatureSpec::only_hist().feature_names().len()
                < FeatureSpec::all().feature_names().len()
        );
        assert!(!FeatureSpec::only_hist().needs_telemetry());
        assert!(FeatureSpec::only_tp().needs_telemetry());
        let nt = FeatureSpec::no_telemetry();
        assert!(!nt.needs_telemetry());
        assert!(nt.app && nt.location && nt.hist_local && nt.hist_global);
        assert!(nt.n_features() < FeatureSpec::all().n_features());
    }

    #[test]
    fn encoder_rates_reflect_labels() {
        let (_, ss) = setup();
        let enc = EncoderContext::fit(&ss);
        // An app with many positives should encode above the global rate.
        let mut per_app: BTreeMap<u32, (u32, u32)> = BTreeMap::new();
        for s in &ss {
            let e = per_app.entry(s.app.0).or_insert((0, 0));
            e.1 += 1;
            if s.label {
                e.0 += 1;
            }
        }
        let (hot_app, _) = per_app
            .iter()
            .max_by(|a, b| {
                let ra = a.1 .0 as f64 / a.1 .1.max(1) as f64;
                let rb = b.1 .0 as f64 / b.1 .1.max(1) as f64;
                ra.partial_cmp(&rb).unwrap()
            })
            .map(|(&k, &v)| (k, v))
            .unwrap();
        assert!(enc.app_rate(hot_app) >= enc.global_rate());
        // Unseen apps fall back to the global rate.
        assert_eq!(enc.app_rate(9_999_999), enc.global_rate());
    }

    #[test]
    fn previous_app_is_chronological() {
        let (t, ss) = setup();
        let fx = FeatureExtractor::new(&t, &ss).unwrap();
        // For every node's second run, previous_app equals the first run's
        // app.
        let mut per_node: BTreeMap<u32, Vec<&LabeledSample>> = BTreeMap::new();
        for s in &ss {
            per_node.entry(s.node.0).or_default().push(s);
        }
        let mut checked = 0;
        for (node, mut runs) in per_node {
            runs.sort_by_key(|s| s.start_min);
            runs.dedup_by_key(|s| s.aprun);
            if runs.len() >= 2 && runs[0].start_min != runs[1].start_min {
                assert_eq!(
                    fx.previous_app(node, runs[1].start_min),
                    Some(runs[0].app.0)
                );
                checked += 1;
            }
            // No run before the first.
            if let Some(first) = runs.first() {
                assert_eq!(fx.previous_app(node, first.start_min), None);
            }
        }
        assert!(checked > 0);
    }

    #[test]
    fn empty_inputs_rejected() {
        let (t, ss) = setup();
        let fx = FeatureExtractor::new(&t, &ss).unwrap();
        let _enc = EncoderContext::fit(&ss);
        assert!(fx.extract(&[], &FeatureSpec::all()).is_err());
        let empty_spec = FeatureSpec {
            app: false,
            location: false,
            tp_cur: false,
            tp_prev: false,
            tp_nei: false,
            hist_local: false,
            hist_global: false,
            hist_app: false,
            hist_today: false,
            hist_yesterday: false,
            hist_before: false,
        };
        assert!(fx.extract(&ss[..5], &empty_spec).is_err());
    }

    #[test]
    fn hist_features_zero_at_trace_start() {
        let (t, ss) = setup();
        let fx = FeatureExtractor::new(&t, &ss).unwrap();
        let _enc = EncoderContext::fit(&ss);
        // The shortest run lasts 5 minutes, so nothing can be visible
        // before minute 5.
        let early: Vec<LabeledSample> = ss
            .iter()
            .filter(|s| s.start_min < 5)
            .copied()
            .take(5)
            .collect();
        if early.is_empty() {
            return;
        }
        let ds = fx.extract(&early, &FeatureSpec::only_hist()).unwrap();
        for v in ds.x().as_slice() {
            assert_eq!(*v, 0.0);
        }
    }
}
