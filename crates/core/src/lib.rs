//! `sbepred` — GPU single-bit-error prediction (DSN 2018 reproduction).
//!
//! This crate implements the paper's contribution on top of the
//! [`titan_sim`] trace substrate and the [`mlkit`] ML substrate:
//!
//! * [`samples`] — the (application, node) sample universe with
//!   job-boundary labels,
//! * [`history`] — observable SBE history (what `nvidia-smi` snapshots
//!   reveal, *when* they reveal it),
//! * [`features`] — the paper's temporal + spatial feature engineering
//!   (§V): application features, temperature/power window statistics
//!   (current run, 5/15/30/60-minute look-backs, slot neighbours, CPU),
//!   node location, and SBE history at local/global/app scope,
//! * [`baselines`] — the Random and Basic A/B/C schemes of Table I,
//! * [`twostage`] — the TwoStage method (§VI-C): stage 1 filters samples
//!   to known SBE-offender nodes, stage 2 applies a trained classifier,
//! * [`datasets`] — the DS1/DS2/DS3 train(3.5 months)/test(2 weeks)
//!   sliding splits (§VII-A),
//! * [`experiments`] — one driver per table and figure of the paper,
//! * [`forecast`] — AR-forecast run features (the paper's pre-execution
//!   "second approach"),
//! * [`tuning`] — decision-threshold sweeps (F1-optimal, precision-floor),
//! * [`report`] — ASCII tables, heatmaps and CDFs for terminal output.
//!
//! # Quickstart
//!
//! ```no_run
//! use mlkit::gbdt::Gbdt;
//! use sbepred::datasets::DsSplit;
//! use sbepred::features::FeatureSpec;
//! use sbepred::twostage::TwoStage;
//! use titan_sim::config::SimConfig;
//!
//! let trace = titan_sim::engine::generate(&SimConfig::tiny(7))?;
//! let split = DsSplit::ds1(&trace)?;
//! let mut model = TwoStage::new(Gbdt::new(), FeatureSpec::all());
//! let outcome = model.run(&trace, &split)?;
//! println!("F1 = {:.2}", outcome.confusion()?.f1());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod baselines;
pub mod datasets;
pub mod experiments;
pub mod features;
pub mod forecast;
pub mod history;
pub mod report;
pub mod samples;
pub mod tuning;
pub mod twostage;

mod error;

pub use error::PredError;

/// Crate-wide `Result` alias using [`PredError`].
pub type Result<T> = std::result::Result<T, PredError>;
