//! Terminal rendering of experiment outputs: ASCII tables, cabinet-grid
//! heatmaps, histograms, and CDF sketches.

use std::fmt::Write as _;

/// A simple ASCII table with a header row.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn push_row<S: Into<String>>(&mut self, row: impl IntoIterator<Item = S>) {
        let mut r: Vec<String> = row.into_iter().map(Into::into).collect();
        r.resize(self.header.len(), String::new());
        self.rows.push(r);
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let sep: String = widths
            .iter()
            .map(|w| format!("+{}", "-".repeat(w + 2)))
            .collect::<String>()
            + "+\n";
        out.push_str(&sep);
        let render_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                let _ = write!(line, "| {cell:w$} ");
            }
            line + "|\n"
        };
        out.push_str(&render_row(&self.header));
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&render_row(row));
        }
        out.push_str(&sep);
        out
    }
}

/// A human-readable rendering of an [`obskit::Recorder`] snapshot:
/// counters, gauges, histogram summaries, and span statistics as ASCII
/// tables, in the recorder's deterministic (sorted) key order.
#[derive(Debug, Clone)]
pub struct MetricsReport {
    text: String,
    json: String,
}

impl MetricsReport {
    /// Builds the report from a recorder's current state.
    pub fn from_recorder(rec: &obskit::Recorder) -> MetricsReport {
        let mut text = String::new();
        let mut t = Table::new(["Counter", "Value"]);
        for (k, v) in rec.counters() {
            t.push_row([k.to_string(), v.to_string()]);
        }
        if t.n_rows() > 0 {
            text.push_str("Counters:\n");
            text.push_str(&t.render());
        }
        let mut t = Table::new(["Gauge", "Value"]);
        for (k, v) in rec.gauges() {
            t.push_row([k.to_string(), format!("{v:.6}")]);
        }
        if t.n_rows() > 0 {
            text.push_str("Gauges:\n");
            text.push_str(&t.render());
        }
        let mut t = Table::new(["Histogram", "Count", "Sum", "Mean"]);
        for (k, h) in rec.histograms() {
            t.push_row([
                k.to_string(),
                h.count().to_string(),
                format!("{:.3}", h.sum()),
                format!("{:.3}", h.mean()),
            ]);
        }
        if t.n_rows() > 0 {
            text.push_str("Histograms:\n");
            text.push_str(&t.render());
        }
        let mut t = Table::new(["Span", "Count", "Total ticks", "Min", "Max"]);
        for (k, s) in rec.spans() {
            t.push_row([
                k.to_string(),
                s.count.to_string(),
                s.total_ticks.to_string(),
                s.min_ticks.to_string(),
                s.max_ticks.to_string(),
            ]);
        }
        if t.n_rows() > 0 {
            text.push_str("Spans (logical ticks):\n");
            text.push_str(&t.render());
        }
        if text.is_empty() {
            text.push_str("(no metrics recorded)\n");
        }
        MetricsReport {
            text,
            json: rec.snapshot_json(),
        }
    }

    /// The ASCII-table rendering.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The stable `obskit/1` JSON snapshot the report was built from.
    pub fn json(&self) -> &str {
        &self.json
    }
}

impl std::fmt::Display for MetricsReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Renders a `width × height` grid of values as an ASCII heatmap
/// (row `y = height-1` printed first, like the paper's cabinet plots).
/// Values are normalised to the grid's min/max and mapped onto a
/// ten-step character ramp.
pub fn render_heatmap(values: &[f64], width: usize, height: usize) -> String {
    const RAMP: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    if values.len() != width * height || width == 0 {
        return String::from("(invalid heatmap dimensions)\n");
    }
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let range = (hi - lo).max(f64::MIN_POSITIVE);
    let mut out = String::new();
    for y in (0..height).rev() {
        let _ = write!(out, "{y:>2} |");
        for x in 0..width {
            let v = values[y * width + x];
            let t = ((v - lo) / range * (RAMP.len() - 1) as f64).round() as usize;
            let c = RAMP[t.min(RAMP.len() - 1)];
            out.push(c);
            out.push(c);
        }
        out.push_str("|\n");
    }
    let _ = writeln!(out, "    {}", "-".repeat(width * 2));
    out.push_str("     0");
    let _ = writeln!(out, "{:>width$}", width - 1, width = width * 2 - 2);
    let _ = writeln!(out, "    scale: min={lo:.3} max={hi:.3}");
    out
}

/// Renders a histogram as horizontal bars with bin labels.
pub fn render_histogram(centers: &[f64], probs: &[f64], max_width: usize) -> String {
    let mut out = String::new();
    let peak = probs
        .iter()
        .copied()
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);
    for (c, p) in centers.iter().zip(probs) {
        let w = (p / peak * max_width as f64).round() as usize;
        let _ = writeln!(out, "{c:>8.1} | {} {p:.3}", "#".repeat(w));
    }
    out
}

/// Renders an empirical CDF as `(x, F(x))` sample points at the given
/// quantile fractions.
pub fn render_cdf_points(sorted_values: &[f64], quantiles: &[f64]) -> String {
    let mut out = String::new();
    if sorted_values.is_empty() {
        return String::from("(empty cdf)\n");
    }
    for &q in quantiles {
        let q = q.clamp(0.0, 1.0);
        let idx = ((sorted_values.len() - 1) as f64 * q).round() as usize;
        let _ = writeln!(out, "  p{:<4.0} {:>12.3}", q * 100.0, sorted_values[idx]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["Model", "F1"]);
        t.push_row(["GBDT", "0.81"]);
        t.push_row(["LR", "0.67"]);
        let s = t.render();
        assert!(s.contains("| GBDT  | 0.81 |"));
        assert!(s.contains("| Model | F1   |"));
        assert_eq!(t.n_rows(), 2);
    }

    #[test]
    fn table_pads_short_rows() {
        let mut t = Table::new(["a", "b", "c"]);
        t.push_row(["only-one"]);
        let s = t.render();
        assert!(s.contains("only-one"));
    }

    #[test]
    fn metrics_report_renders_all_sections() {
        let mut rec = obskit::Recorder::new();
        rec.incr("a.count", 3);
        rec.gauge("b.rate", 0.5);
        rec.observe("c.hist", 2.0);
        let span = rec.span_start("d.span");
        rec.span_end(span);
        let report = MetricsReport::from_recorder(&rec);
        for needle in [
            "a.count",
            "b.rate",
            "c.hist",
            "d.span",
            "Counters:",
            "Spans",
        ] {
            assert!(report.text().contains(needle), "missing {needle}");
        }
        assert_eq!(report.json(), rec.snapshot_json());
        assert!(report.to_string().contains("a.count"));
        let empty = MetricsReport::from_recorder(&obskit::Recorder::null());
        assert!(empty.text().contains("no metrics recorded"));
    }

    #[test]
    fn heatmap_shape_and_scale() {
        let vals: Vec<f64> = (0..12).map(|v| v as f64).collect();
        let s = render_heatmap(&vals, 4, 3);
        // 3 data lines + axis + labels + scale.
        assert_eq!(s.lines().count(), 6);
        assert!(s.contains("min=0.000"));
        assert!(s.contains("max=11.000"));
        // Top-printed row is y=2 (values 8..12 -> densest chars).
        let first = s.lines().next().unwrap();
        assert!(first.starts_with(" 2 |"));
    }

    #[test]
    fn heatmap_rejects_bad_dims() {
        assert!(render_heatmap(&[1.0], 2, 2).contains("invalid"));
    }

    #[test]
    fn histogram_bars_scale_to_peak() {
        let s = render_histogram(&[1.0, 2.0], &[0.25, 0.5], 10);
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[1].matches('#').count() == 10);
        assert!(lines[0].matches('#').count() == 5);
    }

    #[test]
    fn cdf_points_monotone() {
        let vals: Vec<f64> = (0..100).map(|v| v as f64).collect();
        let s = render_cdf_points(&vals, &[0.0, 0.5, 1.0]);
        assert!(s.contains("p0"));
        assert!(s.contains("99.000"));
        assert_eq!(render_cdf_points(&[], &[0.5]), "(empty cdf)\n");
    }
}
