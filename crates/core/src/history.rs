//! Observable SBE history.
//!
//! The `nvidia-smi` pipeline reads SBE counters only at batch-job
//! boundaries, so an error that occurs mid-job becomes *visible* only when
//! the job ends. All history features (the paper's §V-B "SBE history"
//! group) must respect that visibility rule to avoid label leakage:
//! [`SbeHistory`] indexes error events by the minute their job finished
//! and answers range-count queries at node, application, and machine
//! scope in `O(log n)`.

use crate::samples::LabeledSample;
use crate::Result;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use titan_sim::apps::AppId;
use titan_sim::topology::NodeId;

/// A time-indexed cumulative event list: `(visible_at, cumulative_count)`
/// sorted by time.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct CumSeries {
    points: Vec<(u64, u64)>,
}

impl CumSeries {
    fn from_events(mut events: Vec<(u64, u32)>) -> CumSeries {
        events.sort_unstable();
        let mut series = CumSeries::default();
        for (t, c) in events {
            series.append(t, c);
        }
        series
    }

    /// Appends one event; `t` must be monotonically non-decreasing (the
    /// caller enforces this). Equivalent to rebuilding with
    /// [`CumSeries::from_events`] over the same event multiset.
    fn append(&mut self, t: u64, c: u32) {
        if let Some((lt, lc)) = self.points.last_mut() {
            if *lt == t {
                *lc += c as u64;
                return;
            }
        }
        let cum = self.points.last().map_or(0, |&(_, lc)| lc) + c as u64;
        self.points.push((t, cum));
    }

    /// Total count visible strictly before `t`.
    fn before(&self, t: u64) -> u64 {
        let idx = self.points.partition_point(|&(pt, _)| pt < t);
        idx.checked_sub(1)
            .and_then(|i| self.points.get(i))
            .map_or(0, |&(_, c)| c)
    }

    /// Count visible in `[a, b)`.
    fn between(&self, a: u64, b: u64) -> u64 {
        self.before(b).saturating_sub(self.before(a))
    }
}

/// Index of observable SBE events over a trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SbeHistory {
    node: BTreeMap<u32, CumSeries>,
    app: BTreeMap<u32, CumSeries>,
    machine: CumSeries,
}

impl SbeHistory {
    /// Builds the index from the full labelled sample list.
    ///
    /// Counts are aggregated per (job, node) — each job's per-node delta
    /// is one event, visible when the job's last aprun finishes.
    ///
    /// # Errors
    ///
    /// Infallible today; fallible for forward compatibility.
    pub fn build(samples: &[LabeledSample]) -> Result<SbeHistory> {
        // Last end per job.
        let mut job_end: BTreeMap<u32, u64> = BTreeMap::new();
        for s in samples {
            let e = job_end.entry(s.job.0).or_insert(0);
            *e = (*e).max(s.end_min);
        }
        // One event per positive (job, node): the attributed count is the
        // same on every aprun of the job, so keep the first seen.
        let mut job_node: BTreeMap<(u32, u32), (u64, u32, u32)> = BTreeMap::new();
        for s in samples {
            if s.sbe_count == 0 {
                continue;
            }
            job_node.entry((s.job.0, s.node.0)).or_insert((
                job_end[&s.job.0],
                s.sbe_count,
                s.app.0,
            ));
        }

        let mut node_events: BTreeMap<u32, Vec<(u64, u32)>> = BTreeMap::new();
        let mut app_events: BTreeMap<u32, Vec<(u64, u32)>> = BTreeMap::new();
        let mut machine_events: Vec<(u64, u32)> = Vec::new();
        for (&(_job, node), &(t, c, app)) in &job_node {
            node_events.entry(node).or_default().push((t, c));
            app_events.entry(app).or_default().push((t, c));
            machine_events.push((t, c));
        }
        Ok(SbeHistory {
            node: node_events
                .into_iter()
                .map(|(k, v)| (k, CumSeries::from_events(v)))
                .collect(),
            app: app_events
                .into_iter()
                .map(|(k, v)| (k, CumSeries::from_events(v)))
                .collect(),
            machine: CumSeries::from_events(machine_events),
        })
    }

    /// SBEs on `node` visible in `[a, b)`.
    pub fn node_between(&self, node: NodeId, a: u64, b: u64) -> u64 {
        self.node.get(&node.0).map_or(0, |s| s.between(a, b))
    }

    /// SBEs on `node` visible strictly before `t`.
    pub fn node_before(&self, node: NodeId, t: u64) -> u64 {
        self.node.get(&node.0).map_or(0, |s| s.before(t))
    }

    /// SBEs attributed to `app` visible in `[a, b)`.
    pub fn app_between(&self, app: AppId, a: u64, b: u64) -> u64 {
        self.app.get(&app.0).map_or(0, |s| s.between(a, b))
    }

    /// Machine-wide SBEs visible in `[a, b)`.
    pub fn machine_between(&self, a: u64, b: u64) -> u64 {
        self.machine.between(a, b)
    }

    /// Machine-wide SBEs visible strictly before `t`.
    pub fn machine_before(&self, t: u64) -> u64 {
        self.machine.before(t)
    }

    /// The set of nodes with at least one SBE visible strictly before `t`
    /// — the observable "offender node" set the TwoStage filter uses.
    pub fn offender_nodes_before(&self, t: u64) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .node
            .iter()
            .filter(|(_, s)| s.before(t) > 0)
            .map(|(&n, _)| NodeId(n))
            .collect();
        out.sort_unstable();
        out
    }

    /// The set of apps with at least one SBE visible strictly before `t`
    /// (Basic B's offender-application set), with their counts.
    pub fn offender_apps_before(&self, t: u64) -> Vec<(AppId, u64)> {
        let mut out: Vec<(AppId, u64)> = self
            .app
            .iter()
            .filter(|(_, s)| s.before(t) > 0)
            .map(|(&a, s)| (AppId(a), s.before(t)))
            .collect();
        out.sort_unstable_by_key(|&(a, _)| a);
        out
    }
}

/// Read-only view of observable SBE history: the query surface the
/// history feature group needs, abstracted so the batch index
/// ([`SbeHistory`]) and the streaming index ([`IncrementalHistory`]) can
/// feed the exact same row-assembly code.
///
/// All queries use strict visibility: `*_before(t)` counts events visible
/// strictly before minute `t`, and `*_between(a, b)` counts `[a, b)`.
pub trait HistoryView {
    /// SBEs on `node` visible in `[a, b)`.
    fn node_between(&self, node: NodeId, a: u64, b: u64) -> u64;
    /// SBEs on `node` visible strictly before `t`.
    fn node_before(&self, node: NodeId, t: u64) -> u64;
    /// SBEs attributed to `app` visible in `[a, b)`.
    fn app_between(&self, app: AppId, a: u64, b: u64) -> u64;
    /// Machine-wide SBEs visible in `[a, b)`.
    fn machine_between(&self, a: u64, b: u64) -> u64;
    /// Machine-wide SBEs visible strictly before `t`.
    fn machine_before(&self, t: u64) -> u64;
}

impl HistoryView for SbeHistory {
    fn node_between(&self, node: NodeId, a: u64, b: u64) -> u64 {
        SbeHistory::node_between(self, node, a, b)
    }

    fn node_before(&self, node: NodeId, t: u64) -> u64 {
        SbeHistory::node_before(self, node, t)
    }

    fn app_between(&self, app: AppId, a: u64, b: u64) -> u64 {
        SbeHistory::app_between(self, app, a, b)
    }

    fn machine_between(&self, a: u64, b: u64) -> u64 {
        SbeHistory::machine_between(self, a, b)
    }

    fn machine_before(&self, t: u64) -> u64 {
        SbeHistory::machine_before(self, t)
    }
}

/// Sentinel chunk/series link meaning "none".
const ARENA_NONE: u32 = u32::MAX;

/// Points per [`SeriesArena`] chunk. Most series are short (a node's
/// SBE events over a trace), so small chunks keep slack bounded while
/// still amortising growth: one allocation per `CHUNK_CAP` points
/// instead of one `Vec` per key plus its doublings.
const CHUNK_CAP: usize = 8;

/// A chunked arena of append-only cumulative series.
///
/// All per-key `(time, cumulative_count)` points live in four flat
/// vectors, carved into fixed-size chunks that are chained per series —
/// the backing store [`IncrementalHistory`] uses so the streaming serve
/// loop ingests without a per-key allocation. Chunks are ordered within
/// a series, and times are non-decreasing (the owner enforces a
/// frontier), so a query walks the chain and binary-searches one chunk.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct SeriesArena {
    /// Point times, `CHUNK_CAP` slots per chunk.
    chunk_t: Vec<u64>,
    /// Cumulative counts, parallel to `chunk_t`.
    chunk_c: Vec<u64>,
    /// Occupied slots per chunk (1..=CHUNK_CAP).
    chunk_len: Vec<u8>,
    /// Per chunk: the series' next chunk, or [`ARENA_NONE`].
    chunk_next: Vec<u32>,
    /// Per series: first chunk, or [`ARENA_NONE`] while empty.
    head: Vec<u32>,
    /// Per series: last chunk, or [`ARENA_NONE`] while empty.
    tail: Vec<u32>,
}

impl SeriesArena {
    /// Registers a new empty series and returns its handle.
    fn new_series(&mut self) -> u32 {
        let s = self.head.len() as u32;
        self.head.push(ARENA_NONE);
        self.tail.push(ARENA_NONE);
        s
    }

    /// Carves a fresh chunk holding one point; returns its id.
    fn alloc_chunk(&mut self, t: u64, cum: u64) -> u32 {
        let ci = self.chunk_len.len();
        self.chunk_t.resize((ci + 1) * CHUNK_CAP, 0);
        self.chunk_c.resize((ci + 1) * CHUNK_CAP, 0);
        self.chunk_t[ci * CHUNK_CAP] = t;
        self.chunk_c[ci * CHUNK_CAP] = cum;
        self.chunk_len.push(1);
        self.chunk_next.push(ARENA_NONE);
        ci as u32
    }

    /// Appends one event to `series`; `t` must be non-decreasing within
    /// the series. Same-`t` events merge into the last point, exactly
    /// like [`CumSeries::append`].
    fn append(&mut self, series: u32, t: u64, c: u32) {
        let s = series as usize;
        let tail = self.tail[s];
        if tail == ARENA_NONE {
            let chunk = self.alloc_chunk(t, c as u64);
            self.head[s] = chunk;
            self.tail[s] = chunk;
            return;
        }
        let ci = tail as usize;
        let len = self.chunk_len[ci] as usize;
        let last = ci * CHUNK_CAP + len - 1;
        if self.chunk_t[last] == t {
            self.chunk_c[last] += c as u64;
            return;
        }
        let cum = self.chunk_c[last] + c as u64;
        if len < CHUNK_CAP {
            self.chunk_t[ci * CHUNK_CAP + len] = t;
            self.chunk_c[ci * CHUNK_CAP + len] = cum;
            self.chunk_len[ci] += 1;
        } else {
            let chunk = self.alloc_chunk(t, cum);
            self.chunk_next[ci] = chunk;
            self.tail[s] = chunk;
        }
    }

    /// Total count of `series` visible strictly before `t`.
    fn before(&self, series: u32, t: u64) -> u64 {
        let mut best = 0u64;
        let mut cur = self
            .head
            .get(series as usize)
            .copied()
            .unwrap_or(ARENA_NONE);
        while cur != ARENA_NONE {
            let ci = cur as usize;
            let len = self.chunk_len.get(ci).copied().unwrap_or(0) as usize;
            let Some(ts) = self.chunk_t.get(ci * CHUNK_CAP..ci * CHUNK_CAP + len) else {
                break;
            };
            // Chunks are time-ordered: once a chunk starts at/after `t`
            // the running best is the answer.
            if ts.first().is_none_or(|&first| first >= t) {
                break;
            }
            let idx = ts.partition_point(|&pt| pt < t);
            if let Some(&c) = self.chunk_c.get((ci * CHUNK_CAP + idx).wrapping_sub(1)) {
                best = c;
            }
            if idx < len {
                break;
            }
            cur = self.chunk_next.get(ci).copied().unwrap_or(ARENA_NONE);
        }
        best
    }

    /// Count of `series` visible in `[a, b)`.
    fn between(&self, series: u32, a: u64, b: u64) -> u64 {
        self.before(series, b)
            .saturating_sub(self.before(series, a))
    }
}

/// An SBE-history index built *incrementally*, one visibility event at a
/// time, as a replay driver walks a trace forward.
///
/// Semantics are identical to [`SbeHistory`]: ingesting the same event
/// multiset (in non-decreasing `visible_at` order) yields the same answer
/// to every [`HistoryView`] query — the stream/batch parity suite holds
/// the two to byte-identical feature rows. Storage differs: all series
/// share one chunked [`SeriesArena`], so steady-state ingest is
/// allocation-free except when a series fills a chunk.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IncrementalHistory {
    arena: SeriesArena,
    /// Per-node series handle into the arena.
    node: BTreeMap<u32, u32>,
    /// Per-app series handle into the arena.
    app: BTreeMap<u32, u32>,
    /// The machine-wide series handle.
    machine: u32,
    frontier: u64,
}

impl Default for IncrementalHistory {
    fn default() -> IncrementalHistory {
        let mut arena = SeriesArena::default();
        let machine = arena.new_series();
        IncrementalHistory {
            arena,
            node: BTreeMap::new(),
            app: BTreeMap::new(),
            machine,
            frontier: 0,
        }
    }
}

impl IncrementalHistory {
    /// An empty index with frontier 0.
    pub fn new() -> IncrementalHistory {
        IncrementalHistory::default()
    }

    /// Ingests one job-boundary SBE snapshot delta.
    ///
    /// Events must arrive in non-decreasing `visible_at` order (the order
    /// a replay driver naturally produces); zero counts are accepted and
    /// ignored.
    ///
    /// # Errors
    ///
    /// Returns [`crate::PredError::InvalidInput`] when `visible_at` is
    /// behind an already-ingested event.
    pub fn ingest(&mut self, visible_at: u64, node: NodeId, app: AppId, count: u32) -> Result<()> {
        if visible_at < self.frontier {
            return Err(crate::PredError::InvalidInput {
                reason: format!(
                    "out-of-order history event: visible_at {visible_at} < frontier {}",
                    self.frontier
                ),
            });
        }
        self.frontier = visible_at;
        if count == 0 {
            return Ok(());
        }
        let arena = &mut self.arena;
        let node_series = *self
            .node
            .entry(node.0)
            .or_insert_with(|| arena.new_series());
        arena.append(node_series, visible_at, count);
        let app_series = *self.app.entry(app.0).or_insert_with(|| arena.new_series());
        arena.append(app_series, visible_at, count);
        arena.append(self.machine, visible_at, count);
        Ok(())
    }

    /// The latest `visible_at` ingested so far.
    pub fn frontier(&self) -> u64 {
        self.frontier
    }

    /// Total SBE count ingested.
    pub fn total(&self) -> u64 {
        self.arena.before(self.machine, u64::MAX)
    }
}

impl HistoryView for IncrementalHistory {
    fn node_between(&self, node: NodeId, a: u64, b: u64) -> u64 {
        self.node
            .get(&node.0)
            .map_or(0, |&s| self.arena.between(s, a, b))
    }

    fn node_before(&self, node: NodeId, t: u64) -> u64 {
        self.node
            .get(&node.0)
            .map_or(0, |&s| self.arena.before(s, t))
    }

    fn app_between(&self, app: AppId, a: u64, b: u64) -> u64 {
        self.app
            .get(&app.0)
            .map_or(0, |&s| self.arena.between(s, a, b))
    }

    fn machine_between(&self, a: u64, b: u64) -> u64 {
        self.arena.between(self.machine, a, b)
    }

    fn machine_before(&self, t: u64) -> u64 {
        self.arena.before(self.machine, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples::build_samples;
    use titan_sim::config::SimConfig;
    use titan_sim::engine::generate;

    fn setup() -> (Vec<LabeledSample>, SbeHistory) {
        let t = generate(&SimConfig::tiny(3)).unwrap();
        let ss = build_samples(&t).unwrap();
        let h = SbeHistory::build(&ss).unwrap();
        (ss, h)
    }

    #[test]
    fn cum_series_basics() {
        let s = CumSeries::from_events(vec![(10, 2), (5, 1), (10, 3)]);
        assert_eq!(s.before(5), 0);
        assert_eq!(s.before(6), 1);
        assert_eq!(s.before(11), 6);
        assert_eq!(s.between(5, 10), 1);
        assert_eq!(s.between(0, 100), 6);
        assert_eq!(s.between(11, 5), 0); // inverted range is empty
    }

    #[test]
    fn machine_total_matches_job_level_sum() {
        let (ss, h) = setup();
        // Sum per (job, node) once.
        let mut seen = std::collections::BTreeSet::new();
        let mut total = 0u64;
        for s in &ss {
            if s.sbe_count > 0 && seen.insert((s.job.0, s.node.0)) {
                total += s.sbe_count as u64;
            }
        }
        assert_eq!(h.machine_before(u64::MAX), total);
        assert!(total > 0);
    }

    #[test]
    fn events_not_visible_before_job_end() {
        let (ss, h) = setup();
        // Pick a positive sample from a job and check its error is not
        // visible at the run's own start.
        let s = ss.iter().find(|s| s.label).unwrap();
        // The job containing this sample contributes nothing before the
        // job started.
        let visible_at_start = h.node_before(s.node, s.start_min);
        let visible_later = h.node_before(s.node, u64::MAX);
        assert!(visible_later > visible_at_start || visible_at_start > 0);
        // Its own job's event must appear only at/after end_min of the
        // job's last aprun, i.e. >= this aprun's end.
        let between = h.node_between(s.node, s.start_min, s.end_min);
        // The event can be visible inside (start, end) only if another
        // job on this node ended there; our own job's event is at >= end.
        let own_job_events_early = ss
            .iter()
            .filter(|o| o.job == s.job && o.node == s.node && o.end_min < s.end_min)
            .count();
        if own_job_events_early == 0 {
            // No other aprun of this job ends earlier, so any count in the
            // window comes from other jobs; this just must not panic.
            let _ = between;
        }
    }

    #[test]
    fn offender_sets_grow_over_time() {
        let (_, h) = setup();
        let early = h.offender_nodes_before(1_000).len();
        let late = h.offender_nodes_before(u64::MAX).len();
        assert!(late >= early);
        assert!(late > 0);
        let apps = h.offender_apps_before(u64::MAX);
        assert!(!apps.is_empty());
        for (_, c) in apps {
            assert!(c > 0);
        }
    }

    #[test]
    fn node_scope_sums_to_machine_scope() {
        let (_, h) = setup();
        let t = u64::MAX;
        let node_sum: u64 = h
            .offender_nodes_before(t)
            .iter()
            .map(|&n| h.node_before(n, t))
            .sum();
        assert_eq!(node_sum, h.machine_before(t));
    }

    #[test]
    fn unknown_entities_count_zero() {
        let (_, h) = setup();
        assert_eq!(h.node_before(NodeId(999_999), u64::MAX), 0);
        assert_eq!(h.app_between(AppId(999_999), 0, u64::MAX), 0);
    }

    /// The visibility-event list of a sample set, ordered by `visible_at`
    /// — the stream a replay driver would feed [`IncrementalHistory`].
    fn visibility_events(ss: &[LabeledSample]) -> Vec<(u64, u32, u32, u32)> {
        let mut job_end: BTreeMap<u32, u64> = BTreeMap::new();
        for s in ss {
            let e = job_end.entry(s.job.0).or_insert(0);
            *e = (*e).max(s.end_min);
        }
        let mut job_node: BTreeMap<(u32, u32), (u64, u32, u32)> = BTreeMap::new();
        for s in ss {
            if s.sbe_count > 0 {
                job_node.entry((s.job.0, s.node.0)).or_insert((
                    job_end[&s.job.0],
                    s.sbe_count,
                    s.app.0,
                ));
            }
        }
        let mut events: Vec<(u64, u32, u32, u32)> = job_node
            .iter()
            .map(|(&(_, node), &(t, c, app))| (t, node, app, c))
            .collect();
        events.sort_unstable();
        events
    }

    #[test]
    fn incremental_matches_batch_index() {
        let (ss, h) = setup();
        let mut inc = IncrementalHistory::new();
        for (t, node, app, c) in visibility_events(&ss) {
            inc.ingest(t, NodeId(node), AppId(app), c).unwrap();
        }
        assert_eq!(inc.total(), h.machine_before(u64::MAX));
        // Every query the feature engine issues must agree at every
        // sample's start minute.
        for s in ss.iter().take(500) {
            let t = s.start_min;
            let day0 = t - t % 1_440;
            assert_eq!(inc.node_before(s.node, t), h.node_before(s.node, t));
            assert_eq!(
                inc.node_between(s.node, day0, t),
                h.node_between(s.node, day0, t)
            );
            assert_eq!(inc.machine_before(t), h.machine_before(t));
            assert_eq!(
                inc.app_between(s.app, t.saturating_sub(1_440), t),
                h.app_between(s.app, t.saturating_sub(1_440), t)
            );
        }
    }

    #[test]
    fn arena_series_cross_chunk_boundaries_like_cum_series() {
        // 3 × CHUNK_CAP distinct minutes forces chained chunks; a
        // reference CumSeries answers the same queries.
        let mut arena = SeriesArena::default();
        let s = arena.new_series();
        let mut reference = CumSeries::default();
        for i in 0..(3 * CHUNK_CAP as u64) {
            let t = 10 * i;
            let c = (i % 5 + 1) as u32;
            arena.append(s, t, c);
            reference.append(t, c);
        }
        for t in 0..(31 * CHUNK_CAP as u64) {
            assert_eq!(arena.before(s, t), reference.before(t), "before({t})");
        }
        assert_eq!(arena.between(s, 35, 155), reference.between(35, 155));
        assert_eq!(arena.between(s, 155, 35), 0);
    }

    #[test]
    fn arena_merges_same_minute_at_chunk_boundary() {
        let mut arena = SeriesArena::default();
        let s = arena.new_series();
        for i in 0..CHUNK_CAP as u64 {
            arena.append(s, i, 1);
        }
        // The chunk is full; a same-minute event must merge into the
        // last point, not open a new chunk.
        arena.append(s, CHUNK_CAP as u64 - 1, 4);
        assert_eq!(arena.chunk_len.len(), 1);
        assert_eq!(arena.before(s, CHUNK_CAP as u64), CHUNK_CAP as u64 + 4);
        // The next distinct minute does open one.
        arena.append(s, CHUNK_CAP as u64, 2);
        assert_eq!(arena.chunk_len.len(), 2);
        assert_eq!(arena.before(s, u64::MAX), CHUNK_CAP as u64 + 6);
    }

    #[test]
    fn arena_empty_series_answers_zero() {
        let mut arena = SeriesArena::default();
        let s = arena.new_series();
        assert_eq!(arena.before(s, u64::MAX), 0);
        assert_eq!(arena.between(s, 0, 100), 0);
    }

    #[test]
    fn incremental_history_serde_round_trip() {
        let mut inc = IncrementalHistory::new();
        for i in 0..40u64 {
            inc.ingest(
                i,
                NodeId((i % 3) as u32),
                AppId((i % 2) as u32),
                1 + (i % 4) as u32,
            )
            .unwrap();
        }
        let json = serde_json::to_string(&inc).unwrap();
        let back: IncrementalHistory = serde_json::from_str(&json).unwrap();
        assert_eq!(back.total(), inc.total());
        assert_eq!(back.frontier(), inc.frontier());
        for t in [0, 7, 20, 41, u64::MAX] {
            assert_eq!(
                back.node_before(NodeId(1), t),
                inc.node_before(NodeId(1), t)
            );
            assert_eq!(back.machine_before(t), inc.machine_before(t));
        }
    }

    #[test]
    fn incremental_rejects_out_of_order_and_ignores_zero() {
        let mut inc = IncrementalHistory::new();
        inc.ingest(10, NodeId(1), AppId(2), 3).unwrap();
        inc.ingest(10, NodeId(1), AppId(2), 2).unwrap(); // same-minute merge
        inc.ingest(12, NodeId(1), AppId(2), 0).unwrap(); // advances frontier only
        assert_eq!(inc.frontier(), 12);
        assert_eq!(inc.total(), 5);
        assert_eq!(inc.node_before(NodeId(1), 11), 5);
        assert_eq!(inc.node_before(NodeId(1), 10), 0);
        assert!(inc.ingest(9, NodeId(1), AppId(2), 1).is_err());
    }
}
