//! The labelled sample universe.
//!
//! A *sample* is one (application run, node) pair — exactly the unit the
//! paper classifies. Labels come from the observable job-boundary SBE
//! snapshots: a sample is positive when its job's per-node SBE delta is
//! non-zero (conservative attribution, §II).

use crate::Result;
use serde::{Deserialize, Serialize};
use titan_sim::apps::AppId;
use titan_sim::schedule::{ApRunId, JobId};
use titan_sim::topology::NodeId;
use titan_sim::trace::TraceSet;

/// One labelled (aprun, node) sample with the metadata the pipeline needs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LabeledSample {
    /// The application run.
    pub aprun: ApRunId,
    /// The batch job containing it.
    pub job: JobId,
    /// The application.
    pub app: AppId,
    /// The node.
    pub node: NodeId,
    /// Run start minute.
    pub start_min: u64,
    /// Run end minute (exclusive).
    pub end_min: u64,
    /// Number of nodes in the allocation.
    pub n_nodes: u32,
    /// Job-attributed SBE count on this node (observable).
    pub sbe_count: u32,
    /// `true` when `sbe_count > 0`.
    pub label: bool,
}

impl LabeledSample {
    /// Runtime in minutes.
    pub fn runtime_min(&self) -> u64 {
        self.end_min - self.start_min
    }
}

/// Builds the full labelled sample list of a trace, ordered like
/// [`TraceSet::samples`] (by aprun, then node).
///
/// # Errors
///
/// Propagates trace lookup errors (never expected for a well-formed
/// trace).
pub fn build_samples(trace: &TraceSet) -> Result<Vec<LabeledSample>> {
    let mut out = Vec::with_capacity(trace.samples().len());
    for s in trace.samples() {
        let run = trace.aprun(s.aprun)?;
        out.push(LabeledSample {
            aprun: s.aprun,
            job: run.job_id,
            app: run.app_id,
            node: s.node,
            start_min: run.start_min,
            end_min: run.end_min,
            n_nodes: run.nodes.len() as u32,
            sbe_count: s.sbe_attributed,
            label: s.sbe_attributed > 0,
        });
    }
    Ok(out)
}

/// Selects the samples whose run *starts* inside `[start_min, end_min)`.
pub fn in_window(samples: &[LabeledSample], start_min: u64, end_min: u64) -> Vec<LabeledSample> {
    samples
        .iter()
        .filter(|s| s.start_min >= start_min && s.start_min < end_min)
        .copied()
        .collect()
}

/// Ground-truth label vector (`1.0` positive) for a sample slice.
pub fn labels(samples: &[LabeledSample]) -> Vec<f32> {
    samples
        .iter()
        .map(|s| if s.label { 1.0 } else { 0.0 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use titan_sim::config::SimConfig;
    use titan_sim::engine::generate;

    fn trace() -> TraceSet {
        generate(&SimConfig::tiny(3)).unwrap()
    }

    #[test]
    fn covers_every_trace_sample() {
        let t = trace();
        let ss = build_samples(&t).unwrap();
        assert_eq!(ss.len(), t.samples().len());
        for (ls, rs) in ss.iter().zip(t.samples()) {
            assert_eq!(ls.aprun, rs.aprun);
            assert_eq!(ls.node, rs.node);
            assert_eq!(ls.sbe_count, rs.sbe_attributed);
            assert_eq!(ls.label, rs.sbe_attributed > 0);
        }
    }

    #[test]
    fn metadata_consistent_with_runs() {
        let t = trace();
        let ss = build_samples(&t).unwrap();
        for s in ss.iter().take(200) {
            let run = t.aprun(s.aprun).unwrap();
            assert_eq!(s.start_min, run.start_min);
            assert_eq!(s.end_min, run.end_min);
            assert_eq!(s.n_nodes as usize, run.nodes.len());
            assert_eq!(s.app, run.app_id);
            assert_eq!(s.job, run.job_id);
            assert!(s.runtime_min() > 0);
        }
    }

    #[test]
    fn window_selection_filters_by_start() {
        let t = trace();
        let ss = build_samples(&t).unwrap();
        let lo = 5_000;
        let hi = 20_000;
        let w = in_window(&ss, lo, hi);
        assert!(!w.is_empty());
        for s in &w {
            assert!(s.start_min >= lo && s.start_min < hi);
        }
        // Complementary windows partition the set.
        let before = in_window(&ss, 0, lo);
        let after = in_window(&ss, hi, u64::MAX);
        assert_eq!(before.len() + w.len() + after.len(), ss.len());
    }

    #[test]
    fn labels_match() {
        let t = trace();
        let ss = build_samples(&t).unwrap();
        let y = labels(&ss);
        let pos = y.iter().filter(|&&v| v == 1.0).count();
        assert_eq!(pos, ss.iter().filter(|s| s.label).count());
        assert!(pos > 0);
    }
}
