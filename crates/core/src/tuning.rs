//! Decision-threshold tuning.
//!
//! The paper's models threshold probability at 0.5, but operational
//! deployments (the ECC advisor) want either the F1-optimal threshold or
//! the most permissive threshold that still meets a precision floor.
//! Both sweeps run in `O(n log n)` by sorting the scores once.

use crate::{PredError, Result};
use mlkit::metrics::Prf;

/// One point of a threshold sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdPoint {
    /// Scores `>= threshold` are predicted positive.
    pub threshold: f32,
    /// Metrics at this threshold.
    pub metrics: Prf,
}

/// Sweeps every distinct score as a threshold, returning the metric curve
/// sorted by ascending threshold. Uses the automatic thread policy; see
/// [`threshold_sweep_with`].
///
/// # Errors
///
/// Returns [`PredError::InvalidInput`] for empty or mismatched inputs or
/// when a class is absent.
pub fn threshold_sweep(truth: &[f32], scores: &[f32]) -> Result<Vec<ThresholdPoint>> {
    threshold_sweep_with(truth, scores, parkit::Threads::Auto)
}

/// Minimum tie-group count below which the sweep runs inline — the two
/// parallel passes only pay off on large curves.
const PAR_SWEEP_MIN_GROUPS: usize = 4_096;

/// [`threshold_sweep`] with an explicit thread policy.
///
/// The sweep decomposes into: a serial sort, tie-group discovery, a
/// parallel per-group counting pass, a serial prefix sum over groups, and
/// a parallel point-emission pass. The counts are exact integers and the
/// prefix sum is serial, so every thread policy produces an identical
/// curve.
///
/// # Errors
///
/// Returns [`PredError::InvalidInput`] for empty or mismatched inputs or
/// when a class is absent.
pub fn threshold_sweep_with(
    truth: &[f32],
    scores: &[f32],
    threads: parkit::Threads,
) -> Result<Vec<ThresholdPoint>> {
    threshold_sweep_observed(truth, scores, threads, &mut obskit::Recorder::null())
}

/// [`threshold_sweep_with`] that additionally records sweep progress:
/// samples scanned, tie-groups (= emitted curve points), and a
/// `tuning.sweep` span into `rec`. Recording never changes the curve.
///
/// # Errors
///
/// Same conditions as [`threshold_sweep_with`].
pub fn threshold_sweep_observed(
    truth: &[f32],
    scores: &[f32],
    threads: parkit::Threads,
    rec: &mut obskit::Recorder,
) -> Result<Vec<ThresholdPoint>> {
    if truth.len() != scores.len() || truth.is_empty() {
        return Err(PredError::InvalidInput {
            reason: format!(
                "need equal non-empty truth/scores, got {} and {}",
                truth.len(),
                scores.len()
            ),
        });
    }
    let total_pos: u64 = truth.iter().filter(|&&t| t == 1.0).count() as u64;
    let total = truth.len() as u64;
    if total_pos == 0 || total_pos == total {
        return Err(PredError::InvalidInput {
            reason: "threshold sweep needs both classes".into(),
        });
    }
    // Sort by descending score; walking down the list moves the threshold
    // down, turning one more sample positive at a time.
    let mut order: Vec<usize> = (0..truth.len()).collect();
    order.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    // Tie-group boundaries: all samples with the same score flip together.
    let mut groups: Vec<(usize, usize)> = Vec::new();
    let mut i = 0;
    while i < order.len() {
        let score = scores[order[i]];
        let start = i;
        while i < order.len() && scores[order[i]] == score {
            i += 1;
        }
        groups.push((start, i));
    }

    let span = rec.span_start("tuning.sweep");
    rec.incr("tuning.sweep.samples", total);
    rec.incr("tuning.sweep.points", groups.len() as u64);

    let threads = if groups.len() < PAR_SWEEP_MIN_GROUPS {
        parkit::Threads::Serial
    } else {
        threads
    };

    // Pass 1 (parallel): per-group positive/total counts — exact integers,
    // so summation order cannot matter.
    let counts: Vec<(u64, u64)> = parkit::par_map(threads, &groups, |&(s, e)| {
        let pos = order[s..e].iter().filter(|&&i| truth[i] == 1.0).count() as u64;
        (pos, (e - s) as u64)
    });

    // Pass 2 (serial): prefix sums give cumulative tp / predicted-positive
    // at the end of each group.
    let mut prefix = Vec::with_capacity(groups.len());
    let mut tp = 0u64;
    let mut predicted_pos = 0u64;
    for &(pos, n) in &counts {
        tp += pos;
        predicted_pos += n;
        prefix.push((tp, predicted_pos));
    }

    // Pass 3 (parallel): emit the metric point of each group.
    let mut out = parkit::par_map_indexed(threads, &groups, |gi, &(s, _)| {
        let (tp, predicted_pos) = prefix[gi];
        let precision = tp as f64 / predicted_pos as f64;
        let recall = tp as f64 / total_pos as f64;
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        ThresholdPoint {
            threshold: scores[order[s]],
            metrics: Prf {
                precision,
                recall,
                f1,
            },
        }
    });
    out.reverse(); // ascending thresholds
    rec.span_end(span);
    Ok(out)
}

/// The threshold maximising F1.
///
/// # Errors
///
/// Same conditions as [`threshold_sweep`].
pub fn best_f1_threshold(truth: &[f32], scores: &[f32]) -> Result<ThresholdPoint> {
    let sweep = threshold_sweep(truth, scores)?;
    sweep
        .into_iter()
        .max_by(|a, b| {
            a.metrics
                .f1
                .partial_cmp(&b.metrics.f1)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .ok_or_else(|| PredError::InvalidInput {
            reason: "threshold sweep produced no candidate points".into(),
        })
}

/// The lowest threshold (maximum recall) whose precision is at least
/// `floor`. Returns `None` when no threshold meets the floor.
///
/// # Errors
///
/// Same conditions as [`threshold_sweep`]; additionally rejects a floor
/// outside `(0, 1]`.
pub fn max_recall_at_precision(
    truth: &[f32],
    scores: &[f32],
    floor: f64,
) -> Result<Option<ThresholdPoint>> {
    if !(floor > 0.0 && floor <= 1.0) {
        return Err(PredError::InvalidInput {
            reason: format!("precision floor must be in (0, 1], got {floor}"),
        });
    }
    let sweep = threshold_sweep(truth, scores)?;
    Ok(sweep
        .into_iter()
        .filter(|p| p.metrics.precision >= floor)
        .max_by(|a, b| {
            a.metrics
                .recall
                .partial_cmp(&b.metrics.recall)
                .unwrap_or(std::cmp::Ordering::Equal)
        }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> (Vec<f32>, Vec<f32>) {
        // scores: positives cluster high with one hard negative at 0.9.
        let truth = vec![1.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let scores = vec![0.95, 0.8, 0.6, 0.9, 0.4, 0.3, 0.2, 0.1];
        (truth, scores)
    }

    #[test]
    fn sweep_covers_all_distinct_scores() {
        let (truth, scores) = toy();
        let sweep = threshold_sweep(&truth, &scores).unwrap();
        assert_eq!(sweep.len(), 8);
        // Ascending thresholds; recall non-increasing along them.
        for w in sweep.windows(2) {
            assert!(w[0].threshold < w[1].threshold);
            assert!(w[0].metrics.recall >= w[1].metrics.recall);
        }
        // Lowest threshold predicts everything positive: recall 1.
        assert_eq!(sweep[0].metrics.recall, 1.0);
    }

    #[test]
    fn best_f1_beats_midpoint() {
        let (truth, scores) = toy();
        let best = best_f1_threshold(&truth, &scores).unwrap();
        // At threshold 0.5: tp=3 (0.95, 0.8, 0.6), fp=1 (0.9) -> P=0.75,
        // R=1.0, F1=6/7. The sweep must do at least as well.
        assert!(best.metrics.f1 >= 6.0 / 7.0 - 1e-9);
    }

    #[test]
    fn precision_floor_query() {
        let (truth, scores) = toy();
        // Precision 1.0 requires excluding the 0.9 negative: threshold
        // above 0.9 keeps only the 0.95 positive.
        let p = max_recall_at_precision(&truth, &scores, 1.0)
            .unwrap()
            .unwrap();
        assert!(p.threshold > 0.9);
        assert!((p.metrics.recall - 1.0 / 3.0).abs() < 1e-9);
        // An unreachable floor on inverted scores returns None.
        let inverted: Vec<f32> = scores.iter().map(|s| 1.0 - s).collect();
        let q = max_recall_at_precision(&truth, &inverted, 0.99).unwrap();
        assert!(q.is_none() || q.unwrap().metrics.precision >= 0.99);
    }

    #[test]
    fn ties_flip_together() {
        let truth = vec![1.0, 0.0, 1.0, 0.0];
        let scores = vec![0.5, 0.5, 0.9, 0.1];
        let sweep = threshold_sweep(&truth, &scores).unwrap();
        // Distinct scores: 0.1, 0.5, 0.9 -> 3 points.
        assert_eq!(sweep.len(), 3);
    }

    #[test]
    fn observed_sweep_matches_plain_and_counts_points() {
        let (truth, scores) = toy();
        let plain = threshold_sweep(&truth, &scores).unwrap();
        let mut rec = obskit::Recorder::new();
        let observed =
            threshold_sweep_observed(&truth, &scores, parkit::Threads::Serial, &mut rec).unwrap();
        assert_eq!(plain, observed);
        assert_eq!(rec.counter("tuning.sweep.samples"), truth.len() as u64);
        assert_eq!(rec.counter("tuning.sweep.points"), plain.len() as u64);
        assert_eq!(rec.span("tuning.sweep").unwrap().count, 1);
    }

    #[test]
    fn validates_inputs() {
        assert!(threshold_sweep(&[], &[]).is_err());
        assert!(threshold_sweep(&[1.0], &[0.5, 0.4]).is_err());
        assert!(threshold_sweep(&[1.0, 1.0], &[0.5, 0.4]).is_err());
        let (truth, scores) = toy();
        assert!(max_recall_at_precision(&truth, &scores, 0.0).is_err());
        assert!(max_recall_at_precision(&truth, &scores, 1.5).is_err());
    }
}
