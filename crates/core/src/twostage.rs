//! The TwoStage prediction method (paper §VI-C2, Fig. 9).
//!
//! Stage 1 checks whether a sample's node has ever been seen to error
//! (using history observable at the end of the training window); only
//! samples from such *offender nodes* reach stage 2, where a trained
//! binary classifier decides. Samples filtered out at stage 1 are
//! predicted SBE-free.
//!
//! Benefits, exactly as the paper argues: the stage-2 training set is much
//! smaller (lower overhead), free of the noise of never-erroring nodes,
//! and far better balanced (the ~50:1 raw imbalance becomes a few:1).
//! The cost is that errors on previously clean nodes are always missed —
//! rare, and healed by periodic retraining.

use crate::datasets::DsSplit;
use crate::features::{FeatureExtractor, FeatureSpec};
use crate::samples::{build_samples, in_window, labels, LabeledSample};
use crate::{PredError, Result};
use mlkit::dataset::Dataset;
use mlkit::metrics::ConfusionMatrix;
use mlkit::model::Classifier;
use mlkit::scaler::StandardScaler;
use obskit::{Clock, NullClock, Recorder};
use std::collections::BTreeSet;
use std::time::Duration;
use titan_sim::trace::TraceSet;

/// A fully prepared split: extracted and standardised stage-2 feature
/// datasets plus the bookkeeping to map stage-2 predictions back onto the
/// full test set. Prepare once, then evaluate many classifiers on it.
#[derive(Debug)]
pub struct Prepared {
    /// Standardised stage-2 training dataset.
    pub train: Dataset,
    /// Standardised stage-2 test dataset.
    pub test: Dataset,
    /// Every test sample (stage-1 negatives included), in order.
    pub test_samples: Vec<LabeledSample>,
    /// Indices into `test_samples` that reached stage 2.
    pub stage2_test_idx: Vec<usize>,
    /// All training-window samples (for baselines/diagnostics).
    pub train_samples: Vec<LabeledSample>,
    /// The stage-2 test samples (subset of `test_samples` at
    /// `stage2_test_idx`), kept for feature re-extraction variants.
    pub stage2_test_samples: Vec<LabeledSample>,
    /// The scaler fitted on the stage-2 training features.
    pub scaler: StandardScaler,
    /// Number of offender nodes at the stage-1 cut-off.
    pub n_offenders: usize,
    /// Name of the split this was prepared from.
    pub split_name: String,
}

impl Prepared {
    /// Fraction of test samples that reach stage 2.
    pub fn stage2_fraction(&self) -> f64 {
        if self.test_samples.is_empty() {
            return 0.0;
        }
        self.stage2_test_idx.len() as f64 / self.test_samples.len() as f64
    }
}

/// The outcome of running one classifier through the TwoStage method.
#[derive(Debug, Clone)]
pub struct TwoStageOutcome {
    /// Hard predictions over *all* test samples.
    pub predictions: Vec<f32>,
    /// Positive-class probabilities over all test samples (stage-1
    /// negatives get probability 0).
    pub probabilities: Vec<f32>,
    /// Ground truth for all test samples.
    pub truth: Vec<f32>,
    /// The test samples, aligned with the vectors above.
    pub test_samples: Vec<LabeledSample>,
    /// Time of the classifier `fit` call only, as measured by the
    /// [`Clock`] handed to [`run_classifier_observed`]. Under the
    /// deterministic default ([`NullClock`]) this is always zero; the
    /// `repro` binary injects a real clock to fill the paper's
    /// train-time columns.
    pub train_time: Duration,
    /// Stage-2 training-set size.
    pub n_stage2_train: usize,
    /// Classifier name.
    pub model_name: &'static str,
}

impl TwoStageOutcome {
    /// Confusion matrix of the SBE (positive) class over all test samples.
    ///
    /// # Errors
    ///
    /// Propagates metric-validation errors (never expected here).
    pub fn confusion(&self) -> Result<ConfusionMatrix> {
        Ok(ConfusionMatrix::from_predictions(
            &self.truth,
            &self.predictions,
        )?)
    }
}

/// Prepares a split for stage-2 learning: computes the offender set,
/// filters samples, extracts features, and standardises them.
///
/// # Errors
///
/// Returns [`PredError::InvalidInput`] when the stage-2 training set is
/// empty or single-class, and propagates extraction errors.
pub fn prepare(trace: &TraceSet, split: &DsSplit, spec: &FeatureSpec) -> Result<Prepared> {
    prepare_observed(trace, split, spec, &mut Recorder::null())
}

/// Like [`prepare`], but records stage-1 metrics: offender count, window
/// sizes, the stage-2 survivor counts, and the stage-1 filter rate.
///
/// # Errors
///
/// See [`prepare`].
pub fn prepare_observed(
    trace: &TraceSet,
    split: &DsSplit,
    spec: &FeatureSpec,
    rec: &mut Recorder,
) -> Result<Prepared> {
    let all = build_samples(trace)?;
    let fx = FeatureExtractor::new(trace, &all)?;
    prepare_with_extractor_observed(&fx, &all, split, spec, rec)
}

/// Like [`prepare`], but reuses an existing extractor and sample list —
/// the fast path when sweeping feature specs or splits over one trace.
///
/// # Errors
///
/// See [`prepare`].
pub fn prepare_with_extractor(
    fx: &FeatureExtractor<'_>,
    all_samples: &[LabeledSample],
    split: &DsSplit,
    spec: &FeatureSpec,
) -> Result<Prepared> {
    prepare_with_extractor_observed(fx, all_samples, split, spec, &mut Recorder::null())
}

/// [`prepare_with_extractor`] with stage-1 metrics (see
/// [`prepare_observed`]).
///
/// # Errors
///
/// See [`prepare`].
pub fn prepare_with_extractor_observed(
    fx: &FeatureExtractor<'_>,
    all_samples: &[LabeledSample],
    split: &DsSplit,
    spec: &FeatureSpec,
    rec: &mut Recorder,
) -> Result<Prepared> {
    let span = rec.span_start("twostage.prepare");
    let (train_start, train_end) = split.train_window();
    let (test_start, test_end) = split.test_window();
    let train_samples = in_window(all_samples, train_start, train_end);
    let test_samples = in_window(all_samples, test_start, test_end);
    if train_samples.is_empty() || test_samples.is_empty() {
        return Err(PredError::InvalidInput {
            reason: format!(
                "split {} has empty windows (train {} test {})",
                split.name(),
                train_samples.len(),
                test_samples.len()
            ),
        });
    }

    // Stage 1: offender nodes as of the end of the training window.
    let offenders: BTreeSet<u32> = fx
        .history()
        .offender_nodes_before(train_end)
        .into_iter()
        .map(|n| n.0)
        .collect();

    let stage2_train: Vec<LabeledSample> = train_samples
        .iter()
        .filter(|s| offenders.contains(&s.node.0))
        .copied()
        .collect();
    let stage2_test_idx: Vec<usize> = test_samples
        .iter()
        .enumerate()
        .filter(|(_, s)| offenders.contains(&s.node.0))
        .map(|(i, _)| i)
        .collect();
    if stage2_train.is_empty() {
        return Err(PredError::InvalidInput {
            reason: "stage-2 training set is empty (no offender nodes in training window)".into(),
        });
    }

    let train_raw = fx.extract_observed(&stage2_train, spec, rec)?;
    let scaler = StandardScaler::fit(&train_raw)?;
    let train = scaler.transform(&train_raw)?;

    let stage2_test_samples: Vec<LabeledSample> =
        stage2_test_idx.iter().map(|&i| test_samples[i]).collect();
    let test = if stage2_test_samples.is_empty() {
        // Nothing reaches stage 2; produce an empty dataset placeholder by
        // reusing the train schema with zero rows via select.
        train.select(&[])
    } else {
        scaler.transform(&fx.extract_observed(&stage2_test_samples, spec, rec)?)?
    };

    rec.incr("twostage.offender_nodes", offenders.len() as u64);
    rec.incr("twostage.train_samples", train_samples.len() as u64);
    rec.incr("twostage.test_samples", test_samples.len() as u64);
    rec.incr("twostage.stage2_train_samples", train.len() as u64);
    rec.incr("twostage.stage2_test_samples", stage2_test_idx.len() as u64);
    // Stage-1 filter rate: fraction of test samples predicted SBE-free
    // without ever reaching the classifier.
    rec.gauge(
        "twostage.stage1_filter_rate",
        1.0 - stage2_test_idx.len() as f64 / test_samples.len() as f64,
    );
    rec.span_end(span);

    Ok(Prepared {
        train,
        test,
        test_samples,
        stage2_test_idx,
        train_samples,
        stage2_test_samples,
        scaler,
        n_offenders: offenders.len(),
        split_name: split.name().to_string(),
    })
}

/// Runs one classifier on a prepared split.
///
/// # Errors
///
/// Propagates classifier fit/predict errors.
pub fn run_classifier<C: Classifier>(
    prepared: &Prepared,
    classifier: &mut C,
) -> Result<TwoStageOutcome> {
    run_classifier_observed(prepared, classifier, &mut Recorder::null(), &NullClock)
}

/// Like [`run_classifier`], but records stage-2 metrics (training-loop
/// counters via [`Classifier::fit_observed`], a `"twostage.fit"` span,
/// prediction counts) and measures `train_time` on the injected [`Clock`].
///
/// With a null recorder and the [`NullClock`] this is exactly
/// [`run_classifier`]; the instrumentation-equivalence suite holds the
/// two paths to byte-identical predictions.
///
/// # Errors
///
/// Propagates classifier fit/predict errors.
pub fn run_classifier_observed<C: Classifier>(
    prepared: &Prepared,
    classifier: &mut C,
    rec: &mut Recorder,
    clock: &dyn Clock,
) -> Result<TwoStageOutcome> {
    let span = rec.span_start("twostage.fit");
    let t0 = clock.now_nanos();
    classifier.fit_observed(&prepared.train, rec)?;
    let train_time = Duration::from_nanos(clock.now_nanos().saturating_sub(t0));
    rec.span_end(span);

    let n = prepared.test_samples.len();
    let mut predictions = vec![0.0f32; n];
    let mut probabilities = vec![0.0f32; n];
    if !prepared.stage2_test_idx.is_empty() {
        let proba = classifier.predict_proba(&prepared.test)?;
        let thresh = classifier.threshold();
        for (&idx, &p) in prepared.stage2_test_idx.iter().zip(&proba) {
            probabilities[idx] = p;
            predictions[idx] = if p >= thresh { 1.0 } else { 0.0 };
        }
    }
    rec.incr("twostage.predictions", n as u64);
    rec.incr(
        "twostage.stage2_predictions",
        prepared.stage2_test_idx.len() as u64,
    );
    Ok(TwoStageOutcome {
        predictions,
        probabilities,
        truth: labels(&prepared.test_samples),
        test_samples: prepared.test_samples.clone(),
        train_time,
        n_stage2_train: prepared.train.len(),
        model_name: classifier.name(),
    })
}

/// The TwoStage method bundled with a classifier and feature spec — the
/// convenient one-shot API.
#[derive(Debug)]
pub struct TwoStage<C> {
    classifier: C,
    spec: FeatureSpec,
}

impl<C: Classifier> TwoStage<C> {
    /// Creates a TwoStage pipeline.
    pub fn new(classifier: C, spec: FeatureSpec) -> TwoStage<C> {
        TwoStage { classifier, spec }
    }

    /// The feature spec in use.
    pub fn spec(&self) -> &FeatureSpec {
        &self.spec
    }

    /// Prepares the split, trains the classifier, and evaluates it.
    ///
    /// # Errors
    ///
    /// Propagates preparation and classifier errors.
    pub fn run(&mut self, trace: &TraceSet, split: &DsSplit) -> Result<TwoStageOutcome> {
        let prepared = prepare(trace, split, &self.spec)?;
        run_classifier(&prepared, &mut self.classifier)
    }

    /// Consumes the pipeline, returning the (possibly fitted) classifier.
    pub fn into_classifier(self) -> C {
        self.classifier
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlkit::gbdt::Gbdt;
    use mlkit::linear::LogisticRegression;
    use titan_sim::config::SimConfig;
    use titan_sim::engine::generate;

    fn trace() -> TraceSet {
        // Seed 13: under the in-repo RNG streams (see DESIGN.md "Parallel
        // execution & determinism"), seed 3's DS1 test window holds zero
        // positive samples, making F1 assertions degenerate.
        generate(&SimConfig::tiny(13)).unwrap()
    }

    #[test]
    fn prepare_filters_to_offenders_and_balances() {
        let t = trace();
        let split = DsSplit::ds1(&t).unwrap();
        let p = prepare(&t, &split, &FeatureSpec::all()).unwrap();
        assert!(p.n_offenders > 0);
        assert!(!p.train.is_empty());
        // Stage-2 training imbalance must be far below the raw imbalance.
        let raw_pos = p.train_samples.iter().filter(|s| s.label).count().max(1);
        let raw_ratio = (p.train_samples.len() - raw_pos) as f64 / raw_pos as f64;
        assert!(
            p.train.imbalance_ratio() < raw_ratio,
            "stage2 {} vs raw {raw_ratio}",
            p.train.imbalance_ratio()
        );
        // Stage-2 test subset is a minority of all test samples.
        assert!(p.stage2_fraction() < 0.9);
    }

    #[test]
    fn stage1_negatives_predicted_free() {
        let t = trace();
        let split = DsSplit::ds1(&t).unwrap();
        let p = prepare(&t, &split, &FeatureSpec::all()).unwrap();
        let mut model = Gbdt::new().n_trees(20).min_samples_leaf(2);
        let out = run_classifier(&p, &mut model).unwrap();
        let stage2: BTreeSet<usize> = p.stage2_test_idx.iter().copied().collect();
        for (i, &pred) in out.predictions.iter().enumerate() {
            if !stage2.contains(&i) {
                assert_eq!(pred, 0.0);
                assert_eq!(out.probabilities[i], 0.0);
            }
        }
        assert_eq!(out.model_name, "GBDT");
        // The deterministic default clock measures nothing.
        assert_eq!(out.train_time.as_nanos(), 0);
    }

    #[test]
    fn observed_run_matches_plain_and_records_pipeline_metrics() {
        let t = trace();
        let split = DsSplit::ds1(&t).unwrap();
        let spec = FeatureSpec::all();
        let plain_prep = prepare(&t, &split, &spec).unwrap();
        let plain = run_classifier(
            &plain_prep,
            &mut Gbdt::new().n_trees(20).min_samples_leaf(2),
        )
        .unwrap();

        // A clock that jumps 7ns on every read: proves the fit is
        // bracketed by exactly two reads without touching real time.
        struct TickingClock(std::sync::atomic::AtomicU64);
        impl Clock for TickingClock {
            fn now_nanos(&self) -> u64 {
                self.0.fetch_add(7, std::sync::atomic::Ordering::SeqCst)
            }
        }

        let mut rec = Recorder::new();
        let clock = TickingClock(std::sync::atomic::AtomicU64::new(0));
        let prep = prepare_observed(&t, &split, &spec, &mut rec).unwrap();
        let out = run_classifier_observed(
            &prep,
            &mut Gbdt::new().n_trees(20).min_samples_leaf(2),
            &mut rec,
            &clock,
        )
        .unwrap();

        // Instrumentation cannot perturb results.
        assert_eq!(out.predictions, plain.predictions);
        assert_eq!(out.probabilities, plain.probabilities);
        // The injected clock was read exactly twice around fit.
        assert_eq!(out.train_time.as_nanos(), 7);

        // Stage-1 metrics reconcile with the Prepared bookkeeping.
        assert_eq!(
            rec.counter("twostage.offender_nodes"),
            prep.n_offenders as u64
        );
        assert_eq!(
            rec.counter("twostage.stage2_test_samples"),
            prep.stage2_test_idx.len() as u64
        );
        let filter_rate = rec.gauge_value("twostage.stage1_filter_rate").unwrap();
        assert!((filter_rate - (1.0 - prep.stage2_fraction())).abs() < 1e-12);
        // Training-loop counters flow up from the classifier.
        assert_eq!(rec.counter("mlkit.gbdt.boosting_rounds"), 20);
        assert!(rec.span("twostage.fit").unwrap().total_ticks > 0);
        assert!(rec.counter("features.samples_extracted") > 0);
    }

    #[test]
    fn one_shot_api_runs() {
        let t = trace();
        let split = DsSplit::ds1(&t).unwrap();
        let mut ts = TwoStage::new(
            Gbdt::new().n_trees(20).min_samples_leaf(2),
            FeatureSpec::all(),
        );
        let out = ts.run(&t, &split).unwrap();
        let cm = out.confusion().unwrap();
        assert_eq!(cm.total() as usize, out.test_samples.len());
        // The learned model should beat a coin flip on F1 for this seed.
        assert!(cm.f1() > 0.1, "f1 {}", cm.f1());
    }

    #[test]
    fn prepared_reusable_across_classifiers() {
        let t = trace();
        let split = DsSplit::ds1(&t).unwrap();
        let p = prepare(&t, &split, &FeatureSpec::all()).unwrap();
        let mut gbdt = Gbdt::new().n_trees(10).min_samples_leaf(2);
        let mut lr = LogisticRegression::new().epochs(20);
        let a = run_classifier(&p, &mut gbdt).unwrap();
        let b = run_classifier(&p, &mut lr).unwrap();
        assert_eq!(a.truth, b.truth);
        assert_eq!(a.test_samples.len(), b.test_samples.len());
    }

    #[test]
    fn outcome_vectors_aligned() {
        let t = trace();
        let split = DsSplit::ds1(&t).unwrap();
        let mut ts = TwoStage::new(
            Gbdt::new().n_trees(10).min_samples_leaf(2),
            FeatureSpec::all(),
        );
        let out = ts.run(&t, &split).unwrap();
        assert_eq!(out.predictions.len(), out.truth.len());
        assert_eq!(out.probabilities.len(), out.truth.len());
        assert_eq!(out.test_samples.len(), out.truth.len());
        for (&p, &q) in out.predictions.iter().zip(&out.probabilities) {
            assert!(p == 0.0 || p == 1.0);
            assert!((0.0..=1.0).contains(&q));
        }
    }
}
