use std::fmt;

/// Errors produced by the prediction pipeline.
#[derive(Debug)]
#[non_exhaustive]
pub enum PredError {
    /// An underlying simulator error.
    Sim(titan_sim::SimError),
    /// An underlying ML error.
    Ml(mlkit::MlError),
    /// The requested split does not fit the trace horizon.
    SplitOutOfRange {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// A pipeline stage received unusable data.
    InvalidInput {
        /// What went wrong.
        reason: String,
    },
}

impl fmt::Display for PredError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredError::Sim(e) => write!(f, "simulator error: {e}"),
            PredError::Ml(e) => write!(f, "ml error: {e}"),
            PredError::SplitOutOfRange { reason } => {
                write!(f, "split out of range: {reason}")
            }
            PredError::InvalidInput { reason } => write!(f, "invalid input: {reason}"),
        }
    }
}

impl std::error::Error for PredError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PredError::Sim(e) => Some(e),
            PredError::Ml(e) => Some(e),
            _ => None,
        }
    }
}

impl From<titan_sim::SimError> for PredError {
    fn from(e: titan_sim::SimError) -> PredError {
        PredError::Sim(e)
    }
}

impl From<mlkit::MlError> for PredError {
    fn from(e: mlkit::MlError) -> PredError {
        PredError::Ml(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn wraps_sources() {
        let e = PredError::from(mlkit::MlError::EmptyDataset);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("ml error"));
        let e = PredError::from(titan_sim::SimError::UnknownEntity {
            kind: "node",
            id: 1,
        });
        assert!(e.source().is_some());
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PredError>();
    }
}
