//! The paper's evaluation splits (§VII-A).
//!
//! Three pairs of training/testing windows slide along the trace: each
//! training set spans 3.5 months and the following two weeks are tested.
//! For traces shorter than the paper's 150 days (e.g. unit-test configs),
//! the windows scale proportionally while preserving the ~70/10 ratio.

use crate::{PredError, Result};
use serde::{Deserialize, Serialize};
use titan_sim::config::MINUTES_PER_DAY;
use titan_sim::trace::TraceSet;

/// One training/testing window pair.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DsSplit {
    name: String,
    train_start_min: u64,
    train_end_min: u64,
    test_end_min: u64,
}

/// Paper window lengths, in days, for a 150-day trace.
const PAPER_TRACE_DAYS: u64 = 150;
const PAPER_TRAIN_DAYS: u64 = 105; // 3.5 months
const PAPER_TEST_DAYS: u64 = 14; // two weeks

impl DsSplit {
    /// Creates a split from explicit day offsets.
    ///
    /// # Errors
    ///
    /// Returns [`PredError::SplitOutOfRange`] when the windows are empty
    /// or exceed the trace horizon.
    pub fn from_days(
        name: impl Into<String>,
        trace: &TraceSet,
        train_start_day: u64,
        train_days: u64,
        test_days: u64,
    ) -> Result<DsSplit> {
        let horizon = trace.config().total_minutes();
        if train_days == 0 || test_days == 0 {
            return Err(PredError::SplitOutOfRange {
                reason: "train and test windows must be non-empty".into(),
            });
        }
        let train_start_min = train_start_day * MINUTES_PER_DAY;
        let train_end_min = train_start_min + train_days * MINUTES_PER_DAY;
        let test_end_min = train_end_min + test_days * MINUTES_PER_DAY;
        if test_end_min > horizon {
            return Err(PredError::SplitOutOfRange {
                reason: format!(
                    "split ends at minute {test_end_min} but the trace has {horizon} minutes"
                ),
            });
        }
        Ok(DsSplit {
            name: name.into(),
            train_start_min,
            train_end_min,
            test_end_min,
        })
    }

    /// The `k`-th sliding split (1-based), scaled to the trace length.
    ///
    /// # Errors
    ///
    /// Returns [`PredError::SplitOutOfRange`] for `k` outside `1..=3` or a
    /// trace too short to hold the windows.
    pub fn ds(trace: &TraceSet, k: u64) -> Result<DsSplit> {
        if !(1..=3).contains(&k) {
            return Err(PredError::SplitOutOfRange {
                reason: format!("dataset index must be 1..=3, got {k}"),
            });
        }
        let days = trace.config().days as u64;
        let train_days = (days * PAPER_TRAIN_DAYS / PAPER_TRACE_DAYS).max(5);
        let test_days = (days * PAPER_TEST_DAYS / PAPER_TRACE_DAYS).max(2);
        let slack =
            days.checked_sub(train_days + test_days)
                .ok_or_else(|| PredError::SplitOutOfRange {
                    reason: format!(
                    "trace of {days} days cannot hold train {train_days} + test {test_days} days"
                ),
                })?;
        let start = slack * (k - 1) / 2;
        DsSplit::from_days(format!("DS{k}"), trace, start, train_days, test_days)
    }

    /// Convenience: DS1.
    ///
    /// # Errors
    ///
    /// See [`DsSplit::ds`].
    pub fn ds1(trace: &TraceSet) -> Result<DsSplit> {
        DsSplit::ds(trace, 1)
    }

    /// Convenience: DS2.
    ///
    /// # Errors
    ///
    /// See [`DsSplit::ds`].
    pub fn ds2(trace: &TraceSet) -> Result<DsSplit> {
        DsSplit::ds(trace, 2)
    }

    /// Convenience: DS3.
    ///
    /// # Errors
    ///
    /// See [`DsSplit::ds`].
    pub fn ds3(trace: &TraceSet) -> Result<DsSplit> {
        DsSplit::ds(trace, 3)
    }

    /// The split's display name (`DS1`…).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Training window `[start, end)` in minutes.
    pub fn train_window(&self) -> (u64, u64) {
        (self.train_start_min, self.train_end_min)
    }

    /// Testing window `[start, end)` in minutes.
    pub fn test_window(&self) -> (u64, u64) {
        (self.train_end_min, self.test_end_min)
    }

    /// End of the training window — the instant at which observable
    /// history is frozen for stage-1 decisions.
    pub fn train_end_min(&self) -> u64 {
        self.train_end_min
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use titan_sim::config::SimConfig;
    use titan_sim::engine::generate;

    fn trace() -> TraceSet {
        generate(&SimConfig::tiny(3)).unwrap()
    }

    #[test]
    fn three_splits_fit_and_slide() {
        let t = trace();
        let d1 = DsSplit::ds1(&t).unwrap();
        let d2 = DsSplit::ds2(&t).unwrap();
        let d3 = DsSplit::ds3(&t).unwrap();
        assert!(
            d1.train_window().0 < d2.train_window().0 || d1.train_window().0 == d2.train_window().0
        );
        assert!(d2.test_window().1 <= d3.test_window().1);
        assert!(d3.test_window().1 <= t.config().total_minutes());
        // Windows maintain train/test ordering.
        for d in [&d1, &d2, &d3] {
            let (ts, te) = d.train_window();
            let (vs, ve) = d.test_window();
            assert!(ts < te);
            assert_eq!(te, vs);
            assert!(vs < ve);
        }
        assert_eq!(d1.name(), "DS1");
    }

    #[test]
    fn paper_scale_windows() {
        let t = generate(&SimConfig::tiny(1)).unwrap();
        // tiny = 30 days -> train 21 days, test 2.8->2 days (floored by
        // integer division), scaled from 105/14 at 150.
        let d1 = DsSplit::ds1(&t).unwrap();
        let (ts, te) = d1.train_window();
        assert_eq!(ts, 0);
        assert_eq!((te - ts) / MINUTES_PER_DAY, 21);
    }

    #[test]
    fn invalid_k_rejected() {
        let t = trace();
        assert!(DsSplit::ds(&t, 0).is_err());
        assert!(DsSplit::ds(&t, 4).is_err());
    }

    #[test]
    fn out_of_horizon_rejected() {
        let t = trace();
        assert!(DsSplit::from_days("X", &t, 0, 400, 14).is_err());
        assert!(DsSplit::from_days("X", &t, 0, 0, 14).is_err());
        assert!(DsSplit::from_days("X", &t, 0, 14, 0).is_err());
    }

    #[test]
    fn explicit_days_work() {
        let t = trace();
        let d = DsSplit::from_days("custom", &t, 2, 10, 3).unwrap();
        assert_eq!(
            d.train_window(),
            (2 * MINUTES_PER_DAY, 12 * MINUTES_PER_DAY)
        );
        assert_eq!(
            d.test_window(),
            (12 * MINUTES_PER_DAY, 15 * MINUTES_PER_DAY)
        );
        assert_eq!(d.train_end_min(), 12 * MINUTES_PER_DAY);
    }
}
