//! Forecast-driven features — the paper's "second approach" (§VI-A,
//! §VIII).
//!
//! Some features — the GPU temperature/power statistics *during* the
//! target run — are not known before the run starts. The paper's first
//! approach predicts at run end (all features exact); the second forecasts
//! those features with time-series models and feeds the forecasts into the
//! trained classifier, enabling prediction *before* execution.
//!
//! [`forecast_run_stats`] fits an AR(p) model (Yule-Walker) to the
//! pre-run telemetry of each sample and rolls it forward over the run
//! duration; [`apply_forecast_tp`] swaps the forecast statistics into an
//! extracted feature dataset so the same trained model can consume them.

use crate::features::FeatureSpec;
use crate::samples::LabeledSample;
use crate::{PredError, Result};
use mlkit::dataset::Dataset;
use mlkit::matrix::Matrix;
use titan_sim::engine::TelemetryQueryEngine;
use titan_sim::telemetry::{window_stats, WindowStats};
use tscast::ar::fit_best_order;
use tscast::smooth::Ewma;
use tscast::Forecaster;

/// How far before the run start telemetry is observed for forecasting.
pub const FORECAST_LOOKBACK_MIN: u64 = 120;

/// Maximum AR order tried per series.
const MAX_AR_ORDER: usize = 8;

/// Forecast [`WindowStats`] of one series over `horizon` future steps,
/// given its observed history: AR(p) with AIC order selection, falling
/// back to EWMA for short or degenerate histories.
///
/// The forecast mean path gives `mean`/`diff_*`; the reported `std` blends
/// the path's spread with the AR innovation standard deviation (a pure
/// mean path would understate run variability).
pub fn forecast_series_stats(history: &[f32], horizon: usize) -> WindowStats {
    if history.is_empty() || horizon == 0 {
        return WindowStats::default();
    }
    let hist: Vec<f64> = history.iter().map(|&v| v as f64).collect();
    let (path, innovation_std) = match fit_best_order(&hist, MAX_AR_ORDER) {
        Ok(model) => {
            // Guarded: `history` was checked non-empty at entry.
            let flat = hist.last().copied().unwrap_or_default();
            let path = model
                .forecast(&hist, horizon)
                .unwrap_or_else(|_| vec![flat; horizon]);
            (path, model.innovation_variance().max(0.0).sqrt())
        }
        Err(_) => {
            // Constant/short history: flat EWMA forecast, no innovations.
            let level = Ewma::new(0.3)
                .and_then(|e| e.forecast(&hist, horizon))
                .unwrap_or_else(|_| vec![hist[0]; horizon]);
            (level, 0.0)
        }
    };
    let path_f32: Vec<f32> = path.iter().map(|&v| v as f32).collect();
    let mut stats = window_stats(&path_f32);
    // Blend in innovation noise so std is not artificially collapsed.
    let blended = ((stats.std as f64).powi(2) + innovation_std.powi(2)).sqrt();
    stats.std = blended as f32;
    stats.diff_std = ((stats.diff_std as f64).powi(2) + innovation_std.powi(2)).sqrt() as f32;
    stats
}

/// Per-sample forecast statistics for GPU temperature and power.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunForecast {
    /// Forecast temperature statistics over the run window.
    pub temp: WindowStats,
    /// Forecast power statistics over the run window.
    pub power: WindowStats,
}

/// Forecasts run-window temperature/power statistics for every sample.
///
/// # Errors
///
/// Propagates telemetry query errors.
pub fn forecast_run_stats(
    engine: &TelemetryQueryEngine<'_>,
    samples: &[LabeledSample],
) -> Result<Vec<RunForecast>> {
    let pairs: Vec<_> = samples.iter().map(|s| (s.aprun, s.node)).collect();
    let pre = engine.query_preseries(&pairs, FORECAST_LOOKBACK_MIN)?;
    Ok(samples
        .iter()
        .zip(pre)
        .map(|(s, (temp_hist, power_hist))| {
            let horizon = s.runtime_min() as usize;
            RunForecast {
                temp: forecast_series_stats(&temp_hist, horizon),
                power: forecast_series_stats(&power_hist, horizon),
            }
        })
        .collect())
}

/// Replaces the `run_temp_*` / `run_power_*` columns of an extracted
/// (unscaled) dataset with forecast values. The dataset must have been
/// extracted with a spec whose `tp_cur` is enabled.
///
/// # Errors
///
/// Returns [`PredError::InvalidInput`] when the dataset does not contain
/// the current-run T/P columns or lengths disagree.
pub fn apply_forecast_tp(
    dataset: &Dataset,
    spec: &FeatureSpec,
    forecasts: &[RunForecast],
) -> Result<Dataset> {
    if !spec.tp_cur {
        return Err(PredError::InvalidInput {
            reason: "feature spec has no current-run temperature/power columns".into(),
        });
    }
    if forecasts.len() != dataset.len() {
        return Err(PredError::InvalidInput {
            reason: format!(
                "{} forecasts for {} samples",
                forecasts.len(),
                dataset.len()
            ),
        });
    }
    let names = dataset.feature_names();
    let col = |name: &str| -> Result<usize> {
        names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| PredError::InvalidInput {
                reason: format!("feature `{name}` missing from dataset"),
            })
    };
    let temp_base = col("run_temp_mean")?;
    let power_base = col("run_power_mean")?;

    let mut x = Matrix::zeros(dataset.len(), dataset.n_features());
    for (i, row) in dataset.x().rows_iter().enumerate() {
        let out = x.row_mut(i);
        out.copy_from_slice(row);
        let f = &forecasts[i];
        for (offset, (tv, pv)) in [
            (f.temp.mean, f.power.mean),
            (f.temp.std, f.power.std),
            (f.temp.diff_mean, f.power.diff_mean),
            (f.temp.diff_std, f.power.diff_std),
        ]
        .iter()
        .enumerate()
        {
            out[temp_base + offset] = *tv;
            out[power_base + offset] = *pv;
        }
    }
    Ok(Dataset::new(x, dataset.y().to_vec())?.with_feature_names(names.to_vec())?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureExtractor;
    use crate::samples::build_samples;
    use titan_sim::config::SimConfig;
    use titan_sim::engine::generate;

    #[test]
    fn forecast_tracks_level_of_stationary_series() {
        // History hovering around 50 with small wiggle.
        let hist: Vec<f32> = (0..120)
            .map(|t| 50.0 + ((t * 7) % 5) as f32 * 0.2 - 0.4)
            .collect();
        let stats = forecast_series_stats(&hist, 60);
        assert!((stats.mean - 50.0).abs() < 1.5, "mean {}", stats.mean);
        assert!(stats.std >= 0.0);
    }

    #[test]
    fn forecast_empty_or_zero_horizon_defaults() {
        assert_eq!(forecast_series_stats(&[], 10), WindowStats::default());
        assert_eq!(forecast_series_stats(&[1.0], 0), WindowStats::default());
    }

    #[test]
    fn forecast_constant_history_is_flat() {
        let stats = forecast_series_stats(&[42.0; 60], 30);
        assert!((stats.mean - 42.0).abs() < 1e-3);
        assert_eq!(stats.diff_mean, 0.0);
    }

    #[test]
    fn end_to_end_forecast_substitution() {
        let trace = generate(&SimConfig::tiny(3)).unwrap();
        let samples = build_samples(&trace).unwrap();
        let fx = FeatureExtractor::new(&trace, &samples).unwrap();
        let spec = FeatureSpec::all();
        let subset: Vec<_> = samples
            .iter()
            .filter(|s| s.start_min > 200)
            .take(10)
            .copied()
            .collect();
        let ds = fx.extract(&subset, &spec).unwrap();
        let forecasts = forecast_run_stats(fx.query_engine(), &subset).unwrap();
        let swapped = apply_forecast_tp(&ds, &spec, &forecasts).unwrap();
        assert_eq!(swapped.len(), ds.len());
        // The run_temp_mean column changed to the forecast value...
        let idx = ds
            .feature_names()
            .iter()
            .position(|n| n == "run_temp_mean")
            .unwrap();
        for (i, f) in forecasts.iter().enumerate() {
            assert_eq!(swapped.x().get(i, idx), f.temp.mean);
        }
        // ...and forecast means are physically sensible temperatures.
        for f in &forecasts {
            assert!((15.0..90.0).contains(&f.temp.mean), "temp {}", f.temp.mean);
        }
        // Non-TP columns are untouched.
        let app_idx = ds
            .feature_names()
            .iter()
            .position(|n| n == "app_id")
            .unwrap();
        for i in 0..ds.len() {
            assert_eq!(swapped.x().get(i, app_idx), ds.x().get(i, app_idx));
        }
    }

    #[test]
    fn apply_forecast_validates() {
        let trace = generate(&SimConfig::tiny(3)).unwrap();
        let samples = build_samples(&trace).unwrap();
        let fx = FeatureExtractor::new(&trace, &samples).unwrap();
        let spec = FeatureSpec::only_hist();
        let ds = fx.extract(&samples[..4], &spec).unwrap();
        let err = apply_forecast_tp(&ds, &spec, &[RunForecast::default(); 4]);
        assert!(err.is_err());
        let spec_all = FeatureSpec::all();
        let ds = fx.extract(&samples[..4], &spec_all).unwrap();
        let err = apply_forecast_tp(&ds, &spec_all, &[RunForecast::default(); 3]);
        assert!(err.is_err());
    }
}
