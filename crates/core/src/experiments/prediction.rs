//! Prediction experiments — the paper's §VII (Table I, Fig. 10,
//! Tables II–VI, Figs. 11–13).

use super::{ExperimentOutput, Lab, ModelKind};
use crate::baselines::{evaluate_scheme, BasicScheme};
use crate::datasets::DsSplit;
use crate::features::FeatureSpec;
use crate::report::Table;
use crate::samples::in_window;
use crate::twostage::{prepare_with_extractor, run_classifier_observed, Prepared, TwoStageOutcome};
use crate::{PredError, Result};
use mlkit::metrics::ConfusionMatrix;
use mlkit::stats::{percentile, Ecdf};
use serde_json::json;
use std::collections::BTreeMap;

/// Seed used for all experiment model builds (frozen, like the paper's
/// fixed methodology).
const MODEL_SEED: u64 = 7;

/// Prepares one split with a feature spec through the shared lab.
fn prep(lab: &Lab<'_>, split: &DsSplit, spec: &FeatureSpec) -> Result<Prepared> {
    prepare_with_extractor(lab.extractor(), lab.samples(), split, spec)
}

/// Runs one model kind on a prepared split, timing training with the
/// lab's clock (the default [`obskit::NullClock`] reports zero).
fn run_kind(lab: &Lab<'_>, prepared: &Prepared, kind: ModelKind) -> Result<TwoStageOutcome> {
    let mut model = kind.build(MODEL_SEED);
    run_classifier_observed(
        prepared,
        &mut model,
        &mut obskit::Recorder::null(),
        lab.clock(),
    )
}

/// Runs a model grid over one prepared split, fanning the kinds out
/// across the lab's worker threads. Outcomes come back in `kinds` order,
/// and every model seeds its own RNG from the frozen [`MODEL_SEED`], so
/// the results are identical to a serial loop under any thread policy
/// (see DESIGN.md "Parallel execution & determinism").
fn run_kinds(
    lab: &Lab<'_>,
    prepared: &Prepared,
    kinds: &[ModelKind],
) -> Result<Vec<TwoStageOutcome>> {
    parkit::try_par_map(lab.threads(), kinds, |&kind| run_kind(lab, prepared, kind))
}

/// Basic A's confusion matrix over a split's test window.
fn basic_a(lab: &Lab<'_>, split: &DsSplit) -> Result<ConfusionMatrix> {
    let (ts, te) = split.test_window();
    let test = in_window(lab.samples(), ts, te);
    evaluate_scheme(BasicScheme::A, lab.extractor().history(), split, &test)
}

/// Table I — precision and recall of the Random and Basic A/B/C schemes
/// for both classes, on DS1.
///
/// # Errors
///
/// Propagates scheme evaluation errors.
pub fn table1(lab: &Lab<'_>) -> Result<ExperimentOutput> {
    let split = DsSplit::ds1(lab.trace())?;
    let (ts, te) = split.test_window();
    let test = in_window(lab.samples(), ts, te);
    let mut table = Table::new([
        "Scheme",
        "SBE Precision",
        "SBE Recall",
        "Non-SBE Precision",
        "Non-SBE Recall",
    ]);
    let mut rows = Vec::new();
    for scheme in [
        BasicScheme::Random { seed: MODEL_SEED },
        BasicScheme::A,
        BasicScheme::B,
        BasicScheme::C,
    ] {
        let cm = evaluate_scheme(scheme, lab.extractor().history(), &split, &test)?;
        table.push_row([
            scheme.name().to_string(),
            format!("{:.2}", cm.precision()),
            format!("{:.2}", cm.recall()),
            format!("{:.2}", cm.precision_negative()),
            format!("{:.2}", cm.recall_negative()),
        ]);
        rows.push(json!({
            "scheme": scheme.name(),
            "sbe_precision": cm.precision(),
            "sbe_recall": cm.recall(),
            "non_sbe_precision": cm.precision_negative(),
            "non_sbe_recall": cm.recall_negative(),
        }));
    }
    Ok(ExperimentOutput {
        id: "table1".into(),
        title: "Precision and recall for basic schemes (DS1)".into(),
        text: table.render(),
        json: json!({ "rows": rows, "n_test": test.len() }),
    })
}

/// Fig. 10 — F1/precision/recall of Basic A and the four TwoStage models
/// on DS1.
///
/// # Errors
///
/// Propagates pipeline errors.
pub fn fig10(lab: &Lab<'_>) -> Result<ExperimentOutput> {
    let split = DsSplit::ds1(lab.trace())?;
    let prepared = prep(lab, &split, &FeatureSpec::all())?;
    let mut table = Table::new(["Model", "F1", "Precision", "Recall", "Train time"]);
    let mut rows = Vec::new();

    let cm = basic_a(lab, &split)?;
    table.push_row([
        "Basic A".to_string(),
        format!("{:.2}", cm.f1()),
        format!("{:.2}", cm.precision()),
        format!("{:.2}", cm.recall()),
        "-".to_string(),
    ]);
    rows.push(json!({
        "model": "Basic A", "f1": cm.f1(),
        "precision": cm.precision(), "recall": cm.recall(),
    }));

    // The four models are independent given the shared `prepared` split
    // (each builds its own classifier from the frozen MODEL_SEED), so the
    // grid fans out; outputs come back in presentation order.
    let outs = run_kinds(lab, &prepared, &ModelKind::all())?;
    for (kind, out) in ModelKind::all().into_iter().zip(outs) {
        let cm = out.confusion()?;
        table.push_row([
            kind.name().to_string(),
            format!("{:.2}", cm.f1()),
            format!("{:.2}", cm.precision()),
            format!("{:.2}", cm.recall()),
            format!("{:.2?}", out.train_time),
        ]);
        rows.push(json!({
            "model": kind.name(), "f1": cm.f1(),
            "precision": cm.precision(), "recall": cm.recall(),
            "train_time_s": out.train_time.as_secs_f64(),
        }));
    }
    Ok(ExperimentOutput {
        id: "fig10".into(),
        title: "SBE prediction quality across models (DS1)".into(),
        text: table.render(),
        json: json!({ "rows": rows, "n_stage2_train": prepared.train.len() }),
    })
}

/// Tables II and III — F1 across DS1/DS2/DS3 per model, and the mean
/// training time per model over the three datasets.
///
/// # Errors
///
/// Propagates pipeline errors.
pub fn table2_table3(lab: &Lab<'_>) -> Result<(ExperimentOutput, ExperimentOutput)> {
    let mut f1_rows: Vec<serde_json::Value> = Vec::new();
    let mut table2 = Table::new(["Dataset", "Basic A", "LR", "GBDT", "SVM", "NN"]);
    let mut times: BTreeMap<&'static str, Vec<f64>> = BTreeMap::new();

    for k in 1..=3u64 {
        let split = DsSplit::ds(lab.trace(), k)?;
        let prepared = prep(lab, &split, &FeatureSpec::all())?;
        let basic = basic_a(lab, &split)?;
        let mut row = vec![split.name().to_string(), format!("{:.2}", basic.f1())];
        let mut jrow = serde_json::Map::new();
        jrow.insert("dataset".into(), json!(split.name()));
        jrow.insert("Basic A".into(), json!(basic.f1()));
        let outs = run_kinds(lab, &prepared, &ModelKind::all())?;
        for (kind, out) in ModelKind::all().into_iter().zip(outs) {
            let cm = out.confusion()?;
            row.push(format!("{:.2}", cm.f1()));
            jrow.insert(kind.name().into(), json!(cm.f1()));
            times
                .entry(kind.name())
                .or_default()
                .push(out.train_time.as_secs_f64());
        }
        table2.push_row(row);
        f1_rows.push(serde_json::Value::Object(jrow));
    }

    let t2 = ExperimentOutput {
        id: "table2".into(),
        title: "F1 score for SBE occurrence prediction across datasets".into(),
        text: table2.render(),
        json: json!({ "rows": f1_rows }),
    };

    let mut table3 = Table::new(["Model", "Mean train time (s)"]);
    let mut jrows = Vec::new();
    for kind in ModelKind::all() {
        let ts = &times[kind.name()];
        let mean = ts.iter().sum::<f64>() / ts.len() as f64;
        table3.push_row([kind.name().to_string(), format!("{mean:.3}")]);
        jrows.push(json!({ "model": kind.name(), "mean_train_time_s": mean }));
    }
    let t3 = ExperimentOutput {
        id: "table3".into(),
        title: "Mean training time for various models".into(),
        text: table3.render(),
        json: json!({ "rows": jrows }),
    };
    Ok((t2, t3))
}

/// Fig. 11 — effect of feature groups (Hist / TP / App / All) on F1, as
/// percentage improvement over Basic A, for every dataset. GBDT is the
/// stage-2 model (the paper's selection).
///
/// # Errors
///
/// Propagates pipeline errors.
pub fn fig11(lab: &Lab<'_>) -> Result<ExperimentOutput> {
    let groups: [(&str, FeatureSpec); 4] = [
        ("Hist", FeatureSpec::only_hist()),
        ("TP", FeatureSpec::only_tp()),
        ("App", FeatureSpec::only_app()),
        ("All", FeatureSpec::all()),
    ];
    let mut table = Table::new(["Dataset", "Hist", "TP", "App", "All"]);
    let mut rows = Vec::new();
    for k in 1..=3u64 {
        let split = DsSplit::ds(lab.trace(), k)?;
        let base = basic_a(lab, &split)?.f1().max(1e-9);
        let mut row = vec![split.name().to_string()];
        let mut jrow = serde_json::Map::new();
        jrow.insert("dataset".into(), json!(split.name()));
        // Each feature group preps and trains independently; fan out and
        // collect in presentation order.
        let outs = parkit::try_par_map(lab.threads(), &groups, |(_, spec)| {
            let prepared = prep(lab, &split, spec)?;
            run_kind(lab, &prepared, ModelKind::Gbdt)
        })?;
        for ((name, _), out) in groups.iter().zip(outs) {
            let improvement = (out.confusion()?.f1() - base) / base * 100.0;
            row.push(format!("{improvement:+.1}%"));
            jrow.insert((*name).into(), json!(improvement));
        }
        table.push_row(row);
        rows.push(serde_json::Value::Object(jrow));
    }
    Ok(ExperimentOutput {
        id: "fig11".into(),
        title: "Feature-group effect on F1 (% improvement over Basic A)".into(),
        text: table.render(),
        json: json!({ "rows": rows }),
    })
}

/// Table IV — temporal and spatial temperature/power feature variants
/// (Cur / CurPrev / CurNei / CurPrevNei) on DS1 with GBDT.
///
/// # Errors
///
/// Propagates pipeline errors.
pub fn table4(lab: &Lab<'_>) -> Result<ExperimentOutput> {
    let split = DsSplit::ds1(lab.trace())?;
    let sets: [(&str, FeatureSpec); 4] = [
        ("Cur", FeatureSpec::cur()),
        ("CurPrev", FeatureSpec::cur_prev()),
        ("CurNei", FeatureSpec::cur_nei()),
        ("CurPrevNei", FeatureSpec::cur_prev_nei()),
    ];
    let mut table = Table::new(["Feature Set", "Precision", "Recall", "F1 Score"]);
    let mut rows = Vec::new();
    let outs = parkit::try_par_map(lab.threads(), &sets, |(_, spec)| {
        let prepared = prep(lab, &split, spec)?;
        run_kind(lab, &prepared, ModelKind::Gbdt)
    })?;
    for ((name, _), out) in sets.iter().zip(outs) {
        let cm = out.confusion()?;
        table.push_row([
            name.to_string(),
            format!("{:.3}", cm.precision()),
            format!("{:.3}", cm.recall()),
            format!("{:.3}", cm.f1()),
        ]);
        rows.push(json!({
            "set": name, "precision": cm.precision(),
            "recall": cm.recall(), "f1": cm.f1(),
        }));
    }
    Ok(ExperimentOutput {
        id: "table4".into(),
        title: "Temporal/spatial temperature-power feature variants (DS1)".into(),
        text: table.render(),
        json: json!({ "rows": rows }),
    })
}

/// Fig. 12 — F1 decrement when removing history feature sets:
/// (a) global vs local scope, (b) today / yesterday / before lengths.
///
/// # Errors
///
/// Propagates pipeline errors.
pub fn fig12(lab: &Lab<'_>) -> Result<ExperimentOutput> {
    let ablations: [(&str, FeatureSpec); 5] = [
        ("-Global", FeatureSpec::without_global_hist()),
        ("-Local", FeatureSpec::without_local_hist()),
        ("-Before", FeatureSpec::without_hist_before()),
        ("-Yesterday", FeatureSpec::without_hist_yesterday()),
        ("-Today", FeatureSpec::without_hist_today()),
    ];
    let mut table = Table::new([
        "Dataset",
        "-Global",
        "-Local",
        "-Before",
        "-Yesterday",
        "-Today",
    ]);
    let mut rows = Vec::new();
    for k in 1..=3u64 {
        let split = DsSplit::ds(lab.trace(), k)?;
        let full = {
            let prepared = prep(lab, &split, &FeatureSpec::all())?;
            run_kind(lab, &prepared, ModelKind::Gbdt)?.confusion()?.f1()
        };
        let mut row = vec![split.name().to_string()];
        let mut jrow = serde_json::Map::new();
        jrow.insert("dataset".into(), json!(split.name()));
        jrow.insert("full_f1".into(), json!(full));
        for (name, spec) in &ablations {
            let prepared = prep(lab, &split, spec)?;
            let out = run_kind(lab, &prepared, ModelKind::Gbdt)?;
            let decrement = (out.confusion()?.f1() - full) / full.max(1e-9) * 100.0;
            row.push(format!("{decrement:+.1}%"));
            jrow.insert((*name).into(), json!(decrement));
        }
        table.push_row(row);
        rows.push(serde_json::Value::Object(jrow));
    }
    Ok(ExperimentOutput {
        id: "fig12".into(),
        title: "F1 change when removing SBE-history feature sets".into(),
        text: table.render(),
        json: json!({ "rows": rows }),
    })
}

/// Fig. 13 — spatial robustness of TwoStage+GBDT on DS1: cabinet-level
/// CDFs of ground truth / prediction / true positives, and the
/// distribution of per-cabinet (ground truth − prediction) differences.
///
/// # Errors
///
/// Propagates pipeline errors.
pub fn fig13(lab: &Lab<'_>) -> Result<ExperimentOutput> {
    let split = DsSplit::ds1(lab.trace())?;
    let prepared = prep(lab, &split, &FeatureSpec::all())?;
    let out = run_kind(lab, &prepared, ModelKind::Gbdt)?;
    let topo = &lab.trace().config().topology;
    let n_cab = topo.n_cabinets() as usize;
    let mut truth = vec![0.0f64; n_cab];
    let mut pred = vec![0.0f64; n_cab];
    let mut tp = vec![0.0f64; n_cab];
    for (i, s) in out.test_samples.iter().enumerate() {
        let cab = topo.cabinet_index(s.node)? as usize;
        if out.truth[i] == 1.0 {
            truth[cab] += 1.0;
        }
        if out.predictions[i] == 1.0 {
            pred[cab] += 1.0;
            if out.truth[i] == 1.0 {
                tp[cab] += 1.0;
            }
        }
    }
    let diffs: Vec<f64> = truth.iter().zip(&pred).map(|(t, p)| t - p).collect();
    let abs_small = diffs.iter().filter(|d| d.abs() <= 15.0).count() as f64 / n_cab as f64;
    let d_lo = percentile(&diffs, 2.5)?;
    let d_hi = percentile(&diffs, 97.5)?;
    let ecdf_truth = Ecdf::new(&truth);
    let ecdf_pred = Ecdf::new(&pred);
    // Kolmogorov-style max CDF gap between truth and prediction curves.
    let mut max_gap = 0.0f64;
    for &v in truth.iter().chain(pred.iter()) {
        max_gap = max_gap.max((ecdf_truth.eval(v) - ecdf_pred.eval(v)).abs());
    }
    let text = format!(
        "cabinet-level SBE occurrences (test window {}):\n\
         per-cabinet |truth - prediction| <= 15 for {:.1}% of cabinets (paper: >95%)\n\
         truth-prediction diff 95% interval: [{d_lo:.1}, {d_hi:.1}] (paper: [-15, 13])\n\
         max CDF gap between ground truth and prediction: {max_gap:.3}\n",
        split.name(),
        abs_small * 100.0,
    );
    Ok(ExperimentOutput {
        id: "fig13".into(),
        title: "Spatial robustness of prediction vs ground truth".into(),
        text,
        json: json!({
            "truth_per_cabinet": truth,
            "pred_per_cabinet": pred,
            "tp_per_cabinet": tp,
            "fraction_small_diff": abs_small,
            "diff_p2_5": d_lo,
            "diff_p97_5": d_hi,
            "max_cdf_gap": max_gap,
        }),
    })
}

/// Table V — prediction quality for short-running (bottom-quartile
/// runtime) vs long-running (top-quartile) applications on DS1.
///
/// # Errors
///
/// Propagates pipeline errors.
pub fn table5(lab: &Lab<'_>) -> Result<ExperimentOutput> {
    let split = DsSplit::ds1(lab.trace())?;
    let prepared = prep(lab, &split, &FeatureSpec::all())?;
    let out = run_kind(lab, &prepared, ModelKind::Gbdt)?;
    let runtimes: Vec<f64> = out
        .test_samples
        .iter()
        .map(|s| s.runtime_min() as f64)
        .collect();
    let q25 = percentile(&runtimes, 25.0)?;
    let q75 = percentile(&runtimes, 75.0)?;

    let subset_cm = |keep: &dyn Fn(usize) -> bool| -> Result<ConfusionMatrix> {
        let mut truth = Vec::new();
        let mut pred = Vec::new();
        for i in 0..out.test_samples.len() {
            if keep(i) {
                truth.push(out.truth[i]);
                pred.push(out.predictions[i]);
            }
        }
        Ok(ConfusionMatrix::from_predictions(&truth, &pred)?)
    };
    let all = out.confusion()?;
    let short = subset_cm(&|i| runtimes[i] <= q25)?;
    let long = subset_cm(&|i| runtimes[i] >= q75)?;

    let mut table = Table::new(["Application", "Precision", "Recall", "F1 Score"]);
    let mut rows = Vec::new();
    for (name, cm) in [("All", all), ("Short", short), ("Long", long)] {
        table.push_row([
            name.to_string(),
            format!("{:.2}", cm.precision()),
            format!("{:.2}", cm.recall()),
            format!("{:.2}", cm.f1()),
        ]);
        rows.push(json!({
            "subset": name, "precision": cm.precision(),
            "recall": cm.recall(), "f1": cm.f1(),
        }));
    }
    Ok(ExperimentOutput {
        id: "table5".into(),
        title: "Prediction quality for short- vs long-running applications".into(),
        text: table.render(),
        json: json!({ "rows": rows, "q25_min": q25, "q75_min": q75 }),
    })
}

/// Table VI — percentage of correctly classified SBE-affected runs in
/// four severity quartiles (Light → Extreme) on DS1.
///
/// # Errors
///
/// Propagates pipeline errors; returns [`PredError::InvalidInput`] when
/// the test window has no positives.
pub fn table6(lab: &Lab<'_>) -> Result<ExperimentOutput> {
    let split = DsSplit::ds1(lab.trace())?;
    let prepared = prep(lab, &split, &FeatureSpec::all())?;
    let out = run_kind(lab, &prepared, ModelKind::Gbdt)?;
    // Positive test samples with their severity (attributed count).
    let mut positives: Vec<(u32, bool)> = Vec::new();
    for (i, s) in out.test_samples.iter().enumerate() {
        if out.truth[i] == 1.0 {
            positives.push((s.sbe_count, out.predictions[i] == 1.0));
        }
    }
    if positives.is_empty() {
        return Err(PredError::InvalidInput {
            reason: "no positive samples in the test window".into(),
        });
    }
    positives.sort_unstable_by_key(|&(c, _)| c);
    let n = positives.len();
    let levels = ["Light", "Moderate", "Severe", "Extreme"];
    let mut table = Table::new(["Severity", "PCT correctly classified", "Samples"]);
    let mut rows = Vec::new();
    for (li, name) in levels.iter().enumerate() {
        let lo = n * li / 4;
        let hi = if li == 3 { n } else { n * (li + 1) / 4 };
        let slice = &positives[lo..hi];
        let correct = slice.iter().filter(|&&(_, ok)| ok).count();
        let pct = if slice.is_empty() {
            0.0
        } else {
            correct as f64 / slice.len() as f64
        };
        table.push_row([
            name.to_string(),
            format!("{:.0}%", pct * 100.0),
            format!("{}", slice.len()),
        ]);
        rows.push(json!({ "level": name, "pct_correct": pct, "n": slice.len() }));
    }
    Ok(ExperimentOutput {
        id: "table6".into(),
        title: "Correctly classified SBE-affected runs by severity level".into(),
        text: table.render(),
        json: json!({ "rows": rows }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use titan_sim::config::SimConfig;
    use titan_sim::engine::generate;
    use titan_sim::trace::TraceSet;

    fn trace() -> TraceSet {
        // Seed 13: under the in-repo RNG streams (see DESIGN.md "Parallel
        // execution & determinism"), seed 3's test windows hold zero
        // positive samples, degenerating recall/F1 assertions.
        generate(&SimConfig::tiny(13)).unwrap()
    }

    #[test]
    fn table1_has_four_schemes() {
        let t = trace();
        let lab = Lab::new(&t).unwrap();
        let out = table1(&lab).unwrap();
        assert_eq!(out.json["rows"].as_array().unwrap().len(), 4);
        // Basic A recall should be strong (the paper's anchor).
        let a = &out.json["rows"][1];
        assert_eq!(a["scheme"], "Basic A");
        assert!(a["sbe_recall"].as_f64().unwrap() > 0.3);
    }

    #[test]
    fn fig10_runs_all_models() {
        let t = trace();
        let lab = Lab::new(&t).unwrap();
        let out = fig10(&lab).unwrap();
        let rows = out.json["rows"].as_array().unwrap();
        assert_eq!(rows.len(), 5); // Basic A + 4 models
        for r in rows {
            let f1 = r["f1"].as_f64().unwrap();
            assert!((0.0..=1.0).contains(&f1));
        }
    }

    #[test]
    fn table5_and_table6_run() {
        let t = trace();
        let lab = Lab::new(&t).unwrap();
        let t5 = table5(&lab).unwrap();
        assert_eq!(t5.json["rows"].as_array().unwrap().len(), 3);
        let t6 = table6(&lab).unwrap();
        assert_eq!(t6.json["rows"].as_array().unwrap().len(), 4);
    }

    #[test]
    fn fig13_accounts_all_cabinets() {
        let t = trace();
        let lab = Lab::new(&t).unwrap();
        let out = fig13(&lab).unwrap();
        let n_cab = t.config().topology.n_cabinets() as usize;
        assert_eq!(
            out.json["truth_per_cabinet"].as_array().unwrap().len(),
            n_cab
        );
        let frac = out.json["fraction_small_diff"].as_f64().unwrap();
        assert!((0.0..=1.0).contains(&frac));
    }
}
