//! Characterization experiments — the paper's §III (Figs. 1–8).

use super::{ExperimentOutput, Lab};
use crate::report::{render_heatmap, render_histogram, Table};
use crate::Result;
use mlkit::stats::{mean, spearman, Histogram};
use serde_json::json;
use std::collections::{BTreeMap, BTreeSet};
use titan_sim::config::MINUTES_PER_DAY;
use titan_sim::engine::TelemetryQueryEngine;
use titan_sim::telemetry::SeriesKind;
use titan_sim::topology::NodeId;

/// Per-cabinet aggregation helper: sums `per_node` values into the
/// cabinet grid (row-major, `y * grid_x + x`).
fn cabinet_grid(lab: &Lab<'_>, per_node: impl Fn(u32) -> f64) -> Result<Vec<f64>> {
    let topo = &lab.trace().config().topology;
    let mut grid = vec![0.0f64; topo.n_cabinets() as usize];
    for node in topo.nodes() {
        let cab = topo.cabinet_index(node)? as usize;
        grid[cab] += per_node(node.0);
    }
    Ok(grid)
}

/// Fig. 1 — non-uniform distribution of SBE offender nodes at cabinet
/// level, plus the offender-day concentration statistic (§III-A: 80% of
/// offender nodes error on < 20% of trace days).
///
/// # Errors
///
/// Propagates trace lookup errors.
pub fn fig1(lab: &Lab<'_>) -> Result<ExperimentOutput> {
    let topo = &lab.trace().config().topology;
    let offenders: BTreeSet<u32> = lab
        .trace()
        .offender_nodes()
        .into_iter()
        .map(|n| n.0)
        .collect();
    let grid = cabinet_grid(lab, |n| if offenders.contains(&n) { 1.0 } else { 0.0 })?;
    let per_cab = topo.nodes_per_cabinet() as f64;
    let normalized: Vec<f64> = grid.iter().map(|&v| v / per_cab).collect();

    // Error-day concentration: for each offender node, the number of
    // distinct days with a visible SBE.
    let mut node_days: BTreeMap<u32, BTreeSet<u64>> = BTreeMap::new();
    for s in lab.samples() {
        if s.label {
            node_days
                .entry(s.node.0)
                .or_default()
                .insert(s.end_min / MINUTES_PER_DAY);
        }
    }
    let total_days = lab.trace().config().days as f64;
    let mut day_fracs: Vec<f64> = node_days
        .values()
        .map(|d| d.len() as f64 / total_days)
        .collect();
    day_fracs.sort_by(|a, b| a.total_cmp(b));
    let p80 = day_fracs
        .get((day_fracs.len() as f64 * 0.8) as usize)
        .copied()
        .unwrap_or(0.0);

    let mut text = String::from("Normalized SBE offender nodes per cabinet (25x8 grid):\n");
    text.push_str(&render_heatmap(
        &normalized,
        topo.grid_x() as usize,
        topo.grid_y() as usize,
    ));
    text.push_str(&format!(
        "offender nodes: {} of {} ({:.1}%)\n\
         80th-percentile offender errors on {:.1}% of days (paper: <20%)\n",
        offenders.len(),
        topo.n_nodes(),
        100.0 * offenders.len() as f64 / topo.n_nodes() as f64,
        100.0 * p80,
    ));
    Ok(ExperimentOutput {
        id: "fig1".into(),
        title: "Non-uniform distribution of GPU error offender nodes".into(),
        text,
        json: json!({
            "grid": normalized,
            "grid_x": topo.grid_x(),
            "grid_y": topo.grid_y(),
            "n_offenders": offenders.len(),
            "offender_day_fraction_p80": p80,
        }),
    })
}

/// Fig. 2 — non-uniform distribution of SBE-affected application runs at
/// cabinet level.
///
/// # Errors
///
/// Propagates trace lookup errors.
pub fn fig2(lab: &Lab<'_>) -> Result<ExperimentOutput> {
    let topo = &lab.trace().config().topology;
    let mut per_node: BTreeMap<u32, f64> = BTreeMap::new();
    for s in lab.samples() {
        if s.label {
            *per_node.entry(s.node.0).or_insert(0.0) += 1.0;
        }
    }
    let grid = cabinet_grid(lab, |n| per_node.get(&n).copied().unwrap_or(0.0))?;
    let peak = grid.iter().copied().fold(0.0f64, f64::max).max(1.0);
    let normalized: Vec<f64> = grid.iter().map(|&v| v / peak).collect();
    let mut text = String::from("Normalized SBE-affected application runs per cabinet:\n");
    text.push_str(&render_heatmap(
        &normalized,
        topo.grid_x() as usize,
        topo.grid_y() as usize,
    ));
    Ok(ExperimentOutput {
        id: "fig2".into(),
        title: "Non-uniform distribution of SBE-affected application runs".into(),
        text,
        json: json!({
            "grid": normalized,
            "grid_x": topo.grid_x(),
            "grid_y": topo.grid_y(),
        }),
    })
}

/// Per-application aggregates used by Figs. 3 and 4.
struct AppAgg {
    sbe_norm: f64,      // total SBE count normalised by core-hours
    total_runs: u64,    // distinct apruns
    affected_runs: u64, // distinct SBE-affected apruns
}

fn app_aggregates(lab: &Lab<'_>) -> Result<BTreeMap<u32, AppAgg>> {
    let mut per_app: BTreeMap<u32, AppAgg> = BTreeMap::new();
    // Aggregate per aprun first (samples are per node).
    let mut run_count: BTreeMap<u32, (u32, u64, bool)> = BTreeMap::new(); // aprun -> (app, count, affected)
    for s in lab.samples() {
        let e = run_count.entry(s.aprun.0).or_insert((s.app.0, 0, false));
        e.1 += s.sbe_count as u64;
        e.2 |= s.label;
    }
    for (aprun, (app, count, affected)) in run_count {
        let run = lab.trace().aprun(titan_sim::schedule::ApRunId(aprun))?;
        let core_hours = run.node_hours().max(1e-9);
        let e = per_app.entry(app).or_insert(AppAgg {
            sbe_norm: 0.0,
            total_runs: 0,
            affected_runs: 0,
        });
        e.sbe_norm += count as f64 / core_hours;
        e.total_runs += 1;
        if affected {
            e.affected_runs += 1;
        }
    }
    Ok(per_app)
}

/// Fig. 3 — workload/SBE concentration: (a) a small set of applications
/// holds most SBEs; (b) even affected applications are not uniformly
/// affected across their runs.
///
/// # Errors
///
/// Propagates trace lookup errors.
pub fn fig3(lab: &Lab<'_>) -> Result<ExperimentOutput> {
    let per_app = app_aggregates(lab)?;
    let mut affected: Vec<&AppAgg> = per_app.values().filter(|a| a.sbe_norm > 0.0).collect();
    affected.sort_by(|a, b| b.sbe_norm.total_cmp(&a.sbe_norm));
    let total: f64 = affected.iter().map(|a| a.sbe_norm).sum();

    // (a) cumulative share held by the top X% of affected apps.
    let mut table_a = Table::new(["Top % of SBE-affected apps", "Share of total SBEs"]);
    let mut shares = Vec::new();
    for pct in [10, 20, 40, 60, 80, 100] {
        let k = ((affected.len() * pct).div_ceil(100))
            .max(1)
            .min(affected.len().max(1));
        let share: f64 =
            affected.iter().take(k).map(|a| a.sbe_norm).sum::<f64>() / total.max(f64::MIN_POSITIVE);
        table_a.push_row([format!("{pct}%"), format!("{:.1}%", share * 100.0)]);
        shares.push((pct, share));
    }

    // (b) fraction of affected executions for top vs bottom quintiles.
    let frac = |slice: &[&AppAgg]| -> f64 {
        let runs: u64 = slice.iter().map(|a| a.total_runs).sum();
        let aff: u64 = slice.iter().map(|a| a.affected_runs).sum();
        if runs == 0 {
            0.0
        } else {
            aff as f64 / runs as f64
        }
    };
    let q = (affected.len() / 5).max(1);
    let top_frac = frac(&affected[..q.min(affected.len())]);
    let bottom_frac = if affected.len() > q {
        frac(&affected[affected.len() - q..])
    } else {
        0.0
    };

    let top20_share = shares
        .iter()
        .find(|&&(p, _)| p == 20)
        .map(|&(_, s)| s)
        .unwrap_or(0.0);
    let mut text = table_a.render();
    text.push_str(&format!(
        "\nfraction of executions SBE-affected: top quintile {:.1}%, bottom quintile {:.1}%\n\
         (paper: top 20% of apps see errors in ~60% of runs; bottom in <10%)\n",
        top_frac * 100.0,
        bottom_frac * 100.0
    ));
    Ok(ExperimentOutput {
        id: "fig3".into(),
        title: "Workload and GPU error distribution".into(),
        text,
        json: json!({
            "top_share_by_pct": shares.iter().map(|&(p, s)| json!({"pct": p, "share": s})).collect::<Vec<_>>(),
            "top20_share": top20_share,
            "top_quintile_affected_run_fraction": top_frac,
            "bottom_quintile_affected_run_fraction": bottom_frac,
        }),
    })
}

/// Fig. 4 — Spearman correlation between per-run SBE count and GPU
/// utilisation (core-hours, memory) among SBE-affected runs.
///
/// # Errors
///
/// Propagates trace lookup and correlation errors.
pub fn fig4(lab: &Lab<'_>) -> Result<ExperimentOutput> {
    // Per affected aprun: total count, core-hours, aggregate memory.
    let mut runs: BTreeMap<u32, u64> = BTreeMap::new();
    for s in lab.samples() {
        if s.sbe_count > 0 {
            *runs.entry(s.aprun.0).or_insert(0) += s.sbe_count as u64;
        }
    }
    let mut counts = Vec::new();
    let mut core_hours = Vec::new();
    let mut memory = Vec::new();
    for (&aprun, &count) in &runs {
        let run = lab.trace().aprun(titan_sim::schedule::ApRunId(aprun))?;
        let profile = lab.trace().catalog().profile(run.app_id)?;
        counts.push(count as f64);
        core_hours.push(run.node_hours() * profile.core_util);
        memory.push(profile.mem_util * run.nodes.len() as f64);
    }
    let rho_core = spearman(&counts, &core_hours)?;
    let rho_mem = spearman(&counts, &memory)?;
    let text = format!(
        "SBE-affected runs: {}\n\
         Spearman(SBE count, GPU core-hours) = {rho_core:.2}  (paper: 0.89)\n\
         Spearman(SBE count, GPU memory)     = {rho_mem:.2}  (paper: 0.70)\n",
        counts.len()
    );
    Ok(ExperimentOutput {
        id: "fig4".into(),
        title: "SBE count vs GPU utilisation (Spearman)".into(),
        text,
        json: json!({
            "n_affected_runs": counts.len(),
            "spearman_core_hours": rho_core,
            "spearman_memory": rho_mem,
        }),
    })
}

/// Fig. 5 — cumulative temperature and power per cabinet, and their
/// (weak) spatial correlation with the offender distribution.
///
/// # Errors
///
/// Propagates correlation errors.
pub fn fig5(lab: &Lab<'_>) -> Result<ExperimentOutput> {
    let topo = &lab.trace().config().topology;
    let cum_t = lab.trace().node_cum_temp();
    let cum_p = lab.trace().node_cum_power();
    let grid_t = cabinet_grid(lab, |n| cum_t[n as usize])?;
    let grid_p = cabinet_grid(lab, |n| cum_p[n as usize])?;
    let norm = |g: &[f64]| -> Vec<f64> {
        let m = mean(g).max(f64::MIN_POSITIVE);
        g.iter().map(|&v| v / m).collect()
    };
    let (gt, gp) = (norm(&grid_t), norm(&grid_p));

    // Node-level Spearman between cumulative temperature and SBE counts /
    // affected-run counts.
    let mut node_sbe = vec![0.0f64; topo.n_nodes() as usize];
    let mut node_aff = vec![0.0f64; topo.n_nodes() as usize];
    for s in lab.samples() {
        node_sbe[s.node.0 as usize] += s.sbe_count as f64;
        if s.label {
            node_aff[s.node.0 as usize] += 1.0;
        }
    }
    let cum_t_f: Vec<f64> = cum_t.to_vec();
    let rho_nodes = spearman(&cum_t_f, &node_sbe)?;
    let rho_apps = spearman(&cum_t_f, &node_aff)?;

    let mut text = String::from("Cumulative GPU temperature per cabinet (normalised):\n");
    text.push_str(&render_heatmap(
        &gt,
        topo.grid_x() as usize,
        topo.grid_y() as usize,
    ));
    text.push_str("\nCumulative GPU power per cabinet (normalised):\n");
    text.push_str(&render_heatmap(
        &gp,
        topo.grid_x() as usize,
        topo.grid_y() as usize,
    ));
    text.push_str(&format!(
        "\nSpearman(cumulative node temperature, node SBE count)      = {rho_nodes:.2} (paper: 0.07)\n\
         Spearman(cumulative node temperature, affected runs on node) = {rho_apps:.2} (paper: 0.15)\n"
    ));
    Ok(ExperimentOutput {
        id: "fig5".into(),
        title: "Temperature/power spatial distribution and weak SBE correlation".into(),
        text,
        json: json!({
            "temp_grid": gt,
            "power_grid": gp,
            "spearman_temp_vs_offenders": rho_nodes,
            "spearman_temp_vs_affected_runs": rho_apps,
        }),
    })
}

/// Shared implementation of Figs. 6 and 7: the distribution of run-level
/// mean temperature (or power) on offender nodes, split into SBE-affected
/// and SBE-free periods.
///
/// Substitution note: the paper histograms raw per-minute readings; we
/// histogram per-run averages (the simulator stores those), which
/// preserves the mean shift the paper reports.
fn period_distribution(
    lab: &Lab<'_>,
    id: &str,
    title: &str,
    lo: f64,
    hi: f64,
    sample_value: impl Fn(&titan_sim::trace::SampleRecord) -> f64,
    paper_shift: f64,
) -> Result<ExperimentOutput> {
    let offenders: BTreeSet<u32> = lab
        .trace()
        .offender_nodes()
        .into_iter()
        .map(|n| n.0)
        .collect();
    let mut hist_free = Histogram::new(lo, hi, 24)?;
    let mut hist_aff = Histogram::new(lo, hi, 24)?;
    let mut free_vals = Vec::new();
    let mut aff_vals = Vec::new();
    for (ls, rs) in lab.samples().iter().zip(lab.trace().samples()) {
        if !offenders.contains(&ls.node.0) {
            continue;
        }
        let v = sample_value(rs);
        if ls.label {
            hist_aff.push(v);
            aff_vals.push(v);
        } else {
            hist_free.push(v);
            free_vals.push(v);
        }
    }
    let m_free = mean(&free_vals);
    let m_aff = mean(&aff_vals);
    let centers: Vec<f64> = (0..24).map(|i| hist_free.bin_center(i)).collect();
    let mut text = format!("SBE-free periods (mean {m_free:.2}):\n");
    text.push_str(&render_histogram(&centers, &hist_free.probabilities(), 40));
    text.push_str(&format!("\nSBE-affected periods (mean {m_aff:.2}):\n"));
    text.push_str(&render_histogram(&centers, &hist_aff.probabilities(), 40));
    text.push_str(&format!(
        "\nshift = {:+.2} (paper: ~{paper_shift:+.0})\n",
        m_aff - m_free
    ));
    Ok(ExperimentOutput {
        id: id.into(),
        title: title.into(),
        text,
        json: json!({
            "mean_free": m_free,
            "mean_affected": m_aff,
            "shift": m_aff - m_free,
            "free_probs": hist_free.probabilities(),
            "affected_probs": hist_aff.probabilities(),
            "bin_centers": centers,
        }),
    })
}

/// Fig. 6 — temperature distribution of offender nodes in SBE-free vs
/// SBE-affected periods.
///
/// # Errors
///
/// Propagates histogram errors.
pub fn fig6(lab: &Lab<'_>) -> Result<ExperimentOutput> {
    period_distribution(
        lab,
        "fig6",
        "Temperature during SBE-free vs SBE-affected periods",
        10.0,
        80.0,
        |r| r.avg_gpu_temp_c as f64,
        3.0,
    )
}

/// Fig. 7 — power distribution of offender nodes in SBE-free vs
/// SBE-affected periods.
///
/// # Errors
///
/// Propagates histogram errors.
pub fn fig7(lab: &Lab<'_>) -> Result<ExperimentOutput> {
    period_distribution(
        lab,
        "fig7",
        "Power during SBE-free vs SBE-affected periods",
        0.0,
        260.0,
        |r| r.avg_gpu_power_w as f64,
        15.0,
    )
}

/// Fig. 8 — temperature/power profile of the same application run twice
/// on the same node, with slot-average context: run-to-run variation from
/// neighbouring components.
///
/// # Errors
///
/// Propagates telemetry probe errors; returns
/// [`crate::PredError::InvalidInput`] when no app repeats on a node.
pub fn fig8(lab: &Lab<'_>) -> Result<ExperimentOutput> {
    // Find an (app, node) pair with two runs separated in time.
    let mut seen: BTreeMap<(u32, u32), Vec<(u64, u64)>> = BTreeMap::new();
    for s in lab.samples() {
        seen.entry((s.app.0, s.node.0))
            .or_default()
            .push((s.start_min, s.end_min));
    }
    let horizon = lab.trace().config().total_minutes();
    let pick = seen
        .iter()
        .filter(|(_, runs)| runs.len() >= 2)
        .flat_map(|(&(app, node), runs)| {
            let mut sorted = runs.clone();
            sorted.sort_unstable();
            sorted
                .windows(2)
                .filter(|w| w[1].0 > w[0].1 + 60)
                .map(move |w| (app, node, w[0], w[1]))
                .collect::<Vec<_>>()
        })
        .find(|&(_, _, a, b)| {
            a.0 >= 30 && b.1 + 30 < horizon && a.1 - a.0 >= 30 && b.1 - b.0 >= 30
        });
    let Some((app, node, run_a, run_b)) = pick else {
        return Err(crate::PredError::InvalidInput {
            reason: "no application repeats on a node with enough spacing".into(),
        });
    };
    let engine = TelemetryQueryEngine::new(lab.trace())?;
    let node_id = NodeId(node);
    let profile = |(s, e): (u64, u64)| -> Result<serde_json::Value> {
        let lo = s - 30;
        let hi = (e + 30).min(horizon);
        let temp = engine.node_series(node_id, SeriesKind::GpuTemp, lo, hi)?;
        let power = engine.node_series(node_id, SeriesKind::GpuPower, lo, hi)?;
        let cpu = engine.node_series(node_id, SeriesKind::CpuTemp, lo, hi)?;
        let slot_t = engine.slot_average_series(node_id, SeriesKind::GpuTemp, lo, hi)?;
        let seg_mean = |v: &[f32], a: usize, b: usize| -> f64 {
            let s: f64 = v[a..b.min(v.len())].iter().map(|&x| x as f64).sum();
            s / (b.min(v.len()) - a).max(1) as f64
        };
        let run_len = (e - s) as usize;
        Ok(json!({
            "before_temp": seg_mean(&temp, 0, 30),
            "during_temp": seg_mean(&temp, 30, 30 + run_len),
            "after_temp": seg_mean(&temp, 30 + run_len, temp.len()),
            "during_power": seg_mean(&power, 30, 30 + run_len),
            "during_cpu": seg_mean(&cpu, 30, 30 + run_len),
            "during_slot_avg_temp": seg_mean(&slot_t, 30, 30 + run_len),
        }))
    };
    let pa = profile(run_a)?;
    let pb = profile(run_b)?;
    let app_name = lab
        .trace()
        .catalog()
        .profile(titan_sim::apps::AppId(app))?
        .name
        .clone();
    let fmt = |v: &serde_json::Value, key: &str| v[key].as_f64().unwrap_or(0.0);
    let mut table = Table::new(["Phase", "Run 1", "Run 2"]);
    for key in [
        "before_temp",
        "during_temp",
        "after_temp",
        "during_power",
        "during_cpu",
        "during_slot_avg_temp",
    ] {
        table.push_row([
            key.to_string(),
            format!("{:.2}", fmt(&pa, key)),
            format!("{:.2}", fmt(&pb, key)),
        ]);
    }
    let delta = (fmt(&pa, "during_temp") - fmt(&pb, "during_temp")).abs();
    let mut text = format!(
        "application `{app_name}` on node n{node}: runs at minute {} and {}\n",
        run_a.0, run_b.0
    );
    text.push_str(&table.render());
    text.push_str(&format!(
        "\nrun-to-run temperature difference during execution: {delta:.2} C\n\
         (paper: profiles change across runs due to neighbours/CPU)\n"
    ));
    Ok(ExperimentOutput {
        id: "fig8".into(),
        title: "Run-to-run temperature/power variation on the same node".into(),
        text,
        json: json!({
            "app": app_name,
            "node": node,
            "run1": pa,
            "run2": pb,
            "during_temp_delta": delta,
        }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use titan_sim::config::SimConfig;
    use titan_sim::engine::generate;
    use titan_sim::trace::TraceSet;

    fn trace() -> TraceSet {
        generate(&SimConfig::tiny(3)).unwrap()
    }

    #[test]
    fn fig1_reports_offenders() {
        let t = trace();
        let lab = Lab::new(&t).unwrap();
        let out = fig1(&lab).unwrap();
        assert!(out.json["n_offenders"].as_u64().unwrap() > 0);
        assert!(out.text.contains("offender nodes"));
        let grid = out.json["grid"].as_array().unwrap();
        assert_eq!(grid.len(), 8); // tiny topology: 4x2 cabinets
    }

    #[test]
    fn fig3_concentration_holds() {
        let t = trace();
        let lab = Lab::new(&t).unwrap();
        let out = fig3(&lab).unwrap();
        let top20 = out.json["top20_share"].as_f64().unwrap();
        assert!(top20 > 0.5, "top-20% share {top20}");
    }

    #[test]
    fn fig4_positive_correlations() {
        let t = trace();
        let lab = Lab::new(&t).unwrap();
        let out = fig4(&lab).unwrap();
        // The tiny test trace has few affected runs and tiny allocations,
        // so only require a positive correlation here; the scaled trace
        // (repro fig4) is where the paper's ~0.89 is reproduced.
        let core = out.json["spearman_core_hours"].as_f64().unwrap();
        assert!(core > 0.05, "core-hours rho {core}");
    }

    #[test]
    fn fig5_weak_spatial_correlation() {
        let t = trace();
        let lab = Lab::new(&t).unwrap();
        let out = fig5(&lab).unwrap();
        let rho = out.json["spearman_temp_vs_offenders"].as_f64().unwrap();
        assert!(rho.abs() < 0.6, "temperature/offender correlation {rho}");
    }

    #[test]
    fn fig6_fig7_positive_shift() {
        let t = trace();
        let lab = Lab::new(&t).unwrap();
        let t6 = fig6(&lab).unwrap();
        assert!(t6.json["shift"].as_f64().unwrap() > 0.0);
        let t7 = fig7(&lab).unwrap();
        assert!(t7.json["shift"].as_f64().unwrap() > 0.0);
    }

    #[test]
    fn fig8_finds_repeat_runs() {
        let t = trace();
        let lab = Lab::new(&t).unwrap();
        let out = fig8(&lab).unwrap();
        assert!(out.json["during_temp_delta"].as_f64().is_some());
        assert!(out.text.contains("application"));
    }
}
