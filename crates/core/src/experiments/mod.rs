//! Experiment drivers — one per table and figure of the paper.
//!
//! Every driver returns an [`ExperimentOutput`]: a rendered terminal
//! report plus a machine-readable JSON value, so benches can both print
//! the paper's rows and persist results for EXPERIMENTS.md.
//!
//! | Paper artefact | Driver |
//! |---|---|
//! | Fig. 1–8 (characterization) | [`characterization`] |
//! | Table I, Fig. 10, Tables II–VI, Figs. 11–13 | [`prediction`] |

pub mod characterization;
pub mod extensions;
pub mod prediction;

use crate::features::FeatureExtractor;
use crate::samples::{build_samples, LabeledSample};
use crate::Result;
use mlkit::gbdt::Gbdt;
use mlkit::linear::LogisticRegression;
use mlkit::model::Classifier;
use mlkit::nn::MlpClassifier;
use mlkit::svm::SvmRbf;
use serde::Serialize;
use titan_sim::trace::TraceSet;

/// The rendered + structured result of one experiment.
#[derive(Debug, Clone, Serialize)]
pub struct ExperimentOutput {
    /// Short id, e.g. `"table1"` or `"fig10"`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Terminal rendering (tables, heatmaps).
    pub text: String,
    /// Machine-readable result payload.
    pub json: serde_json::Value,
}

impl std::fmt::Display for ExperimentOutput {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        f.write_str(&self.text)
    }
}

/// The four learned models the paper compares (§VI-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// Logistic regression.
    Lr,
    /// Gradient-boosted decision trees — the paper's winner.
    Gbdt,
    /// RBF-kernel SVM.
    Svm,
    /// Multi-layer perceptron.
    Nn,
}

impl ModelKind {
    /// All four models in the paper's presentation order.
    pub fn all() -> [ModelKind; 4] {
        [
            ModelKind::Lr,
            ModelKind::Gbdt,
            ModelKind::Svm,
            ModelKind::Nn,
        ]
    }

    /// Display name used in tables.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::Lr => "LR",
            ModelKind::Gbdt => "GBDT",
            ModelKind::Svm => "SVM",
            ModelKind::Nn => "NN",
        }
    }

    /// Builds the classifier with the hyper-parameters used throughout
    /// the evaluation (tuned once on DS1, then frozen — mirroring the
    /// paper's methodology).
    pub fn build(&self, seed: u64) -> Box<dyn Classifier> {
        self.build_with_mode(seed, mlkit::hist::TrainMode::Exact)
    }

    /// Like [`ModelKind::build`], but selecting the GBDT training engine
    /// (`TrainMode`). Non-GBDT models ignore the mode. `Exact` is the
    /// default everywhere so published experiment outputs stay pinned;
    /// `Fast` is the opt-in throughput engine for wide sweeps.
    pub fn build_with_mode(&self, seed: u64, mode: mlkit::hist::TrainMode) -> Box<dyn Classifier> {
        match self {
            ModelKind::Lr => Box::new(
                LogisticRegression::new()
                    .learning_rate(0.5)
                    .epochs(40)
                    .batch_size(256)
                    .pos_weight(2.0)
                    .seed(seed),
            ),
            ModelKind::Gbdt => Box::new(
                Gbdt::new()
                    .n_trees(120)
                    .max_depth(5)
                    .learning_rate(0.1)
                    .min_samples_leaf(20)
                    .subsample(0.8)
                    .pos_weight(2.0)
                    .seed(seed)
                    .train_mode(mode),
            ),
            ModelKind::Svm => Box::new(
                SvmRbf::new()
                    .gamma(0.02)
                    .c(5.0)
                    .max_samples(5_000)
                    .max_iters(150)
                    .seed(seed),
            ),
            ModelKind::Nn => Box::new(
                MlpClassifier::new()
                    .hidden_layers(&[64, 32])
                    .epochs(40)
                    .batch_size(128)
                    .learning_rate(1e-3)
                    .pos_weight(2.0)
                    .seed(seed),
            ),
        }
    }
}

/// Shared, reusable experiment context: the trace, its labelled samples,
/// and a feature extractor. Building the extractor once amortises the
/// history index across all drivers.
pub struct Lab<'a> {
    trace: &'a TraceSet,
    samples: Vec<LabeledSample>,
    fx: FeatureExtractor<'a>,
    threads: parkit::Threads,
    clock: &'a dyn obskit::Clock,
}

impl std::fmt::Debug for Lab<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lab")
            .field("trace", &self.trace)
            .field("samples", &self.samples.len())
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}

impl<'a> Lab<'a> {
    /// Builds the context for a trace with the automatic thread policy.
    ///
    /// # Errors
    ///
    /// Propagates sample/extractor construction errors.
    pub fn new(trace: &'a TraceSet) -> Result<Lab<'a>> {
        Lab::with_threads(trace, parkit::Threads::Auto)
    }

    /// Builds the context with an explicit thread policy for the model
    /// grids. Results are identical under any policy; only wall-clock
    /// time changes.
    ///
    /// # Errors
    ///
    /// Propagates sample/extractor construction errors.
    pub fn with_threads(trace: &'a TraceSet, threads: parkit::Threads) -> Result<Lab<'a>> {
        let samples = build_samples(trace)?;
        let fx = FeatureExtractor::new(trace, &samples)?;
        Ok(Lab {
            trace,
            samples,
            fx,
            threads,
            clock: &obskit::NullClock,
        })
    }

    /// Replaces the clock used for wall-time measurements (training
    /// times in tables). The default [`obskit::NullClock`] reports zero,
    /// keeping every experiment output deterministic; benches inject a
    /// real clock when timing columns are wanted.
    #[must_use]
    pub fn with_clock(mut self, clock: &'a dyn obskit::Clock) -> Lab<'a> {
        self.clock = clock;
        self
    }

    /// The clock timing columns are measured with.
    pub fn clock(&self) -> &'a dyn obskit::Clock {
        self.clock
    }

    /// The thread policy experiment grids fan out with.
    pub fn threads(&self) -> parkit::Threads {
        self.threads
    }

    /// The trace under study.
    pub fn trace(&self) -> &'a TraceSet {
        self.trace
    }

    /// The full labelled sample list.
    pub fn samples(&self) -> &[LabeledSample] {
        &self.samples
    }

    /// The shared feature extractor (history index + telemetry engine).
    pub fn extractor(&self) -> &FeatureExtractor<'a> {
        &self.fx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use titan_sim::config::SimConfig;
    use titan_sim::engine::generate;

    #[test]
    fn model_kinds_build_with_right_names() {
        for kind in ModelKind::all() {
            let m = kind.build(1);
            assert_eq!(m.name(), kind.name());
        }
    }

    #[test]
    fn lab_builds() {
        let t = generate(&SimConfig::tiny(3)).unwrap();
        let lab = Lab::new(&t).unwrap();
        assert!(!lab.samples().is_empty());
        assert!(lab.extractor().history().machine_before(u64::MAX) > 0);
    }

    #[test]
    fn lab_clock_defaults_to_null_and_is_injectable() {
        let t = generate(&SimConfig::tiny(3)).unwrap();
        let lab = Lab::new(&t).unwrap();
        assert_eq!(lab.clock().now_nanos(), 0);
        let manual = obskit::ManualClock::new();
        manual.advance(42);
        let lab = lab.with_clock(&manual);
        assert_eq!(lab.clock().now_nanos(), 42);
    }

    #[test]
    fn output_display_includes_id() {
        let out = ExperimentOutput {
            id: "table1".into(),
            title: "demo".into(),
            text: "body\n".into(),
            json: serde_json::json!({}),
        };
        let s = out.to_string();
        assert!(s.contains("table1"));
        assert!(s.contains("body"));
    }
}
