//! Extension experiments beyond the paper's printed tables:
//!
//! * [`ext_forecast`] — the paper's "second approach" (§VI-A, §VIII):
//!   run-time temperature/power features are *forecast* with AR models
//!   instead of measured, so the predictor can run before execution; the
//!   paper reports the two approaches "achieve similar results".
//! * [`ext_imbalance`] — the §VI-B survey turned into an ablation: the
//!   TwoStage filter vs single-stage training with random under-sampling,
//!   SMOTE, and k-means-guided under-sampling.
//! * [`ext_retrain`] — the paper's operational mode (§VI-A): periodic
//!   retraining every two weeks across the trace, showing prediction
//!   quality stays stable under workload/fault drift.
//! * [`ext_oracle`] — the paper's §VII-D1 check: even an oracle that
//!   picks the best model *per cabinet* barely improves on
//!   GBDT-everywhere.
//! * [`ext_importance`] — GBDT split-count feature importances, the
//!   "model interpretation" the paper alludes to.

use super::{ExperimentOutput, Lab, ModelKind};
use crate::datasets::DsSplit;
use crate::features::FeatureSpec;
use crate::forecast::{apply_forecast_tp, forecast_run_stats};
use crate::report::Table;
use crate::samples::{in_window, labels, LabeledSample};
use crate::twostage::{prepare_with_extractor, run_classifier_observed};
use crate::PredError;
use crate::Result;
use mlkit::dataset::Dataset;
use mlkit::metrics::ConfusionMatrix;
use mlkit::model::Classifier;
use mlkit::sampling::{kmeans_undersample, random_undersample, smote};
use mlkit::scaler::StandardScaler;
use serde_json::json;

const MODEL_SEED: u64 = 7;

/// Known-features vs forecast-features prediction on DS1 (TwoStage+GBDT).
///
/// # Errors
///
/// Propagates pipeline and forecasting errors.
pub fn ext_forecast(lab: &Lab<'_>) -> Result<ExperimentOutput> {
    let split = DsSplit::ds1(lab.trace())?;
    let spec = FeatureSpec::all();
    let prepared = prepare_with_extractor(lab.extractor(), lab.samples(), &split, &spec)?;

    let mut model = ModelKind::Gbdt.build(MODEL_SEED);
    let known = run_classifier_observed(
        &prepared,
        &mut model,
        &mut obskit::Recorder::null(),
        lab.clock(),
    )?;
    let cm_known = known.confusion()?;

    // Re-extract raw stage-2 test features, substitute forecasts for the
    // run-window T/P statistics, and reuse the *same* trained model.
    let raw_test = lab
        .extractor()
        .extract(&prepared.stage2_test_samples, &spec)?;
    let forecasts = forecast_run_stats(
        lab.extractor().query_engine(),
        &prepared.stage2_test_samples,
    )?;
    let swapped = apply_forecast_tp(&raw_test, &spec, &forecasts)?;
    let scaled = prepared.scaler.transform(&swapped)?;
    let proba = model.predict_proba(&scaled)?;

    let n = prepared.test_samples.len();
    let mut predictions = vec![0.0f32; n];
    for (&idx, &p) in prepared.stage2_test_idx.iter().zip(&proba) {
        predictions[idx] = if p >= model.threshold() { 1.0 } else { 0.0 };
    }
    let truth = labels(&prepared.test_samples);
    let cm_forecast = ConfusionMatrix::from_predictions(&truth, &predictions)?;

    let mut table = Table::new(["Features", "Precision", "Recall", "F1"]);
    for (name, cm) in [
        ("Measured (approach 1)", cm_known),
        ("Forecast (approach 2)", cm_forecast),
    ] {
        table.push_row([
            name.to_string(),
            format!("{:.3}", cm.precision()),
            format!("{:.3}", cm.recall()),
            format!("{:.3}", cm.f1()),
        ]);
    }
    let gap = (cm_known.f1() - cm_forecast.f1()).abs();
    let mut text = table.render();
    text.push_str(&format!(
        "\nF1 gap between measured and AR-forecast features: {gap:.3}\n\
         (paper: the two approaches achieve similar results)\n"
    ));
    Ok(ExperimentOutput {
        id: "ext_forecast".into(),
        title: "Measured vs time-series-forecast run features".into(),
        text,
        json: json!({
            "measured_f1": cm_known.f1(),
            "forecast_f1": cm_forecast.f1(),
            "gap": gap,
        }),
    })
}

/// Trains a single-stage GBDT on a (resampled) training dataset and
/// evaluates over the full test set.
fn single_stage(
    train: &Dataset,
    test: &Dataset,
    truth: &[f32],
    clock: &dyn obskit::Clock,
) -> Result<(ConfusionMatrix, std::time::Duration)> {
    // A lighter GBDT than the TwoStage configuration: the raw variant
    // trains on every sample of the window.
    let mut model = mlkit::gbdt::Gbdt::new()
        .n_trees(60)
        .max_depth(5)
        .min_samples_leaf(20)
        .subsample(0.8)
        .pos_weight(2.0)
        .seed(MODEL_SEED);
    let t0 = clock.now_nanos();
    model.fit(train)?;
    let dt = std::time::Duration::from_nanos(clock.now_nanos().saturating_sub(t0));
    let pred = model.predict(test)?;
    Ok((ConfusionMatrix::from_predictions(truth, &pred)?, dt))
}

/// Imbalance-mitigation ablation: TwoStage vs single-stage with raw data,
/// random under-sampling, SMOTE, and k-means under-sampling.
///
/// Uses a shorter training window than DS1 so that the single-stage
/// variants (which must featurise *every* node's samples) stay tractable.
///
/// # Errors
///
/// Propagates pipeline and sampling errors.
pub fn ext_imbalance(lab: &Lab<'_>) -> Result<ExperimentOutput> {
    let days = lab.trace().config().days as u64;
    // Single-stage variants must featurise and fit *every* node's
    // samples, so the window is deliberately shorter than DS1.
    let train_days = (days / 10).max(5);
    let test_days = (days / 21).max(2);
    let start = days.saturating_sub(train_days + test_days + 1) / 2;
    let split = DsSplit::from_days("IMB", lab.trace(), start, train_days, test_days)?;
    let spec = FeatureSpec::all();

    // Full (single-stage) datasets.
    let (ts, te) = split.train_window();
    let (vs, ve) = split.test_window();
    let train_samples: Vec<LabeledSample> = in_window(lab.samples(), ts, te);
    let test_samples: Vec<LabeledSample> = in_window(lab.samples(), vs, ve);
    let train_raw = lab.extractor().extract(&train_samples, &spec)?;
    let scaler = StandardScaler::fit(&train_raw)?;
    let train_full = scaler.transform(&train_raw)?;
    let test_full = scaler.transform(&lab.extractor().extract(&test_samples, &spec)?)?;
    let truth = labels(&test_samples);

    let mut table = Table::new([
        "Strategy",
        "Precision",
        "Recall",
        "F1",
        "Train size",
        "Fit time",
    ]);
    let mut rows = Vec::new();
    let record = |name: &str,
                  cm: ConfusionMatrix,
                  n_train: usize,
                  dt: std::time::Duration,
                  table: &mut Table,
                  rows: &mut Vec<serde_json::Value>| {
        table.push_row([
            name.to_string(),
            format!("{:.3}", cm.precision()),
            format!("{:.3}", cm.recall()),
            format!("{:.3}", cm.f1()),
            format!("{n_train}"),
            format!("{dt:.2?}"),
        ]);
        rows.push(json!({
            "strategy": name, "precision": cm.precision(),
            "recall": cm.recall(), "f1": cm.f1(),
            "train_size": n_train, "fit_time_s": dt.as_secs_f64(),
        }));
    };

    // Raw single-stage (50:1-style imbalance).
    let (cm, dt) = single_stage(&train_full, &test_full, &truth, lab.clock())?;
    record(
        "Single-stage raw",
        cm,
        train_full.len(),
        dt,
        &mut table,
        &mut rows,
    );

    // Resampled variants target the TwoStage-like 2:1 ratio.
    let under = random_undersample(&train_full, 2.0, MODEL_SEED)?;
    let (cm, dt) = single_stage(&under, &test_full, &truth, lab.clock())?;
    record(
        "Random under-sampling",
        cm,
        under.len(),
        dt,
        &mut table,
        &mut rows,
    );

    let sm = smote(&train_full, 2.0, 5, MODEL_SEED)?;
    let (cm, dt) = single_stage(&sm, &test_full, &truth, lab.clock())?;
    record(
        "SMOTE over-sampling",
        cm,
        sm.len(),
        dt,
        &mut table,
        &mut rows,
    );

    // K-means clustering of the majority class is O(n * k * d); shrink
    // the negative pool first so the ablation stays tractable.
    let n_pos = train_full.n_positive().max(1);
    let km_input = if train_full.n_negative() > 5_000 {
        random_undersample(&train_full, 5_000.0 / n_pos as f64, MODEL_SEED ^ 1)?
    } else {
        train_full.clone()
    };
    let km = kmeans_undersample(&km_input, 2.0, MODEL_SEED)?;
    let (cm, dt) = single_stage(&km, &test_full, &truth, lab.clock())?;
    record(
        "K-means under-sampling",
        cm,
        km.len(),
        dt,
        &mut table,
        &mut rows,
    );

    // TwoStage on the same split.
    let prepared = prepare_with_extractor(lab.extractor(), lab.samples(), &split, &spec)?;
    let out = run_classifier_observed(
        &prepared,
        &mut ModelKind::Gbdt.build(MODEL_SEED),
        &mut obskit::Recorder::null(),
        lab.clock(),
    )?;
    record(
        "TwoStage (paper)",
        out.confusion()?,
        prepared.train.len(),
        out.train_time,
        &mut table,
        &mut rows,
    );

    Ok(ExperimentOutput {
        id: "ext_imbalance".into(),
        title: "Imbalance mitigation: TwoStage vs resampling strategies".into(),
        text: table.render(),
        json: json!({ "rows": rows, "split_train_days": train_days }),
    })
}

/// Periodic retraining: slide a (train, test) window across the trace,
/// retraining TwoStage+GBDT for each step — the paper's every-two-weeks
/// operational cadence.
///
/// # Errors
///
/// Propagates pipeline errors (windows with no offender nodes are
/// skipped).
pub fn ext_retrain(lab: &Lab<'_>) -> Result<ExperimentOutput> {
    let days = lab.trace().config().days as u64;
    let train_days = (days / 5).max(5);
    let test_days = (days / 21).max(2);
    let step = test_days.max(1);
    let spec = FeatureSpec::all();
    let mut table = Table::new([
        "Window",
        "Train days",
        "Test days",
        "F1",
        "Precision",
        "Recall",
    ]);
    let mut rows = Vec::new();
    let mut start = 0u64;
    let mut f1s = Vec::new();
    while start + train_days + test_days <= days {
        let split = DsSplit::from_days(
            format!("W{}", start),
            lab.trace(),
            start,
            train_days,
            test_days,
        )?;
        match prepare_with_extractor(lab.extractor(), lab.samples(), &split, &spec) {
            Ok(prepared) => {
                let out = run_classifier_observed(
                    &prepared,
                    &mut ModelKind::Gbdt.build(MODEL_SEED),
                    &mut obskit::Recorder::null(),
                    lab.clock(),
                )?;
                let cm = out.confusion()?;
                table.push_row([
                    format!("day {start}..{}", start + train_days + test_days),
                    format!("{train_days}"),
                    format!("{test_days}"),
                    format!("{:.3}", cm.f1()),
                    format!("{:.3}", cm.precision()),
                    format!("{:.3}", cm.recall()),
                ]);
                rows.push(json!({
                    "start_day": start, "f1": cm.f1(),
                    "precision": cm.precision(), "recall": cm.recall(),
                }));
                f1s.push(cm.f1());
            }
            Err(_) => {
                // No offender nodes yet in this early window; skip.
            }
        }
        start += step;
    }
    let mean_f1 = if f1s.is_empty() {
        0.0
    } else {
        f1s.iter().sum::<f64>() / f1s.len() as f64
    };
    let min_f1 = f1s.iter().copied().fold(f64::INFINITY, f64::min);
    let mut text = table.render();
    text.push_str(&format!(
        "\nmean F1 across {} retraining windows: {mean_f1:.3} (min {min_f1:.3})\n",
        f1s.len()
    ));
    Ok(ExperimentOutput {
        id: "ext_retrain".into(),
        title: "Periodic retraining across the trace".into(),
        text,
        json: json!({ "rows": rows, "mean_f1": mean_f1 }),
    })
}

/// Oracle model selection per cabinet (paper §VII-D1): run all four
/// models on DS1, let an oracle pick the best per cabinet, and compare
/// the oracle's overall F1 to GBDT-everywhere. The paper finds the gain
/// is only ~0.01 — GBDT is near-optimal machine-wide.
///
/// # Errors
///
/// Propagates pipeline errors.
pub fn ext_oracle(lab: &Lab<'_>) -> Result<ExperimentOutput> {
    let split = DsSplit::ds1(lab.trace())?;
    let prepared =
        prepare_with_extractor(lab.extractor(), lab.samples(), &split, &FeatureSpec::all())?;
    let topo = &lab.trace().config().topology;
    let n_cab = topo.n_cabinets() as usize;

    // Run every model once; keep predictions.
    let mut outcomes = Vec::new();
    for kind in ModelKind::all() {
        let out = run_classifier_observed(
            &prepared,
            &mut kind.build(MODEL_SEED),
            &mut obskit::Recorder::null(),
            lab.clock(),
        )?;
        outcomes.push((kind, out));
    }
    let truth = &outcomes[0].1.truth;
    let cabinets: Vec<usize> = prepared
        .test_samples
        .iter()
        .map(|s| topo.cabinet_index(s.node).map(|c| c as usize))
        .collect::<std::result::Result<_, _>>()?;

    // Per-cabinet F1 per model.
    let per_cabinet_f1 = |pred: &[f32]| -> Result<Vec<f64>> {
        let mut cms = vec![ConfusionMatrix::default(); n_cab];
        for (i, &cab) in cabinets.iter().enumerate() {
            let one = ConfusionMatrix::from_predictions(&truth[i..=i], &pred[i..=i])?;
            cms[cab].merge(&one);
        }
        Ok(cms.iter().map(|cm| cm.f1()).collect())
    };
    let f1s: Vec<Vec<f64>> = outcomes
        .iter()
        .map(|(_, out)| per_cabinet_f1(&out.predictions))
        .collect::<Result<_>>()?;

    // Oracle: per cabinet pick the best model; stitch its predictions.
    let mut best_model = vec![0usize; n_cab];
    for cab in 0..n_cab {
        let mut best = 0;
        for (m, f) in f1s.iter().enumerate() {
            if f[cab] > f1s[best][cab] {
                best = m;
            }
        }
        best_model[cab] = best;
    }
    let oracle_pred: Vec<f32> = (0..truth.len())
        .map(|i| outcomes[best_model[cabinets[i]]].1.predictions[i])
        .collect();
    let oracle_cm = ConfusionMatrix::from_predictions(truth, &oracle_pred)?;
    let gbdt_idx = outcomes
        .iter()
        .position(|(k, _)| *k == ModelKind::Gbdt)
        .ok_or_else(|| PredError::InvalidInput {
            reason: "ModelKind::all() does not include Gbdt".into(),
        })?;
    let gbdt_cm = outcomes[gbdt_idx].1.confusion()?;
    let gain = oracle_cm.f1() - gbdt_cm.f1();

    let non_gbdt_cabinets = best_model
        .iter()
        .enumerate()
        .filter(|&(cab, &m)| m != gbdt_idx && f1s[m][cab] > f1s[gbdt_idx][cab])
        .count();
    let text = format!(
        "GBDT everywhere:        F1 = {:.3}\n\
         oracle (best/cabinet):  F1 = {:.3}\n\
         oracle gain: {gain:+.3}   (paper: +0.01 on DS1)\n\
         cabinets where another model strictly beats GBDT: {} of {}\n",
        gbdt_cm.f1(),
        oracle_cm.f1(),
        non_gbdt_cabinets,
        n_cab,
    );
    Ok(ExperimentOutput {
        id: "ext_oracle".into(),
        title: "Oracle per-cabinet model selection vs GBDT everywhere".into(),
        text,
        json: json!({
            "gbdt_f1": gbdt_cm.f1(),
            "oracle_f1": oracle_cm.f1(),
            "gain": gain,
            "non_gbdt_cabinets": non_gbdt_cabinets,
        }),
    })
}

/// GBDT feature importances (split counts) on DS1 — which features the
/// winning model actually uses.
///
/// # Errors
///
/// Propagates pipeline errors.
pub fn ext_importance(lab: &Lab<'_>) -> Result<ExperimentOutput> {
    let split = DsSplit::ds1(lab.trace())?;
    let spec = FeatureSpec::all();
    let prepared = prepare_with_extractor(lab.extractor(), lab.samples(), &split, &spec)?;
    let mut model = mlkit::gbdt::Gbdt::new()
        .n_trees(120)
        .max_depth(5)
        .min_samples_leaf(20)
        .subsample(0.8)
        .pos_weight(2.0)
        .seed(MODEL_SEED);
    model.fit(&prepared.train)?;
    let importances = model
        .feature_importances()
        .ok_or_else(|| PredError::InvalidInput {
            reason: "model has no feature importances despite a successful fit".into(),
        })?;
    let names = prepared.train.feature_names();
    let mut ranked: Vec<(String, u32)> = names
        .iter()
        .cloned()
        .zip(importances.iter().copied())
        .collect();
    ranked.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    let total: u32 = ranked.iter().map(|r| r.1).sum();

    let mut table = Table::new(["Rank", "Feature", "Splits", "Share"]);
    for (rank, (name, count)) in ranked.iter().take(15).enumerate() {
        table.push_row([
            format!("{}", rank + 1),
            name.clone(),
            format!("{count}"),
            format!("{:.1}%", 100.0 * *count as f64 / total.max(1) as f64),
        ]);
    }
    let rows: Vec<serde_json::Value> = ranked
        .iter()
        .map(|(n, c)| json!({ "feature": n, "splits": c }))
        .collect();
    Ok(ExperimentOutput {
        id: "ext_importance".into(),
        title: "GBDT feature importances (split counts, DS1)".into(),
        text: table.render(),
        json: json!({ "rows": rows, "total_splits": total }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use titan_sim::config::SimConfig;
    use titan_sim::engine::generate;
    use titan_sim::trace::TraceSet;

    fn trace() -> TraceSet {
        // Seed 13: under the in-repo RNG streams (see DESIGN.md "Parallel
        // execution & determinism"), seed 3's retrain windows can end up
        // single-class, which the GBDT rightly refuses to train on.
        generate(&SimConfig::tiny(13)).unwrap()
    }

    #[test]
    fn forecast_extension_runs_and_stays_close() {
        let t = trace();
        let lab = Lab::new(&t).unwrap();
        let out = ext_forecast(&lab).unwrap();
        let gap = out.json["gap"].as_f64().unwrap();
        assert!(gap < 0.5, "forecast gap {gap}");
    }

    #[test]
    fn imbalance_extension_produces_five_rows() {
        let t = trace();
        let lab = Lab::new(&t).unwrap();
        let out = ext_imbalance(&lab).unwrap();
        assert_eq!(out.json["rows"].as_array().unwrap().len(), 5);
    }

    #[test]
    fn oracle_extension_gain_is_nonnegative_and_small() {
        let t = trace();
        let lab = Lab::new(&t).unwrap();
        let out = ext_oracle(&lab).unwrap();
        let gain = out.json["gain"].as_f64().unwrap();
        // F1 is not additive over cabinets, so the stitched oracle can in
        // principle dip slightly below GBDT-everywhere; it must stay close.
        assert!(gain > -0.1, "oracle far below GBDT: {gain}");
        assert!(gain < 0.5, "oracle gain suspiciously large: {gain}");
    }

    #[test]
    fn importance_extension_ranks_features() {
        let t = trace();
        let lab = Lab::new(&t).unwrap();
        let out = ext_importance(&lab).unwrap();
        assert!(out.json["total_splits"].as_u64().unwrap() > 0);
        let rows = out.json["rows"].as_array().unwrap();
        assert_eq!(rows.len(), FeatureSpec::all().feature_names().len());
    }

    #[test]
    fn retrain_extension_covers_multiple_windows() {
        let t = trace();
        let lab = Lab::new(&t).unwrap();
        let out = ext_retrain(&lab).unwrap();
        assert!(out.json["rows"].as_array().unwrap().len() >= 2);
    }
}
