//! sbed — the fleet-scale network scoring daemon.
//!
//! `streamd` answers "what would deploying the TwoStage predictor look
//! like?" for an in-process replay; this crate answers it for a
//! *fleet*: many clients streaming launch/SBE events to one scoring
//! service over TCP and getting per-node probabilities back. It
//! provides:
//!
//! * [`wire`] — the length-prefixed binary frame protocol (FNV-1a
//!   checksummed, mirroring the artifact envelope's integrity
//!   conventions), with total, typed, panic-free decoding;
//! * [`session`] — the sequential scoring state machine: admitted
//!   frames in, deterministic response stream out;
//! * [`daemon`] — the TCP server (std blocking I/O, no async runtime):
//!   a sequencer that makes multi-connection serving a pure function
//!   of the request sequence, bounded typed back-pressure, graceful
//!   drain, and request-log recording;
//! * [`replay`] — bit-identical re-scoring of a recorded request log;
//! * [`client`] / [`fleet`] — the wire client, the mock-fleet load
//!   driver with failure-node injection, and seeded synthetic
//!   workloads.
//!
//! The subsystem's contract is *fleet/process parity*: a fleet of
//! connections delivering an event stream scores bit-identically to
//! feeding the same stream through one in-process session — at any
//! worker thread count, any connection count, under overload and
//! injected corruption — and a recorded run replays byte for byte.
//! `tests/sbed_replay_parity.rs` at the workspace root locks both
//! down; `crates/sbed/tests/` holds the wire-corruption battery and
//! the back-pressure/drain suite.

pub mod client;
pub mod daemon;
pub mod fleet;
pub mod replay;
pub mod session;
pub mod wire;

mod error;

pub use error::SbedError;

/// Crate-wide result type.
pub type Result<T> = std::result::Result<T, SbedError>;
