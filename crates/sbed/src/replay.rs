//! Deterministic replay of a recorded request log.
//!
//! The daemon records every *admitted* frame — in admission order, which
//! is request-id order — to a log file. Because the [`ScoreSession`] is
//! a pure function of that sequence, re-feeding the log through a fresh
//! session must reproduce the run exactly: every response byte (checked
//! via the rolling response checksum), the final metrics snapshot, and
//! the report. `repro serve-net --record` runs this check after every
//! recorded run, and the parity suite replays across thread counts.
//!
//! Log format: a 16-byte header — magic `b"SBEDLOG\x01"` then the
//! artifact's schema hash, little-endian, so a log is never replayed
//! against a different model — followed by the admitted frames,
//! concatenated verbatim.

use crate::session::ScoreSession;
use crate::wire::{self, EncodedResponse, ReportPayload};
use crate::{Result, SbedError};
use std::io::Write;
use std::path::Path;
use streamd::artifact::PipelineArtifact;
use streamd::serve::ServeConfig;
use titan_sim::topology::Topology;

/// Log-file magic (version byte included).
pub const LOG_MAGIC: [u8; 8] = *b"SBEDLOG\x01";

/// The log header for an artifact: magic plus schema hash.
pub fn log_header(schema_hash: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    out.extend_from_slice(&LOG_MAGIC);
    out.extend_from_slice(&schema_hash.to_le_bytes());
    out
}

/// An incremental log writer the daemon appends admitted frames to.
#[derive(Debug)]
pub struct LogWriter {
    file: std::fs::File,
}

impl LogWriter {
    /// Creates (truncates) the log and writes its header.
    ///
    /// # Errors
    ///
    /// File I/O.
    pub fn create(path: &Path, schema_hash: u64) -> Result<LogWriter> {
        let mut file = std::fs::File::create(path).map_err(|e| SbedError::Io {
            context: format!("creating request log {}", path.display()),
            source: e,
        })?;
        file.write_all(&log_header(schema_hash))
            .map_err(|e| SbedError::Io {
                context: "writing request-log header".into(),
                source: e,
            })?;
        Ok(LogWriter { file })
    }

    /// Appends one admitted frame.
    ///
    /// # Errors
    ///
    /// File I/O.
    pub fn append(&mut self, frame: &[u8]) -> Result<()> {
        self.file.write_all(frame).map_err(|e| SbedError::Io {
            context: "appending to request log".into(),
            source: e,
        })
    }
}

/// What replaying a log produced.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// Every response the session emitted, in emission order.
    pub responses: Vec<EncodedResponse>,
    /// The final metrics snapshot.
    pub snapshot: String,
    /// The rolling checksum over every emitted response frame.
    pub response_fnv: u64,
    /// The end-of-stream report.
    pub report: ReportPayload,
    /// Frames admitted from the log.
    pub n_frames: u64,
}

/// Replays a recorded log (as bytes) through a fresh session.
///
/// # Errors
///
/// A malformed log or schema-hash mismatch ([`SbedError::Payload`] /
/// [`SbedError::Protocol`]), frame decode errors, and scoring-core
/// failures.
pub fn replay_log_bytes(
    bytes: &[u8],
    artifact: &PipelineArtifact,
    cfg: &ServeConfig,
    topology: Topology,
) -> Result<ReplayOutcome> {
    let header = bytes.get(..16).ok_or(SbedError::Truncated {
        what: "log header",
        need: 16,
        have: bytes.len(),
    })?;
    let (magic, hash_b) = header.split_at(8);
    if magic != LOG_MAGIC {
        return Err(SbedError::Payload {
            reason: "not an sbed request log".into(),
        });
    }
    let mut hash = [0u8; 8];
    hash.copy_from_slice(hash_b);
    let logged_hash = u64::from_le_bytes(hash);
    if logged_hash != artifact.schema_hash() {
        return Err(SbedError::Protocol {
            reason: format!(
                "log was recorded against schema {logged_hash:#018x}, artifact is {:#018x}",
                artifact.schema_hash()
            ),
        });
    }
    let mut session = ScoreSession::new(artifact, cfg, topology)?;
    let mut responses = Vec::new();
    let mut rest = bytes.get(16..).unwrap_or(&[]);
    let mut n_frames = 0u64;
    while !rest.is_empty() {
        let (frame, used) = wire::decode_frame(rest)?;
        rest = rest.get(used..).unwrap_or(&[]);
        n_frames += 1;
        // A logged SWAP frame marks where the live engine hot-swapped
        // its artifact; replaying it at the same position reproduces
        // every post-swap score. The engine validated before logging,
        // so a failure here means the log or artifact chain is damaged.
        if frame.header.kind == wire::KIND_SWAP {
            let swap = session.prepare_swap(&frame.payload)?;
            let mut rs = session.apply_swap(swap)?;
            responses.append(&mut rs);
            continue;
        }
        let mut rs = session.handle(frame.header.kind, frame.header.request_id, &frame.payload)?;
        responses.append(&mut rs);
    }
    // A log that ends without a FINISH frame was a drained run: apply
    // the same finalisation the live daemon did.
    if !session.finished() {
        let mut rs = session.finalize()?;
        responses.append(&mut rs);
    }
    Ok(ReplayOutcome {
        snapshot: session.snapshot_json(),
        response_fnv: session.response_fnv(),
        report: session.report(),
        responses,
        n_frames,
    })
}

/// Replays a recorded log file through a fresh session.
///
/// # Errors
///
/// File I/O plus everything [`replay_log_bytes`] rejects.
pub fn replay_log_file(
    path: &Path,
    artifact: &PipelineArtifact,
    cfg: &ServeConfig,
    topology: Topology,
) -> Result<ReplayOutcome> {
    let bytes = std::fs::read(path).map_err(|e| SbedError::Io {
        context: format!("reading request log {}", path.display()),
        source: e,
    })?;
    replay_log_bytes(&bytes, artifact, cfg, topology)
}
