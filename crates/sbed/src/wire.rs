//! The sbed wire protocol: length-prefixed, checksummed binary frames.
//!
//! Every message — request or response — is one frame:
//!
//! | offset | size | field                                      |
//! |-------:|-----:|--------------------------------------------|
//! |      0 |    4 | magic `b"SBEW"`                            |
//! |      4 |    2 | protocol version, little-endian (`1`)      |
//! |      6 |    2 | frame kind, little-endian                  |
//! |      8 |    8 | request id, little-endian                  |
//! |     16 |    4 | payload length, little-endian (≤ 1 MiB)    |
//! |     20 |    8 | FNV-1a checksum of the payload             |
//! |     28 |  len | payload                                    |
//!
//! The checksum is `mlkit::hash::fnv1a64` — the same hash the on-disk
//! artifact envelope uses, so a daemon and its artifacts share one
//! integrity primitive. All integers are little-endian; floats
//! travel as their IEEE-754 bit patterns, so scores cross the wire
//! bit-exactly.
//!
//! The request id doubles as the *admission sequence number*: the
//! daemon scores request `n` only after `0..n` have been admitted,
//! which is what makes a multi-connection fleet bit-identical to a
//! single in-process replay (see [`crate::daemon`]).
//!
//! Decoding is total: every function here returns a typed
//! [`SbedError`] on damaged input and never panics — the corruption
//! battery (`tests/wire_corruption.rs`) drives every truncation prefix
//! and damage mode through it, plus a proptest that random byte flips
//! cannot panic the decoder.

use crate::{Result, SbedError};
use mlkit::hash::fnv1a64;

/// Frame magic: the first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"SBEW";
/// The protocol version this build speaks.
pub const VERSION: u16 = 1;
/// Fixed frame header size in bytes.
pub const HEADER_LEN: usize = 28;
/// Payload length cap: a frame larger than this is rejected unread.
pub const MAX_PAYLOAD: u32 = 1 << 20;
/// Node-count cap inside a launch event (a Titan-scale allocation is
/// ~19k nodes; anything near the payload cap is hostile input).
pub const MAX_EVENT_NODES: u32 = 1 << 16;

/// Request: one stream event (tick / launch / SBE visibility).
pub const KIND_EVENT: u16 = 0x0001;
/// Request: end of stream — flush, report, and (by default) shut down.
pub const KIND_FINISH: u16 = 0x0002;
/// Control: hot-swap the serving artifact at this admission sequence
/// number; the payload is a full `mlkit::artifact` envelope. Never
/// accepted from the network — connection readers admit only
/// [`KIND_EVENT`] / [`KIND_FINISH`] — but it appears in recorded
/// request logs so a replay reproduces the swap at the same boundary.
pub const KIND_SWAP: u16 = 0x0003;
/// Response: event admitted.
pub const KIND_ACK: u16 = 0x8001;
/// Response: per-node scores for one launch.
pub const KIND_SCORES: u16 = 0x8002;
/// Response: typed rejection; the connection stays usable.
pub const KIND_ERROR: u16 = 0x8003;
/// Response: end-of-stream report (answers [`KIND_FINISH`]).
pub const KIND_REPORT: u16 = 0x8004;

/// Error-response code: the frame or payload was malformed.
pub const ERR_MALFORMED: u16 = 1;
/// Error-response code: a bounded queue was full; retransmit later.
pub const ERR_OVERLOAD: u16 = 2;
/// Error-response code: the daemon is draining; no new work.
pub const ERR_DRAINING: u16 = 3;
/// Error-response code: the daemon failed internally.
pub const ERR_INTERNAL: u16 = 4;
/// Error-response code: a well-formed event the session refuses
/// (unknown node, duplicate aprun, minute out of order, stale sequence).
pub const ERR_REJECTED: u16 = 5;

/// A decoded frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Frame kind (`KIND_*`).
    pub kind: u16,
    /// Request id / admission sequence number.
    pub request_id: u64,
    /// Payload length in bytes.
    pub len: u32,
    /// FNV-1a checksum of the payload.
    pub checksum: u64,
}

/// A decoded frame: validated header plus raw payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The header.
    pub header: FrameHeader,
    /// The checksum-verified payload.
    pub payload: Vec<u8>,
}

/// One response the session emitted, ready to write: the encoded frame
/// plus the routing facts the daemon needs (which request it answers,
/// and whether it is that request's final response — the signal that
/// releases the requester's in-flight slot).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedResponse {
    /// The request this response answers.
    pub request_id: u64,
    /// Response kind (`KIND_ACK` / `KIND_SCORES` / `KIND_ERROR` /
    /// `KIND_REPORT`).
    pub kind: u16,
    /// Whether this is the request's final response (a launch's ACK is
    /// not — its SCORES arrives at flush time).
    pub last: bool,
    /// The complete encoded frame.
    pub bytes: Vec<u8>,
}

fn le2(s: &[u8]) -> [u8; 2] {
    let mut a = [0u8; 2];
    if s.len() == 2 {
        a.copy_from_slice(s);
    }
    a
}

fn le4(s: &[u8]) -> [u8; 4] {
    let mut a = [0u8; 4];
    if s.len() == 4 {
        a.copy_from_slice(s);
    }
    a
}

fn le8(s: &[u8]) -> [u8; 8] {
    let mut a = [0u8; 8];
    if s.len() == 8 {
        a.copy_from_slice(s);
    }
    a
}

/// A take-style cursor over payload bytes: every read names the field
/// it is completing, so truncation errors say exactly what was cut.
struct Cur<'a> {
    buf: &'a [u8],
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8]) -> Cur<'a> {
        Cur { buf }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8]> {
        if self.buf.len() < n {
            return Err(SbedError::Truncated {
                what,
                need: n,
                have: self.buf.len(),
            });
        }
        // detlint: allow(D006) reason=split_at is guarded by the length check above
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8> {
        Ok(self.take(1, what)?.first().copied().unwrap_or(0))
    }

    fn u16(&mut self, what: &'static str) -> Result<u16> {
        Ok(u16::from_le_bytes(le2(self.take(2, what)?)))
    }

    fn u32(&mut self, what: &'static str) -> Result<u32> {
        Ok(u32::from_le_bytes(le4(self.take(4, what)?)))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64> {
        Ok(u64::from_le_bytes(le8(self.take(8, what)?)))
    }

    fn f32(&mut self, what: &'static str) -> Result<f32> {
        Ok(f32::from_bits(self.u32(what)?))
    }

    fn f64(&mut self, what: &'static str) -> Result<f64> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    fn finish(self, what: &'static str) -> Result<()> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(SbedError::Payload {
                reason: format!("{} trailing bytes after {what}", self.buf.len()),
            })
        }
    }
}

/// Splits a header's raw fields out without validating anything — the
/// server's best-effort view of a damaged header, used to echo the
/// request id in an error response and to attempt a payload-length
/// resync.
pub fn header_fields(hdr: &[u8; HEADER_LEN]) -> FrameHeader {
    let (_magic_version, rest) = hdr.split_at(6);
    let (kind_b, rest) = rest.split_at(2);
    let (rid_b, rest) = rest.split_at(8);
    let (len_b, csum_b) = rest.split_at(4);
    FrameHeader {
        kind: u16::from_le_bytes(le2(kind_b)),
        request_id: u64::from_le_bytes(le8(rid_b)),
        len: u32::from_le_bytes(le4(len_b)),
        checksum: u64::from_le_bytes(le8(csum_b)),
    }
}

/// Validates a complete 28-byte header: magic, version, payload cap.
/// Kind is *not* checked here — an unknown kind still has a trustable
/// length, so the server can skip its payload and answer with a typed
/// error instead of desynchronising.
///
/// # Errors
///
/// [`SbedError::BadMagic`], [`SbedError::Version`],
/// [`SbedError::Oversize`].
pub fn validate_header(hdr: &[u8; HEADER_LEN]) -> Result<FrameHeader> {
    let (magic_b, rest) = hdr.split_at(4);
    if magic_b != MAGIC {
        let mut found = [0u8; 4];
        found.copy_from_slice(magic_b);
        return Err(SbedError::BadMagic { found });
    }
    let (version_b, _) = rest.split_at(2);
    let version = u16::from_le_bytes(le2(version_b));
    if version != VERSION {
        return Err(SbedError::Version {
            found: version,
            supported: VERSION,
        });
    }
    let fields = header_fields(hdr);
    if fields.len > MAX_PAYLOAD {
        return Err(SbedError::Oversize {
            len: fields.len,
            max: MAX_PAYLOAD,
        });
    }
    Ok(fields)
}

/// Whether `kind` is a kind this protocol version defines.
pub fn known_kind(kind: u16) -> bool {
    matches!(
        kind,
        KIND_EVENT | KIND_FINISH | KIND_SWAP | KIND_ACK | KIND_SCORES | KIND_ERROR | KIND_REPORT
    )
}

/// Decodes one frame from the front of `bytes`, returning the frame and
/// the number of bytes it consumed. Fully strict: header validation,
/// checksum verification, and kind check all apply.
///
/// # Errors
///
/// A typed [`SbedError`] for every damage mode; never panics.
pub fn decode_frame(bytes: &[u8]) -> Result<(Frame, usize)> {
    let mut cur = Cur::new(bytes);
    // Field-by-field takes so a truncated header names the exact field
    // that was cut, mirroring the artifact envelope's error style.
    cur.take(4, "frame magic")?;
    cur.take(2, "protocol version")?;
    cur.take(2, "frame kind")?;
    cur.take(8, "request id")?;
    cur.take(4, "payload length")?;
    cur.take(8, "payload checksum")?;
    let mut hdr = [0u8; HEADER_LEN];
    match bytes.get(..HEADER_LEN) {
        Some(h) => hdr.copy_from_slice(h),
        None => {
            return Err(SbedError::Truncated {
                what: "frame header",
                need: HEADER_LEN,
                have: bytes.len(),
            })
        }
    }
    let fields = validate_header(&hdr)?;
    let payload = cur.take(fields.len as usize, "payload")?;
    let computed = fnv1a64(payload);
    if computed != fields.checksum {
        return Err(SbedError::Checksum {
            stored: fields.checksum,
            computed,
        });
    }
    if !known_kind(fields.kind) {
        return Err(SbedError::UnknownKind { kind: fields.kind });
    }
    Ok((
        Frame {
            header: fields,
            payload: payload.to_vec(),
        },
        HEADER_LEN + fields.len as usize,
    ))
}

/// Encodes one frame. The checksum is computed here; this is the
/// canonical encoding, byte-identical for equal
/// `(kind, request_id, payload)`.
pub fn encode_frame(kind: u16, request_id: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&kind.to_le_bytes());
    out.extend_from_slice(&request_id.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// One stream event as it travels on the wire — the network analogue of
/// `titan_sim::events::TraceEvent`, carrying launch facts by value
/// (telemetry windows never travel; network artifacts are trained with
/// `FeatureSpec::no_telemetry()`).
#[derive(Debug, Clone, PartialEq)]
pub enum WireEvent {
    /// A minute boundary.
    Tick {
        /// The minute now starting.
        minute: u64,
    },
    /// An application launch.
    Launch {
        /// Launch minute.
        minute: u64,
        /// Application-run id, unique per launch.
        aprun: u32,
        /// Application id.
        app: u32,
        /// Scheduled runtime in minutes.
        runtime_min: u64,
        /// Aggregate GPU core utilisation.
        core_util: f64,
        /// Aggregate GPU memory utilisation.
        mem_util: f64,
        /// Allocated node ids, allocation order.
        nodes: Vec<u32>,
    },
    /// A job-boundary SBE snapshot delta.
    Sbe {
        /// Minute the delta becomes visible.
        minute: u64,
        /// The node.
        node: u32,
        /// The application.
        app: u32,
        /// SBE count delta.
        count: u32,
    },
}

const TAG_TICK: u8 = 0;
const TAG_LAUNCH: u8 = 1;
const TAG_SBE: u8 = 2;

impl WireEvent {
    /// The event's minute.
    pub fn minute(&self) -> u64 {
        match self {
            WireEvent::Tick { minute }
            | WireEvent::Launch { minute, .. }
            | WireEvent::Sbe { minute, .. } => *minute,
        }
    }

    /// Encodes the event payload (frame body for a [`KIND_EVENT`]).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            WireEvent::Tick { minute } => {
                out.push(TAG_TICK);
                out.extend_from_slice(&minute.to_le_bytes());
            }
            WireEvent::Launch {
                minute,
                aprun,
                app,
                runtime_min,
                core_util,
                mem_util,
                nodes,
            } => {
                out.push(TAG_LAUNCH);
                out.extend_from_slice(&minute.to_le_bytes());
                out.extend_from_slice(&aprun.to_le_bytes());
                out.extend_from_slice(&app.to_le_bytes());
                out.extend_from_slice(&runtime_min.to_le_bytes());
                out.extend_from_slice(&core_util.to_bits().to_le_bytes());
                out.extend_from_slice(&mem_util.to_bits().to_le_bytes());
                out.extend_from_slice(&(nodes.len() as u32).to_le_bytes());
                for n in nodes {
                    out.extend_from_slice(&n.to_le_bytes());
                }
            }
            WireEvent::Sbe {
                minute,
                node,
                app,
                count,
            } => {
                out.push(TAG_SBE);
                out.extend_from_slice(&minute.to_le_bytes());
                out.extend_from_slice(&node.to_le_bytes());
                out.extend_from_slice(&app.to_le_bytes());
                out.extend_from_slice(&count.to_le_bytes());
            }
        }
        out
    }

    /// Decodes an event payload. Trailing bytes are an error: a frame
    /// carries exactly one event.
    ///
    /// # Errors
    ///
    /// [`SbedError::Truncated`] / [`SbedError::Payload`]; never panics.
    pub fn decode(payload: &[u8]) -> Result<WireEvent> {
        let mut cur = Cur::new(payload);
        let tag = cur.u8("event tag")?;
        let ev = match tag {
            TAG_TICK => WireEvent::Tick {
                minute: cur.u64("tick minute")?,
            },
            TAG_LAUNCH => {
                let minute = cur.u64("launch minute")?;
                let aprun = cur.u32("launch aprun")?;
                let app = cur.u32("launch app")?;
                let runtime_min = cur.u64("launch runtime")?;
                let core_util = cur.f64("launch core util")?;
                let mem_util = cur.f64("launch mem util")?;
                let n_nodes = cur.u32("launch node count")?;
                if n_nodes == 0 {
                    return Err(SbedError::Payload {
                        reason: "launch allocates zero nodes".into(),
                    });
                }
                if n_nodes > MAX_EVENT_NODES {
                    return Err(SbedError::Payload {
                        reason: format!(
                            "launch node count {n_nodes} exceeds cap {MAX_EVENT_NODES}"
                        ),
                    });
                }
                let mut nodes = Vec::with_capacity(n_nodes as usize);
                for _ in 0..n_nodes {
                    nodes.push(cur.u32("launch node id")?);
                }
                WireEvent::Launch {
                    minute,
                    aprun,
                    app,
                    runtime_min,
                    core_util,
                    mem_util,
                    nodes,
                }
            }
            TAG_SBE => WireEvent::Sbe {
                minute: cur.u64("sbe minute")?,
                node: cur.u32("sbe node")?,
                app: cur.u32("sbe app")?,
                count: cur.u32("sbe count")?,
            },
            other => {
                return Err(SbedError::Payload {
                    reason: format!("unknown event tag {other}"),
                })
            }
        };
        cur.finish("event")?;
        Ok(ev)
    }
}

/// One node's entry inside a scores response.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreEntry {
    /// The node.
    pub node: u32,
    /// Predicted-SBE probability (bit-exact: travels as IEEE-754 bits).
    pub probability: f32,
    /// Hard decision at the model threshold.
    pub predicted: bool,
    /// Whether stage 2 scored the node (false = stage-1 filtered).
    pub stage2: bool,
    /// Mitigation decision: 0 none, 1 shorten checkpoint, 2 drain node.
    pub decision: u8,
}

/// Payload of a [`KIND_SCORES`] response: every node of one launch.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoresPayload {
    /// Launch minute.
    pub minute: u64,
    /// The application run the scores answer.
    pub aprun: u32,
    /// Per-node entries, emission order (sorted node order for scored
    /// launches; empty for launches outside the scoring window).
    pub entries: Vec<ScoreEntry>,
}

const FLAG_PREDICTED: u8 = 1 << 0;
const FLAG_STAGE2: u8 = 1 << 1;
const DECISION_SHIFT: u8 = 2;

impl ScoresPayload {
    /// Encodes the payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.entries.len() * 9);
        out.extend_from_slice(&self.minute.to_le_bytes());
        out.extend_from_slice(&self.aprun.to_le_bytes());
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for e in &self.entries {
            out.extend_from_slice(&e.node.to_le_bytes());
            out.extend_from_slice(&e.probability.to_bits().to_le_bytes());
            let mut flags = 0u8;
            if e.predicted {
                flags |= FLAG_PREDICTED;
            }
            if e.stage2 {
                flags |= FLAG_STAGE2;
            }
            flags |= (e.decision & 0b11) << DECISION_SHIFT;
            out.push(flags);
        }
        out
    }

    /// Decodes the payload.
    ///
    /// # Errors
    ///
    /// [`SbedError::Truncated`] / [`SbedError::Payload`]; never panics.
    pub fn decode(payload: &[u8]) -> Result<ScoresPayload> {
        let mut cur = Cur::new(payload);
        let minute = cur.u64("scores minute")?;
        let aprun = cur.u32("scores aprun")?;
        let n = cur.u32("scores entry count")?;
        if n > MAX_EVENT_NODES {
            return Err(SbedError::Payload {
                reason: format!("scores entry count {n} exceeds cap {MAX_EVENT_NODES}"),
            });
        }
        let mut entries = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let node = cur.u32("score node")?;
            let probability = cur.f32("score probability")?;
            let flags = cur.u8("score flags")?;
            entries.push(ScoreEntry {
                node,
                probability,
                predicted: flags & FLAG_PREDICTED != 0,
                stage2: flags & FLAG_STAGE2 != 0,
                decision: (flags >> DECISION_SHIFT) & 0b11,
            });
        }
        cur.finish("scores")?;
        Ok(ScoresPayload {
            minute,
            aprun,
            entries,
        })
    }
}

/// Payload of a [`KIND_ERROR`] response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorPayload {
    /// `ERR_*` code.
    pub code: u16,
    /// Human-readable detail.
    pub message: String,
}

impl ErrorPayload {
    /// Encodes the payload.
    pub fn encode(&self) -> Vec<u8> {
        let msg = self.message.as_bytes();
        let mut out = Vec::with_capacity(6 + msg.len());
        out.extend_from_slice(&self.code.to_le_bytes());
        out.extend_from_slice(&(msg.len() as u32).to_le_bytes());
        out.extend_from_slice(msg);
        out
    }

    /// Decodes the payload.
    ///
    /// # Errors
    ///
    /// [`SbedError::Truncated`] / [`SbedError::Payload`]; never panics.
    pub fn decode(payload: &[u8]) -> Result<ErrorPayload> {
        let mut cur = Cur::new(payload);
        let code = cur.u16("error code")?;
        let len = cur.u32("error message length")?;
        let msg = cur.take(len as usize, "error message")?;
        cur.finish("error")?;
        Ok(ErrorPayload {
            code,
            message: String::from_utf8_lossy(msg).into_owned(),
        })
    }
}

/// Payload of a [`KIND_REPORT`] response: the session's deterministic
/// end-of-stream summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReportPayload {
    /// Events admitted (ticks + launches + SBE deltas).
    pub n_events: u64,
    /// Score requests issued (launch-nodes inside the window).
    pub n_requests: u64,
    /// Requests that reached the stage-2 classifier.
    pub n_stage2: u64,
    /// Batches flushed.
    pub n_batches: u64,
    /// Alerts (mitigation decisions) emitted.
    pub n_alerts: u64,
    /// FNV-1a checksum of the final obskit metrics snapshot JSON —
    /// byte-stability of the whole metrics surface in eight bytes.
    pub snapshot_fnv: u64,
    /// Hot swaps committed during the run.
    pub n_swaps: u64,
    /// The serving generation at end of stream (0 when no swap ever
    /// committed).
    pub generation: u32,
}

impl ReportPayload {
    /// Encodes the payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(60);
        for v in [
            self.n_events,
            self.n_requests,
            self.n_stage2,
            self.n_batches,
            self.n_alerts,
            self.snapshot_fnv,
            self.n_swaps,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&self.generation.to_le_bytes());
        out
    }

    /// Decodes the payload.
    ///
    /// # Errors
    ///
    /// [`SbedError::Truncated`] / [`SbedError::Payload`]; never panics.
    pub fn decode(payload: &[u8]) -> Result<ReportPayload> {
        let mut cur = Cur::new(payload);
        let r = ReportPayload {
            n_events: cur.u64("report events")?,
            n_requests: cur.u64("report requests")?,
            n_stage2: cur.u64("report stage2")?,
            n_batches: cur.u64("report batches")?,
            n_alerts: cur.u64("report alerts")?,
            snapshot_fnv: cur.u64("report snapshot checksum")?,
            n_swaps: cur.u64("report swap count")?,
            generation: cur.u32("report generation")?,
        };
        cur.finish("report")?;
        Ok(r)
    }
}

/// Maps an [`SbedError`] onto the wire error code a daemon answers
/// with.
pub fn error_code(e: &SbedError) -> u16 {
    match e {
        SbedError::Truncated { .. }
        | SbedError::BadMagic { .. }
        | SbedError::Version { .. }
        | SbedError::UnknownKind { .. }
        | SbedError::Oversize { .. }
        | SbedError::Checksum { .. }
        | SbedError::Payload { .. } => ERR_MALFORMED,
        SbedError::Overload { .. } => ERR_OVERLOAD,
        SbedError::Draining => ERR_DRAINING,
        _ => ERR_INTERNAL,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn launch() -> WireEvent {
        WireEvent::Launch {
            minute: 61,
            aprun: 7,
            app: 3,
            runtime_min: 45,
            core_util: 0.625,
            mem_util: 0.25,
            nodes: vec![4, 1, 9],
        }
    }

    #[test]
    fn frame_round_trips() {
        let payload = launch().encode();
        let bytes = encode_frame(KIND_EVENT, 42, &payload);
        let (frame, used) = decode_frame(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(frame.header.kind, KIND_EVENT);
        assert_eq!(frame.header.request_id, 42);
        assert_eq!(frame.payload, payload);
        assert_eq!(WireEvent::decode(&frame.payload).unwrap(), launch());
    }

    #[test]
    fn events_round_trip() {
        for ev in [
            WireEvent::Tick { minute: 0 },
            WireEvent::Tick { minute: u64::MAX },
            launch(),
            WireEvent::Sbe {
                minute: 9,
                node: 3,
                app: 2,
                count: 11,
            },
        ] {
            assert_eq!(WireEvent::decode(&ev.encode()).unwrap(), ev);
        }
    }

    #[test]
    fn scores_round_trip_bit_exact() {
        let p = ScoresPayload {
            minute: 100,
            aprun: 5,
            entries: vec![
                ScoreEntry {
                    node: 1,
                    probability: 0.123_456_79,
                    predicted: true,
                    stage2: true,
                    decision: 2,
                },
                ScoreEntry {
                    node: 2,
                    probability: 0.0,
                    predicted: false,
                    stage2: false,
                    decision: 0,
                },
            ],
        };
        let d = ScoresPayload::decode(&p.encode()).unwrap();
        assert_eq!(d, p);
        assert_eq!(
            d.entries[0].probability.to_bits(),
            p.entries[0].probability.to_bits()
        );
    }

    #[test]
    fn error_and_report_round_trip() {
        let e = ErrorPayload {
            code: ERR_OVERLOAD,
            message: "queue full (8/8)".into(),
        };
        assert_eq!(ErrorPayload::decode(&e.encode()).unwrap(), e);
        let r = ReportPayload {
            n_events: 1,
            n_requests: 2,
            n_stage2: 3,
            n_batches: 4,
            n_alerts: 5,
            snapshot_fnv: 0xdead_beef,
            n_swaps: 2,
            generation: 2,
        };
        assert_eq!(ReportPayload::decode(&r.encode()).unwrap(), r);
    }

    #[test]
    fn trailing_bytes_are_typed_errors() {
        let mut payload = WireEvent::Tick { minute: 3 }.encode();
        payload.push(0);
        assert!(matches!(
            WireEvent::decode(&payload),
            Err(SbedError::Payload { .. })
        ));
    }

    #[test]
    fn error_codes_partition_damage() {
        assert_eq!(
            error_code(&SbedError::BadMagic { found: [0; 4] }),
            ERR_MALFORMED
        );
        assert_eq!(
            error_code(&SbedError::Checksum {
                stored: 0,
                computed: 1
            }),
            ERR_MALFORMED
        );
        assert_eq!(
            error_code(&SbedError::Overload {
                queued: 1,
                capacity: 1
            }),
            ERR_OVERLOAD
        );
        assert_eq!(error_code(&SbedError::Draining), ERR_DRAINING);
        assert_eq!(
            error_code(&SbedError::Internal { reason: "x".into() }),
            ERR_INTERNAL
        );
    }
}
