//! Seeded synthetic event streams for fleet-scale load runs.
//!
//! [`synth_events`] produces a minute-ordered [`WireEvent`] stream —
//! tick, that minute's launches, then its SBE deltas, exactly the
//! discipline [`crate::session::ScoreSession`] validates — from a
//! seeded RNG, so a load run's inputs (and therefore, through the
//! sequenced daemon, its outputs) are reproducible from the config
//! alone. The same stream drives the saturation bench, the replay
//! parity suite, and `repro fleet`.

use crate::wire::WireEvent;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of a synthetic fleet workload.
#[derive(Debug, Clone, Copy)]
pub struct SynthConfig {
    /// RNG seed: same seed, same stream, byte for byte.
    pub seed: u64,
    /// Node universe (must not exceed the serving topology's).
    pub n_nodes: u32,
    /// Simulated minutes.
    pub minutes: u64,
    /// Launches per minute.
    pub launches_per_min: u32,
    /// Largest allocation a launch may request.
    pub max_nodes_per_launch: u32,
    /// Distinct applications.
    pub n_apps: u32,
    /// SBE visibility deltas per minute.
    pub sbe_per_min: u32,
}

impl SynthConfig {
    /// A small smoke-test workload on `n_nodes` nodes.
    pub fn demo(seed: u64, n_nodes: u32) -> SynthConfig {
        SynthConfig {
            seed,
            n_nodes,
            minutes: 30,
            launches_per_min: 4,
            max_nodes_per_launch: 8,
            n_apps: 12,
            sbe_per_min: 2,
        }
    }

    /// Total events the stream will contain (ticks + launches + SBE
    /// deltas), which is also the FINISH frame's sequence number.
    pub fn n_events(&self) -> u64 {
        self.minutes * (1 + self.launches_per_min as u64 + self.sbe_per_min as u64)
    }
}

/// Generates the deterministic event stream for `cfg`.
///
/// Launch allocations are consecutive node blocks (wrapping at the
/// node universe), so every allocation is duplicate-free; apruns are a
/// global counter starting at 1, so each is unique.
pub fn synth_events(cfg: &SynthConfig) -> Vec<WireEvent> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n_nodes = cfg.n_nodes.max(1);
    let mut events = Vec::with_capacity(cfg.n_events() as usize);
    let mut next_aprun = 1u32;
    for minute in 0..cfg.minutes {
        events.push(WireEvent::Tick { minute });
        for _ in 0..cfg.launches_per_min {
            let width = cfg.max_nodes_per_launch.clamp(1, n_nodes);
            let k = if width > 1 {
                rng.gen_range(1..=width)
            } else {
                1
            };
            let start = rng.gen_range(0..n_nodes);
            let nodes: Vec<u32> = (0..k).map(|i| (start + i) % n_nodes).collect();
            events.push(WireEvent::Launch {
                minute,
                aprun: next_aprun,
                app: rng.gen_range(0..cfg.n_apps.max(1)),
                runtime_min: rng.gen_range(5..180),
                core_util: rng.gen_range(0.05..0.95),
                mem_util: rng.gen_range(0.05..0.95),
                nodes,
            });
            next_aprun += 1;
        }
        for _ in 0..cfg.sbe_per_min {
            events.push(WireEvent::Sbe {
                minute,
                node: rng.gen_range(0..n_nodes),
                app: rng.gen_range(0..cfg.n_apps.max(1)),
                count: rng.gen_range(1..4),
            });
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synth_is_seed_deterministic() {
        let cfg = SynthConfig::demo(7, 64);
        let a = synth_events(&cfg);
        let b = synth_events(&cfg);
        assert_eq!(a, b);
        let c = synth_events(&SynthConfig { seed: 8, ..cfg });
        assert_ne!(a, c);
    }

    #[test]
    fn synth_respects_shape_and_discipline() {
        let cfg = SynthConfig::demo(3, 16);
        let events = synth_events(&cfg);
        assert_eq!(events.len() as u64, cfg.n_events());
        let mut current = None;
        let mut apruns = std::collections::BTreeSet::new();
        for ev in &events {
            match ev {
                WireEvent::Tick { minute } => {
                    assert!(current.is_none_or(|m| *minute > m));
                    current = Some(*minute);
                }
                WireEvent::Launch {
                    minute,
                    aprun,
                    nodes,
                    ..
                } => {
                    assert_eq!(Some(*minute), current);
                    assert!(apruns.insert(*aprun), "duplicate aprun {aprun}");
                    assert!(!nodes.is_empty());
                    let mut sorted = nodes.clone();
                    sorted.sort_unstable();
                    sorted.dedup();
                    assert_eq!(sorted.len(), nodes.len(), "allocation repeats a node");
                    assert!(nodes.iter().all(|&n| n < cfg.n_nodes));
                }
                WireEvent::Sbe { minute, node, .. } => {
                    assert_eq!(Some(*minute), current);
                    assert!(*node < cfg.n_nodes);
                }
            }
        }
    }
}
