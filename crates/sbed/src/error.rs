//! The crate error type.
//!
//! Wire-level damage (truncation, bad magic, checksum mismatch, …) gets
//! its own variant per damage mode so the corruption test battery can
//! assert *which* rejection a mangled frame produced, and so the daemon
//! can map each one onto a typed error response without stringly
//! matching. Transport and scoring failures wrap their sources.

use streamd::StreamError;

/// Everything that can go wrong speaking or serving the sbed protocol.
#[derive(Debug)]
#[non_exhaustive]
pub enum SbedError {
    /// Ran out of bytes mid-field: `what` names the field being decoded.
    Truncated {
        /// The field that could not be completed.
        what: &'static str,
        /// Bytes the field needs.
        need: usize,
        /// Bytes that were available.
        have: usize,
    },
    /// The frame does not start with the protocol magic.
    BadMagic {
        /// The four bytes found where the magic should be.
        found: [u8; 4],
    },
    /// The frame speaks a protocol version this build does not.
    Version {
        /// Version field of the frame.
        found: u16,
        /// The version this build speaks.
        supported: u16,
    },
    /// The frame kind is not one this protocol defines.
    UnknownKind {
        /// The kind field of the frame.
        kind: u16,
    },
    /// The declared payload length exceeds the protocol cap.
    Oversize {
        /// Declared payload length.
        len: u32,
        /// The cap.
        max: u32,
    },
    /// The payload checksum does not match its content.
    Checksum {
        /// Checksum stored in the header.
        stored: u64,
        /// Checksum computed over the received payload.
        computed: u64,
    },
    /// The payload decoded structurally but its content is invalid
    /// (unknown event tag, trailing bytes, absurd counts).
    Payload {
        /// What was wrong.
        reason: String,
    },
    /// A bounded queue was full: the request was refused, not dropped.
    Overload {
        /// Requests queued when the refusal happened.
        queued: usize,
        /// The queue bound.
        capacity: usize,
    },
    /// The daemon is draining and admits no new work.
    Draining,
    /// The server answered with a typed error response.
    Rejected {
        /// Wire error code (`wire::ERR_*`).
        code: u16,
        /// Server-provided message.
        message: String,
    },
    /// The peer violated the protocol state machine (unexpected
    /// response kind, mid-stream close, sequence misuse).
    Protocol {
        /// What was violated.
        reason: String,
    },
    /// An invariant the daemon relies on failed internally.
    Internal {
        /// What failed.
        reason: String,
    },
    /// Configuration rejected before serving started.
    InvalidConfig {
        /// What was wrong.
        reason: String,
    },
    /// A scoring-core failure (artifact, feature assembly, classifier).
    Stream(StreamError),
    /// Socket or file I/O failed.
    Io {
        /// What was being done.
        context: String,
        /// The underlying error.
        source: std::io::Error,
    },
}

impl std::fmt::Display for SbedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SbedError::Truncated { what, need, have } => {
                write!(f, "truncated frame: {what} needs {need} bytes, have {have}")
            }
            SbedError::BadMagic { found } => {
                write!(f, "bad frame magic {found:02x?}")
            }
            SbedError::Version { found, supported } => {
                write!(
                    f,
                    "protocol version {found} unsupported (this build speaks {supported})"
                )
            }
            SbedError::UnknownKind { kind } => write!(f, "unknown frame kind {kind:#06x}"),
            SbedError::Oversize { len, max } => {
                write!(f, "payload length {len} exceeds protocol cap {max}")
            }
            SbedError::Checksum { stored, computed } => write!(
                f,
                "payload checksum mismatch: header says {stored:#018x}, content is {computed:#018x}"
            ),
            SbedError::Payload { reason } => write!(f, "invalid payload: {reason}"),
            SbedError::Overload { queued, capacity } => {
                write!(f, "request queue full ({queued}/{capacity}): retry")
            }
            SbedError::Draining => write!(f, "daemon is draining; no new work admitted"),
            SbedError::Rejected { code, message } => {
                write!(f, "server rejected request (code {code}): {message}")
            }
            SbedError::Protocol { reason } => write!(f, "protocol violation: {reason}"),
            SbedError::Internal { reason } => write!(f, "internal daemon failure: {reason}"),
            SbedError::InvalidConfig { reason } => write!(f, "invalid config: {reason}"),
            SbedError::Stream(e) => write!(f, "scoring failed: {e}"),
            SbedError::Io { context, source } => write!(f, "i/o failed while {context}: {source}"),
        }
    }
}

impl std::error::Error for SbedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SbedError::Stream(e) => Some(e),
            SbedError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<StreamError> for SbedError {
    fn from(e: StreamError) -> SbedError {
        SbedError::Stream(e)
    }
}

impl From<titan_sim::SimError> for SbedError {
    fn from(e: titan_sim::SimError) -> SbedError {
        SbedError::Stream(StreamError::from(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SbedError>();
    }

    #[test]
    fn display_mentions_the_damage() {
        let e = SbedError::Truncated {
            what: "payload checksum",
            need: 8,
            have: 3,
        };
        assert!(e.to_string().contains("payload checksum"));
        let e = SbedError::Checksum {
            stored: 1,
            computed: 2,
        };
        assert!(e.to_string().contains("mismatch"));
        let e = SbedError::Overload {
            queued: 8,
            capacity: 8,
        };
        assert!(e.to_string().contains("retry"));
    }

    #[test]
    fn stream_errors_convert() {
        let e = SbedError::from(StreamError::InvalidConfig { reason: "x".into() });
        assert!(matches!(e, SbedError::Stream(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
