//! The TCP scoring daemon.
//!
//! Threading model (std blocking I/O, no async runtime):
//!
//! * one **accept** thread (non-blocking listener, poll + sleep) that
//!   spawns a reader/writer pair per connection;
//! * per connection, a **reader** thread that frames and checks
//!   requests, answers transport-level damage with typed error
//!   responses, and enqueues well-formed frames, plus a **writer**
//!   thread that owns the outbound half of the socket;
//! * one **engine** thread that owns the [`ScoreSession`].
//!
//! Determinism under concurrency: the request id of every frame is its
//! *admission sequence number*. The engine holds early arrivals in a
//! bounded reorder buffer and feeds the session strictly in sequence
//! order, so the session — and with it every score, every metric, and
//! the rolling response checksum — is a pure function of the frame
//! sequence, no matter how many connections or worker threads carried
//! it. Scoring itself still fans out across parkit workers inside a
//! batch ([`streamd::serve::ServeConfig::threads`]); those fan-outs are
//! order-preserving, so worker count cannot change a bit either.
//!
//! Back-pressure is bounded and typed at three points: a per-connection
//! in-flight window, the engine's bounded request queue, and the
//! bounded reorder buffer. All three refuse with a
//! [`wire::ERR_OVERLOAD`] response (the client retransmits) — requests
//! are never silently dropped.
//!
//! Drain ([`Daemon::drain`]): stop accepting connections and admitting
//! frames, finish everything already queued (flush pending batches,
//! answer open launches), then stop. A drained run's recorded log
//! replays bit-identically: [`ScoreSession::finalize`] applies the same
//! end-of-log rule the replayer does.

use crate::replay::LogWriter;
use crate::session::ScoreSession;
use crate::wire::{self, ReportPayload};
use crate::{Result, SbedError};
use mlkit::artifact::fnv1a64;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;
use streamd::artifact::PipelineArtifact;
use streamd::serve::ServeConfig;
use titan_sim::topology::Topology;

/// How long blocked threads sleep between shutdown-flag checks. Pure
/// liveness tuning: no scored value depends on it.
const POLL: Duration = Duration::from_millis(5);
/// Socket read timeout so readers notice shutdown.
const READ_TIMEOUT: Duration = Duration::from_millis(100);

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Address to bind (`"127.0.0.1:0"` for an ephemeral test port).
    pub listen: String,
    /// Scoring window, batching, threads, backend.
    pub serve: ServeConfig,
    /// The node universe events are validated against.
    pub topology: Topology,
    /// Engine request-queue bound (frames queued across all
    /// connections awaiting the sequencer).
    pub queue_capacity: usize,
    /// Per-connection in-flight window (requests admitted but not yet
    /// fully answered).
    pub conn_window: usize,
    /// Reorder-buffer bound (early arrivals held for the sequencer).
    pub reorder_capacity: usize,
    /// If set, every admitted frame is appended to this log for replay.
    pub record_log: Option<PathBuf>,
    /// Shut down once a FINISH frame has been processed (the default;
    /// a long-lived daemon would set this false and rely on
    /// [`Daemon::drain`]).
    pub exit_on_finish: bool,
}

impl DaemonConfig {
    /// A config with the defaults: 1024-frame queue, 64-frame
    /// connection window, 4096-frame reorder buffer, no recording,
    /// exit on finish.
    pub fn new(listen: &str, serve: ServeConfig, topology: Topology) -> DaemonConfig {
        DaemonConfig {
            listen: listen.to_string(),
            serve,
            topology,
            queue_capacity: 1024,
            conn_window: 64,
            reorder_capacity: 4096,
            record_log: None,
            exit_on_finish: true,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.queue_capacity == 0 || self.conn_window == 0 || self.reorder_capacity == 0 {
            return Err(SbedError::InvalidConfig {
                reason: "queue_capacity, conn_window, and reorder_capacity must be at least 1"
                    .into(),
            });
        }
        Ok(())
    }
}

/// What the engine thread hands back at shutdown.
struct EngineOutcome {
    result: Result<()>,
    report: ReportPayload,
    snapshot: String,
    response_fnv: u64,
    n_rejected: u64,
    n_admitted: u64,
    n_swaps_rejected: u64,
}

/// The daemon's end-of-run summary.
#[derive(Debug, Clone)]
pub struct DaemonReport {
    /// The session's deterministic report (the same payload a FINISH
    /// response carries).
    pub report: ReportPayload,
    /// Final metrics snapshot JSON.
    pub snapshot: String,
    /// Rolling checksum over every session response frame, in emission
    /// order — replaying the recorded log must reproduce this exactly.
    pub response_fnv: u64,
    /// Admitted events the session refused with a typed rejection.
    pub n_rejected: u64,
    /// Frames admitted through the sequencer.
    pub n_admitted: u64,
    /// Connections accepted.
    pub n_connections: u64,
    /// Transport-level rejections (framing damage, checksum
    /// mismatches) answered by readers. Not part of the replay surface.
    pub n_transport_errors: u64,
    /// Overload refusals (connection window, queue, reorder buffer).
    pub n_overloads: u64,
    /// Scheduled hot swaps the engine refused (bad lineage, schema
    /// mismatch, stale generation, or scheduled past the end of the
    /// run). Refused swaps are never logged, so a recorded log only
    /// ever contains swaps a replay will accept.
    pub n_swaps_rejected: u64,
}

/// One frame waiting for the sequencer.
struct PendingFrame {
    kind: u16,
    payload: Vec<u8>,
    reply: mpsc::Sender<Vec<u8>>,
    inflight: Arc<AtomicUsize>,
}

enum ToEngine {
    Frame { seq: u64, frame: PendingFrame },
    Swap { at_seq: u64, bytes: Vec<u8> },
    Drain,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn io_err(context: &str, source: std::io::Error) -> SbedError {
    SbedError::Io {
        context: context.to_string(),
        source,
    }
}

/// Builds and sends a direct (non-session) error response. These
/// answer frames the sequencer never admitted, so they are outside the
/// replay surface by design.
fn respond_error(reply: &mpsc::Sender<Vec<u8>>, request_id: u64, code: u16, message: &str) {
    let payload = wire::ErrorPayload {
        code,
        message: message.to_string(),
    }
    .encode();
    let frame = wire::encode_frame(wire::KIND_ERROR, request_id, &payload);
    reply.send(frame).ok();
}

/// A running daemon. Spawn with [`Daemon::spawn`], stop with a client
/// FINISH (when `exit_on_finish`) or [`Daemon::drain`], then collect
/// the report with [`Daemon::join`].
pub struct Daemon {
    addr: SocketAddr,
    draining: Arc<AtomicBool>,
    shutdown: Arc<AtomicBool>,
    engine_tx: Option<SyncSender<ToEngine>>,
    engine: Option<JoinHandle<EngineOutcome>>,
    accept: Option<JoinHandle<()>>,
    conn_handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
    n_connections: Arc<AtomicU64>,
    transport_errors: Arc<AtomicU64>,
    n_overloads: Arc<AtomicU64>,
}

impl Daemon {
    /// Binds, validates the artifact/config pair, and starts the
    /// accept and engine threads.
    ///
    /// # Errors
    ///
    /// Bind/thread-spawn failures and config/artifact validation
    /// (including a telemetry-needing feature spec).
    pub fn spawn(artifact: Arc<PipelineArtifact>, cfg: DaemonConfig) -> Result<Daemon> {
        cfg.validate()?;
        // Fail fast on artifact/config problems: build (and drop) a
        // session here, where the error can reach the caller, rather
        // than letting the engine thread die silently at startup.
        drop(ScoreSession::new(&artifact, &cfg.serve, cfg.topology)?);

        let listener = TcpListener::bind(&cfg.listen)
            .map_err(|e| io_err(&format!("binding {}", cfg.listen), e))?;
        let addr = listener
            .local_addr()
            .map_err(|e| io_err("resolving bound address", e))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| io_err("setting listener non-blocking", e))?;

        let draining = Arc::new(AtomicBool::new(false));
        let shutdown = Arc::new(AtomicBool::new(false));
        let n_connections = Arc::new(AtomicU64::new(0));
        let transport_errors = Arc::new(AtomicU64::new(0));
        let n_overloads = Arc::new(AtomicU64::new(0));
        let conn_handles: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let (engine_tx, engine_rx) = mpsc::sync_channel::<ToEngine>(cfg.queue_capacity);

        let engine = {
            let artifact = Arc::clone(&artifact);
            let cfg = cfg.clone();
            let draining = Arc::clone(&draining);
            let shutdown = Arc::clone(&shutdown);
            let n_overloads = Arc::clone(&n_overloads);
            std::thread::Builder::new()
                .name("sbed-engine".into())
                .spawn(move || {
                    let outcome =
                        run_engine(artifact.as_ref(), &cfg, engine_rx, &draining, &n_overloads);
                    // Whatever ended the engine ends the daemon.
                    draining.store(true, Ordering::SeqCst);
                    shutdown.store(true, Ordering::SeqCst);
                    outcome
                })
                .map_err(|e| io_err("spawning engine thread", e))?
        };

        let accept = {
            let engine_tx = engine_tx.clone();
            let draining = Arc::clone(&draining);
            let shutdown = Arc::clone(&shutdown);
            let n_connections = Arc::clone(&n_connections);
            let transport_errors = Arc::clone(&transport_errors);
            let n_overloads = Arc::clone(&n_overloads);
            let conn_handles = Arc::clone(&conn_handles);
            let conn_window = cfg.conn_window;
            std::thread::Builder::new()
                .name("sbed-accept".into())
                .spawn(move || {
                    run_accept(
                        listener,
                        engine_tx,
                        draining,
                        shutdown,
                        n_connections,
                        transport_errors,
                        n_overloads,
                        conn_handles,
                        conn_window,
                    )
                })
                .map_err(|e| io_err("spawning accept thread", e))?
        };

        Ok(Daemon {
            addr,
            draining,
            shutdown,
            engine_tx: Some(engine_tx),
            engine: Some(engine),
            accept: Some(accept),
            conn_handles,
            n_connections,
            transport_errors,
            n_overloads,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Schedules a zero-downtime artifact hot swap at an admission
    /// boundary: `envelope` (full `mlkit::artifact` envelope bytes with
    /// a lineage header naming the current champion as parent) takes
    /// over scoring after every frame below `at_seq` is answered and
    /// before frame `at_seq` is admitted. If that boundary has already
    /// passed, the swap applies at the next boundary the engine
    /// reaches. The engine validates lineage/schema/generation before
    /// committing; a refused swap leaves the champion serving and is
    /// counted in [`DaemonReport::n_swaps_rejected`].
    ///
    /// # Errors
    ///
    /// [`SbedError::Draining`] if the engine is no longer accepting
    /// work.
    pub fn swap_at(&self, at_seq: u64, envelope: Vec<u8>) -> Result<()> {
        if self.draining.load(Ordering::SeqCst) {
            return Err(SbedError::Draining);
        }
        match &self.engine_tx {
            Some(tx) => tx
                .send(ToEngine::Swap {
                    at_seq,
                    bytes: envelope,
                })
                .map_err(|_| SbedError::Draining),
            None => Err(SbedError::Draining),
        }
    }

    /// Starts a graceful drain: no new connections or requests are
    /// admitted; everything already queued is scored and answered.
    /// Idempotent. Follow with [`Daemon::join`].
    pub fn drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(tx) = &self.engine_tx {
            // Best-effort wake-up; the engine also polls the flag.
            tx.try_send(ToEngine::Drain).ok();
        }
    }

    /// Waits for the daemon to stop (after a FINISH with
    /// `exit_on_finish`, or after [`Daemon::drain`]) and returns the
    /// report.
    ///
    /// # Errors
    ///
    /// A scoring-core failure that aborted the engine, or a worker
    /// thread panic.
    pub fn join(mut self) -> Result<DaemonReport> {
        // Dropping our queue handle lets the engine see disconnection
        // once every connection is gone.
        self.engine_tx = None;
        let outcome = match self.engine.take() {
            Some(h) => h.join().map_err(|_| SbedError::Internal {
                reason: "engine thread panicked".into(),
            })?,
            None => {
                return Err(SbedError::Internal {
                    reason: "engine already joined".into(),
                });
            }
        };
        if let Some(h) = self.accept.take() {
            h.join().map_err(|_| SbedError::Internal {
                reason: "accept thread panicked".into(),
            })?;
        }
        let handles: Vec<JoinHandle<()>> = lock(&self.conn_handles).drain(..).collect();
        for h in handles {
            h.join().map_err(|_| SbedError::Internal {
                reason: "connection thread panicked".into(),
            })?;
        }
        outcome.result?;
        Ok(DaemonReport {
            report: outcome.report,
            snapshot: outcome.snapshot,
            response_fnv: outcome.response_fnv,
            n_rejected: outcome.n_rejected,
            n_admitted: outcome.n_admitted,
            n_connections: self.n_connections.load(Ordering::SeqCst),
            n_transport_errors: self.transport_errors.load(Ordering::SeqCst),
            n_overloads: self.n_overloads.load(Ordering::SeqCst),
            n_swaps_rejected: outcome.n_swaps_rejected,
        })
    }
}

#[allow(clippy::too_many_arguments)]
fn run_accept(
    listener: TcpListener,
    engine_tx: SyncSender<ToEngine>,
    draining: Arc<AtomicBool>,
    shutdown: Arc<AtomicBool>,
    n_connections: Arc<AtomicU64>,
    transport_errors: Arc<AtomicU64>,
    n_overloads: Arc<AtomicU64>,
    conn_handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
    conn_window: usize,
) {
    loop {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                n_connections.fetch_add(1, Ordering::SeqCst);
                stream.set_nodelay(true).ok();
                let engine_tx = engine_tx.clone();
                let draining = Arc::clone(&draining);
                let shutdown = Arc::clone(&shutdown);
                let transport_errors = Arc::clone(&transport_errors);
                let n_overloads = Arc::clone(&n_overloads);
                let spawned =
                    std::thread::Builder::new()
                        .name("sbed-conn".into())
                        .spawn(move || {
                            run_reader(
                                stream,
                                engine_tx,
                                draining,
                                shutdown,
                                transport_errors,
                                n_overloads,
                                conn_window,
                            );
                        });
                if let Ok(h) = spawned {
                    lock(&conn_handles).push(h);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL),
        }
    }
    // Dropping the listener here closes the port: post-drain connection
    // attempts are refused by the OS.
}

/// Reads `buf.len()` bytes, tolerating read timeouts (checking the
/// shutdown flag at each) and interrupts. `Ok(false)` means the peer
/// closed (or shutdown fired) before the first byte.
fn read_full(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shutdown: &AtomicBool,
) -> std::io::Result<bool> {
    let mut got = 0usize;
    while got < buf.len() {
        let window = buf.get_mut(got..).unwrap_or(&mut []);
        match stream.read(window) {
            Ok(0) => {
                return if got == 0 {
                    Ok(false)
                } else {
                    Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "peer closed mid-frame",
                    ))
                };
            }
            Ok(n) => got += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    return Ok(false);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

fn run_reader(
    mut stream: TcpStream,
    engine_tx: SyncSender<ToEngine>,
    draining: Arc<AtomicBool>,
    shutdown: Arc<AtomicBool>,
    transport_errors: Arc<AtomicU64>,
    n_overloads: Arc<AtomicU64>,
    conn_window: usize,
) {
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let (reply_tx, reply_rx) = mpsc::channel::<Vec<u8>>();
    let writer = std::thread::Builder::new()
        .name("sbed-write".into())
        .spawn(move || run_writer(write_half, reply_rx));
    let writer = match writer {
        Ok(h) => h,
        Err(_) => return,
    };
    stream.set_read_timeout(Some(READ_TIMEOUT)).ok();
    let inflight = Arc::new(AtomicUsize::new(0));

    loop {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let mut hdr = [0u8; wire::HEADER_LEN];
        match read_full(&mut stream, &mut hdr, &shutdown) {
            Ok(true) => {}
            Ok(false) => break,
            Err(_) => break,
        }
        let raw = wire::header_fields(&hdr);
        let checked = wire::validate_header(&hdr);
        let header = match checked {
            Ok(h) => h,
            Err(e) => {
                transport_errors.fetch_add(1, Ordering::SeqCst);
                respond_error(
                    &reply_tx,
                    raw.request_id,
                    wire::error_code(&e),
                    &e.to_string(),
                );
                match e {
                    // Version damage leaves the length field (same
                    // layout in any plausible version) trustworthy:
                    // skip the payload and keep the connection.
                    SbedError::Version { .. } if raw.len <= wire::MAX_PAYLOAD => {
                        let mut sink = vec![0u8; raw.len as usize];
                        match read_full(&mut stream, &mut sink, &shutdown) {
                            Ok(true) => continue,
                            _ => break,
                        }
                    }
                    // Bad magic or an oversize length mean framing is
                    // lost: nothing downstream can be trusted, so the
                    // connection closes (the error response above still
                    // tells the peer why).
                    _ => break,
                }
            }
        };
        let mut payload = vec![0u8; header.len as usize];
        match read_full(&mut stream, &mut payload, &shutdown) {
            Ok(true) => {}
            _ => break,
        }
        let computed = fnv1a64(&payload);
        if computed != header.checksum {
            transport_errors.fetch_add(1, Ordering::SeqCst);
            let e = SbedError::Checksum {
                stored: header.checksum,
                computed,
            };
            respond_error(
                &reply_tx,
                header.request_id,
                wire::error_code(&e),
                &e.to_string(),
            );
            continue;
        }
        if header.kind != wire::KIND_EVENT && header.kind != wire::KIND_FINISH {
            transport_errors.fetch_add(1, Ordering::SeqCst);
            let e = SbedError::UnknownKind { kind: header.kind };
            respond_error(
                &reply_tx,
                header.request_id,
                wire::ERR_MALFORMED,
                &e.to_string(),
            );
            continue;
        }
        if draining.load(Ordering::SeqCst) {
            respond_error(
                &reply_tx,
                header.request_id,
                wire::ERR_DRAINING,
                &SbedError::Draining.to_string(),
            );
            continue;
        }
        let queued = inflight.load(Ordering::SeqCst);
        if queued >= conn_window {
            n_overloads.fetch_add(1, Ordering::SeqCst);
            let e = SbedError::Overload {
                queued,
                capacity: conn_window,
            };
            respond_error(
                &reply_tx,
                header.request_id,
                wire::ERR_OVERLOAD,
                &e.to_string(),
            );
            continue;
        }
        inflight.fetch_add(1, Ordering::SeqCst);
        let frame = PendingFrame {
            kind: header.kind,
            payload,
            reply: reply_tx.clone(),
            inflight: Arc::clone(&inflight),
        };
        match engine_tx.try_send(ToEngine::Frame {
            seq: header.request_id,
            frame,
        }) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) => {
                inflight.fetch_sub(1, Ordering::SeqCst);
                n_overloads.fetch_add(1, Ordering::SeqCst);
                let e = SbedError::Overload {
                    queued,
                    capacity: conn_window,
                };
                respond_error(
                    &reply_tx,
                    header.request_id,
                    wire::ERR_OVERLOAD,
                    &e.to_string(),
                );
            }
            Err(TrySendError::Disconnected(_)) => {
                inflight.fetch_sub(1, Ordering::SeqCst);
                respond_error(
                    &reply_tx,
                    header.request_id,
                    wire::ERR_DRAINING,
                    &SbedError::Draining.to_string(),
                );
                break;
            }
        }
    }
    drop(reply_tx);
    writer.join().ok();
}

fn run_writer(mut stream: TcpStream, rx: mpsc::Receiver<Vec<u8>>) {
    while let Ok(bytes) = rx.recv() {
        if stream.write_all(&bytes).is_err() {
            break;
        }
    }
    stream.flush().ok();
}

/// One reply route: where a request's responses go, and the in-flight
/// slot its final response releases.
struct ReplySlot {
    reply: mpsc::Sender<Vec<u8>>,
    inflight: Arc<AtomicUsize>,
}

struct Engine<'a> {
    session: ScoreSession<'a>,
    buffer: BTreeMap<u64, PendingFrame>,
    open: BTreeMap<u64, ReplySlot>,
    /// Hot swaps scheduled for a future admission boundary: the swap
    /// keyed by `s` applies after every frame below `s` is scored and
    /// before frame `s` is admitted.
    swaps: BTreeMap<u64, Vec<u8>>,
    next_seq: u64,
    n_admitted: u64,
    n_swaps_rejected: u64,
    log: Option<LogWriter>,
    reorder_capacity: usize,
}

impl Engine<'_> {
    /// Routes session responses to their requesters and releases
    /// in-flight slots on terminal responses.
    fn route(&mut self, responses: Vec<wire::EncodedResponse>) {
        for r in responses {
            if r.last {
                if let Some(slot) = self.open.remove(&r.request_id) {
                    slot.reply.send(r.bytes).ok();
                    slot.inflight.fetch_sub(1, Ordering::SeqCst);
                }
            } else if let Some(slot) = self.open.get(&r.request_id) {
                slot.reply.send(r.bytes).ok();
            }
        }
    }

    /// Places one frame into the reorder buffer (answering stale,
    /// duplicate, and buffer-overflow cases directly), then admits
    /// every frame that is now in sequence.
    ///
    /// # Errors
    ///
    /// Scoring-core and record-log failures (fatal).
    fn enqueue(&mut self, seq: u64, frame: PendingFrame, n_overloads: &AtomicU64) -> Result<()> {
        if seq < self.next_seq {
            frame.inflight.fetch_sub(1, Ordering::SeqCst);
            respond_error(
                &frame.reply,
                seq,
                wire::ERR_REJECTED,
                &format!(
                    "sequence {seq} already admitted (next is {})",
                    self.next_seq
                ),
            );
            return Ok(());
        }
        if self.buffer.contains_key(&seq) {
            frame.inflight.fetch_sub(1, Ordering::SeqCst);
            respond_error(
                &frame.reply,
                seq,
                wire::ERR_REJECTED,
                &format!("sequence {seq} already queued"),
            );
            return Ok(());
        }
        if seq != self.next_seq && self.buffer.len() >= self.reorder_capacity {
            frame.inflight.fetch_sub(1, Ordering::SeqCst);
            n_overloads.fetch_add(1, Ordering::SeqCst);
            respond_error(
                &frame.reply,
                seq,
                wire::ERR_OVERLOAD,
                &SbedError::Overload {
                    queued: self.buffer.len(),
                    capacity: self.reorder_capacity,
                }
                .to_string(),
            );
            return Ok(());
        }
        self.buffer.insert(seq, frame);
        self.pump()
    }

    /// Applies every hot swap whose boundary has been reached: swaps
    /// scheduled at or before `next_seq` run now, strictly between
    /// admitted frames. A swap the session refuses (bad lineage,
    /// schema mismatch, stale generation) is counted and dropped
    /// *before* logging, so the recorded log only contains swaps a
    /// replay will accept; an accepted swap is logged first, then
    /// applied, exactly the order the replayer reproduces.
    ///
    /// # Errors
    ///
    /// Record-log and scoring-core failures (fatal). Swap *validation*
    /// failures are not fatal: the champion keeps serving.
    fn apply_due_swaps(&mut self) -> Result<()> {
        while let Some((&at, _)) = self.swaps.first_key_value() {
            if at > self.next_seq {
                break;
            }
            let bytes = self.swaps.remove(&at).unwrap_or_default();
            let swap = match self.session.prepare_swap(&bytes) {
                Ok(s) => s,
                Err(_) => {
                    self.n_swaps_rejected += 1;
                    continue;
                }
            };
            if let Some(log) = self.log.as_mut() {
                let frame = wire::encode_frame(wire::KIND_SWAP, self.next_seq, &bytes);
                log.append(&frame)?;
            }
            let responses = self.session.apply_swap(swap)?;
            self.route(responses);
        }
        Ok(())
    }

    /// Admits every in-sequence frame: applies due swaps at the
    /// boundary, records the frame, feeds the session, routes the
    /// responses.
    ///
    /// # Errors
    ///
    /// Scoring-core and record-log failures (fatal).
    fn pump(&mut self) -> Result<()> {
        self.apply_due_swaps()?;
        while let Some(frame) = self.buffer.remove(&self.next_seq) {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.n_admitted += 1;
            if let Some(log) = self.log.as_mut() {
                let bytes = wire::encode_frame(frame.kind, seq, &frame.payload);
                log.append(&bytes)?;
            }
            self.open.insert(
                seq,
                ReplySlot {
                    reply: frame.reply.clone(),
                    inflight: Arc::clone(&frame.inflight),
                },
            );
            match self.session.handle(frame.kind, seq, &frame.payload) {
                Ok(responses) => self.route(responses),
                Err(e) => {
                    // Tell the requester before the daemon aborts.
                    respond_error(
                        &frame.reply,
                        seq,
                        wire::ERR_INTERNAL,
                        &format!("scoring failed: {e}"),
                    );
                    self.open.remove(&seq);
                    frame.inflight.fetch_sub(1, Ordering::SeqCst);
                    return Err(e);
                }
            }
            if self.session.finished() {
                break;
            }
            self.apply_due_swaps()?;
        }
        Ok(())
    }

    /// Ends the run: finalises the session (drain case), answers what
    /// completed, and refuses everything still stuck in the reorder
    /// buffer. Swaps scheduled past the end of the run never applied
    /// and were never logged; they count as rejected.
    fn shut(&mut self) -> Result<()> {
        let finalized = self.session.finalize()?;
        self.route(finalized);
        let stuck: Vec<(u64, PendingFrame)> =
            std::mem::take(&mut self.buffer).into_iter().collect();
        for (seq, frame) in stuck {
            frame.inflight.fetch_sub(1, Ordering::SeqCst);
            respond_error(
                &frame.reply,
                seq,
                wire::ERR_DRAINING,
                &SbedError::Draining.to_string(),
            );
        }
        self.n_swaps_rejected += self.swaps.len() as u64;
        self.swaps.clear();
        Ok(())
    }
}

fn run_engine(
    artifact: &PipelineArtifact,
    cfg: &DaemonConfig,
    rx: mpsc::Receiver<ToEngine>,
    draining: &AtomicBool,
    n_overloads: &AtomicU64,
) -> EngineOutcome {
    let failed = |e: SbedError| EngineOutcome {
        result: Err(e),
        report: ReportPayload::default(),
        snapshot: String::new(),
        response_fnv: 0,
        n_rejected: 0,
        n_admitted: 0,
        n_swaps_rejected: 0,
    };
    let session = match ScoreSession::new(artifact, &cfg.serve, cfg.topology) {
        Ok(s) => s,
        Err(e) => return failed(e),
    };
    let log = match &cfg.record_log {
        Some(path) => match LogWriter::create(path, artifact.schema_hash()) {
            Ok(w) => Some(w),
            Err(e) => return failed(e),
        },
        None => None,
    };
    let mut engine = Engine {
        session,
        buffer: BTreeMap::new(),
        open: BTreeMap::new(),
        swaps: BTreeMap::new(),
        next_seq: 0,
        n_admitted: 0,
        n_swaps_rejected: 0,
        log,
        reorder_capacity: cfg.reorder_capacity,
    };

    let mut fatal: Option<SbedError> = None;
    loop {
        if engine.session.finished() && cfg.exit_on_finish {
            break;
        }
        match rx.recv_timeout(POLL) {
            Ok(ToEngine::Frame { seq, frame }) => {
                if let Err(e) = engine.enqueue(seq, frame, n_overloads) {
                    fatal = Some(e);
                    break;
                }
            }
            Ok(ToEngine::Swap { at_seq, bytes }) => {
                // Last scheduling wins for a boundary; pump applies it
                // once every frame below `at_seq` has been scored.
                engine.swaps.insert(at_seq, bytes);
                if let Err(e) = engine.pump() {
                    fatal = Some(e);
                    break;
                }
            }
            Ok(ToEngine::Drain) => {
                // Drain whatever is already queued, then finish. Swaps
                // still in flight at drain time are not applied: a
                // draining daemon keeps its champion to the end.
                while let Ok(msg) = rx.try_recv() {
                    match msg {
                        ToEngine::Frame { seq, frame } => {
                            if let Err(e) = engine.enqueue(seq, frame, n_overloads) {
                                fatal = Some(e);
                                break;
                            }
                        }
                        ToEngine::Swap { .. } => engine.n_swaps_rejected += 1,
                        ToEngine::Drain => {}
                    }
                }
                break;
            }
            Err(RecvTimeoutError::Timeout) => {
                if draining.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    if fatal.is_none() {
        if let Err(e) = engine.shut() {
            fatal = Some(e);
        }
    }
    EngineOutcome {
        result: match fatal {
            Some(e) => Err(e),
            None => Ok(()),
        },
        report: engine.session.report(),
        snapshot: engine.session.snapshot_json(),
        response_fnv: engine.session.response_fnv(),
        n_rejected: engine.session.n_rejected(),
        n_admitted: engine.n_admitted,
        n_swaps_rejected: engine.n_swaps_rejected,
    }
}
