//! The sequential scoring session: the daemon's single-threaded heart.
//!
//! A [`ScoreSession`] consumes *admitted* frames in request-id order and
//! produces the complete, deterministic response stream: ACKs at
//! admission, SCORES when a launch's batch flushes, a REPORT at finish.
//! Everything nondeterministic about a network daemon — connection
//! interleaving, socket timing, worker scheduling — is resolved *before*
//! frames reach this type (the daemon's sequencer admits strictly by
//! request id), so the session's outputs are a pure function of the
//! admitted frame sequence and the artifact. That is the replay
//! contract: [`crate::replay`] re-feeds a recorded frame log through a
//! fresh session and must reproduce every response byte and the final
//! metrics snapshot exactly.
//!
//! Validation happens here, not in the transport: a well-formed frame
//! carrying a bad event (unknown node, duplicate aprun, minute out of
//! order) gets a typed [`wire::ERR_REJECTED`] response and leaves the
//! scoring state untouched — deterministically, so replays reproduce
//! rejections too.

use crate::wire::{self, EncodedResponse, ReportPayload, ScoreEntry, ScoresPayload, WireEvent};
use crate::{Result, SbedError};
use mlkit::hash::{fnv1a64, Fnv1a};
use obskit::Recorder;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use streamd::artifact::PipelineArtifact;
use streamd::serve::{
    LaunchFacts, NullSink, PreparedSwap, ScoredLaunch, ServeConfig, StepScorer, DRAIN_THRESHOLD,
};
use titan_sim::apps::AppId;
use titan_sim::topology::{NodeId, Topology};

/// A launch admitted but not yet fully scored: collects its per-node
/// rows until all arrive, then emits one SCORES response.
#[derive(Debug)]
struct OpenLaunch {
    request_id: u64,
    minute: u64,
    expected: usize,
    entries: Vec<ScoreEntry>,
}

/// A validated hot swap, ready for [`ScoreSession::apply_swap`]. All
/// fallible work (envelope decode, succession verification, fastpath
/// compilation) happened in [`ScoreSession::prepare_swap`], so the
/// daemon can refuse a bad swap *before* logging its frame — a recorded
/// request log only ever contains swaps a replay will accept.
pub struct SessionSwap {
    prepared: PreparedSwap,
    /// FNV-1a of the swap frame's envelope bytes — the next champion
    /// checksum.
    checksum: u64,
    /// The lineage generation the envelope carries.
    lineage_generation: u32,
}

impl SessionSwap {
    /// The generation this swap installs.
    pub fn generation(&self) -> u32 {
        self.lineage_generation
    }
}

/// The sequential scoring state machine shared by the live daemon and
/// the replayer.
pub struct ScoreSession<'a> {
    step: StepScorer<'a>,
    rec: Recorder,
    /// Flush output scratch, drained into responses after every step.
    out: Vec<ScoredLaunch>,
    /// Launches awaiting their batch, keyed by aprun.
    open: BTreeMap<u32, OpenLaunch>,
    /// Every aprun ever admitted (duplicate detection).
    seen_apruns: BTreeSet<u32>,
    /// Highest node id the topology defines, plus one.
    n_nodes: u32,
    /// Minute of the last admitted tick (`None` before the first).
    current_minute: Option<u64>,
    /// Events admitted (ticks + launches + SBE deltas).
    n_events: u64,
    /// Events refused with a typed rejection.
    n_rejected: u64,
    /// FNV-1a checksum folded over every emitted response frame, in
    /// emission order — the one number live and replay must agree on.
    response_fnv: u64,
    /// FNV-1a of the serving champion's encoded envelope bytes — the
    /// parent checksum the next swap's lineage must name.
    champion_checksum: u64,
    /// The serving champion's lineage generation.
    champion_generation: u32,
    /// Hot swaps committed.
    n_swaps: u64,
    finished: bool,
}

impl<'a> ScoreSession<'a> {
    /// Builds a session over a loaded artifact.
    ///
    /// # Errors
    ///
    /// Config validation and artifact/backend preparation, including a
    /// telemetry-needing feature spec (sensor windows do not travel on
    /// the wire, so only artifacts trained with
    /// `FeatureSpec::no_telemetry()` — or narrower — can serve).
    pub fn new(
        artifact: &'a PipelineArtifact,
        cfg: &ServeConfig,
        topology: Topology,
    ) -> Result<ScoreSession<'a>> {
        let step = StepScorer::new(artifact, cfg, topology, None)?;
        // The serving convention: a daemon starts on a root artifact
        // (generation 0, root lineage); its checksum anchors the swap
        // succession chain.
        let champion_checksum = fnv1a64(&artifact.to_bytes()?);
        Ok(ScoreSession {
            step,
            rec: Recorder::new(),
            out: Vec::new(),
            open: BTreeMap::new(),
            seen_apruns: BTreeSet::new(),
            n_nodes: topology.n_nodes(),
            current_minute: None,
            n_events: 0,
            n_rejected: 0,
            response_fnv: fnv1a64(&[]),
            champion_checksum,
            champion_generation: 0,
            n_swaps: 0,
            finished: false,
        })
    }

    /// Whether the finish flush has run (no further work is admitted).
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// The rolling checksum over every emitted response frame.
    pub fn response_fnv(&self) -> u64 {
        self.response_fnv
    }

    /// The metrics snapshot at this point in the stream.
    pub fn snapshot_json(&self) -> String {
        self.rec.snapshot_json()
    }

    /// The deterministic end-of-stream report.
    pub fn report(&self) -> ReportPayload {
        let stats = self.step.step_stats();
        ReportPayload {
            n_events: self.n_events,
            n_requests: stats.n_requests,
            n_stage2: stats.n_stage2,
            n_batches: stats.n_batches,
            n_alerts: stats.n_alerts,
            snapshot_fnv: fnv1a64(self.rec.snapshot_json().as_bytes()),
            n_swaps: self.n_swaps,
            generation: self.champion_generation,
        }
    }

    /// The serving champion's lineage generation.
    pub fn generation(&self) -> u32 {
        self.champion_generation
    }

    /// Hot swaps committed so far.
    pub fn n_swaps(&self) -> u64 {
        self.n_swaps
    }

    /// Events refused with a typed rejection so far.
    pub fn n_rejected(&self) -> u64 {
        self.n_rejected
    }

    /// Folds one emitted frame into the rolling checksum by rehashing
    /// the previous digest followed by the frame — order-sensitive, so
    /// any reordering or difference in any response byte shows up.
    fn fold_response(&mut self, bytes: &[u8]) {
        let mut h = Fnv1a::new();
        h.update(&self.response_fnv.to_le_bytes());
        h.update(bytes);
        self.response_fnv = h.finish();
    }

    fn emit(&mut self, rs: &mut Vec<EncodedResponse>, request_id: u64, kind: u16, payload: &[u8]) {
        let bytes = wire::encode_frame(kind, request_id, payload);
        self.fold_response(&bytes);
        rs.push(EncodedResponse {
            request_id,
            kind,
            last: kind != wire::KIND_ACK,
            bytes,
        });
    }

    fn emit_ack(&mut self, rs: &mut Vec<EncodedResponse>, request_id: u64, terminal: bool) {
        let bytes = wire::encode_frame(wire::KIND_ACK, request_id, &[]);
        self.fold_response(&bytes);
        rs.push(EncodedResponse {
            request_id,
            kind: wire::KIND_ACK,
            last: terminal,
            bytes,
        });
    }

    fn emit_error(&mut self, rs: &mut Vec<EncodedResponse>, request_id: u64, code: u16, msg: &str) {
        let payload = wire::ErrorPayload {
            code,
            message: msg.to_string(),
        }
        .encode();
        self.emit(rs, request_id, wire::KIND_ERROR, &payload);
    }

    /// Routes freshly flushed [`ScoredLaunch`] rows to their open
    /// launches, emitting a SCORES response for each launch that
    /// completed.
    fn route_out(&mut self, rs: &mut Vec<EncodedResponse>) {
        if self.out.is_empty() {
            return;
        }
        let rows = std::mem::take(&mut self.out);
        for s in rows {
            let done = match self.open.get_mut(&s.aprun) {
                Some(open) => {
                    open.entries.push(ScoreEntry {
                        node: s.node,
                        probability: s.probability,
                        predicted: s.predicted,
                        stage2: s.stage2,
                        decision: decision_of(&s),
                    });
                    open.entries.len() >= open.expected
                }
                // A row for an aprun the session never opened would be
                // a scoring-core bug; there is no launch to answer, so
                // drop it deterministically rather than die.
                None => false,
            };
            if done {
                if let Some(open) = self.open.remove(&s.aprun) {
                    let payload = ScoresPayload {
                        minute: open.minute,
                        aprun: s.aprun,
                        entries: open.entries,
                    }
                    .encode();
                    self.emit(rs, open.request_id, wire::KIND_SCORES, &payload);
                }
            }
        }
    }

    /// Validates an event against the session's stream discipline.
    /// Returns the rejection message for invalid events.
    fn validate(&self, ev: &WireEvent) -> Option<String> {
        match ev {
            WireEvent::Tick { minute } => {
                if let Some(cur) = self.current_minute {
                    if *minute <= cur {
                        return Some(format!("tick minute {minute} not after current {cur}"));
                    }
                }
                None
            }
            WireEvent::Launch {
                minute,
                aprun,
                nodes,
                ..
            } => {
                if Some(*minute) != self.current_minute {
                    return Some(format!(
                        "launch minute {minute} does not match current tick {:?}",
                        self.current_minute
                    ));
                }
                if self.seen_apruns.contains(aprun) {
                    return Some(format!("duplicate aprun {aprun}"));
                }
                let mut sorted: Vec<u32> = nodes.clone();
                sorted.sort_unstable();
                sorted.dedup();
                if sorted.len() != nodes.len() {
                    return Some(format!("launch aprun {aprun} repeats a node"));
                }
                for &n in nodes {
                    if n >= self.n_nodes {
                        return Some(format!(
                            "node {n} outside topology ({} nodes)",
                            self.n_nodes
                        ));
                    }
                }
                None
            }
            WireEvent::Sbe { minute, node, .. } => {
                if Some(*minute) != self.current_minute {
                    return Some(format!(
                        "sbe minute {minute} does not match current tick {:?}",
                        self.current_minute
                    ));
                }
                if *node >= self.n_nodes {
                    return Some(format!(
                        "node {node} outside topology ({} nodes)",
                        self.n_nodes
                    ));
                }
                None
            }
        }
    }

    /// Handles one admitted frame; returns the responses it produced,
    /// in emission order.
    ///
    /// # Errors
    ///
    /// Only scoring-core failures (artifact/classifier) are fatal;
    /// every input problem becomes a typed error *response*.
    pub fn handle(
        &mut self,
        kind: u16,
        request_id: u64,
        payload: &[u8],
    ) -> Result<Vec<EncodedResponse>> {
        let mut rs = Vec::new();
        if self.finished {
            self.n_rejected += 1;
            self.emit_error(
                &mut rs,
                request_id,
                wire::ERR_DRAINING,
                "session already finished",
            );
            return Ok(rs);
        }
        match kind {
            wire::KIND_FINISH => {
                let mut sink = NullSink;
                let mut out = std::mem::take(&mut self.out);
                self.step.step_finish(&mut out, &mut sink, &mut self.rec)?;
                self.out = out;
                self.finished = true;
                self.route_out(&mut rs);
                let report = self.report().encode();
                self.emit(&mut rs, request_id, wire::KIND_REPORT, &report);
            }
            wire::KIND_EVENT => {
                let ev = match WireEvent::decode(payload) {
                    Ok(ev) => ev,
                    Err(e) => {
                        self.n_rejected += 1;
                        let code = wire::error_code(&e);
                        self.emit_error(&mut rs, request_id, code, &e.to_string());
                        return Ok(rs);
                    }
                };
                if let Some(reason) = self.validate(&ev) {
                    self.n_rejected += 1;
                    self.emit_error(&mut rs, request_id, wire::ERR_REJECTED, &reason);
                    return Ok(rs);
                }
                self.feed(&ev, request_id, &mut rs)?;
            }
            other => {
                self.n_rejected += 1;
                self.emit_error(
                    &mut rs,
                    request_id,
                    wire::ERR_MALFORMED,
                    &format!("kind {other:#06x} is not a request"),
                );
            }
        }
        Ok(rs)
    }

    /// Feeds one validated event through the scoring core.
    fn feed(
        &mut self,
        ev: &WireEvent,
        request_id: u64,
        rs: &mut Vec<EncodedResponse>,
    ) -> Result<()> {
        let mut sink = NullSink;
        let mut out = std::mem::take(&mut self.out);
        let fed = match ev {
            WireEvent::Tick { minute } => {
                let r = self
                    .step
                    .step_tick(*minute, &mut out, &mut sink, &mut self.rec);
                if r.is_ok() {
                    self.current_minute = Some(*minute);
                }
                r.map(|()| true)
            }
            WireEvent::Launch {
                minute,
                aprun,
                app,
                runtime_min,
                core_util,
                mem_util,
                nodes,
            } => {
                let node_ids: Vec<NodeId> = nodes.iter().map(|&n| NodeId(n)).collect();
                let facts = LaunchFacts {
                    minute: *minute,
                    aprun: *aprun,
                    app: *app,
                    runtime_min: *runtime_min,
                    core_util: *core_util,
                    mem_util: *mem_util,
                    nodes: &node_ids,
                };
                let in_window = self.step.in_window(*minute);
                self.seen_apruns.insert(*aprun);
                self.open.insert(
                    *aprun,
                    OpenLaunch {
                        request_id,
                        minute: *minute,
                        expected: if in_window { node_ids.len() } else { 0 },
                        entries: Vec::new(),
                    },
                );
                self.step
                    .step_launch(&facts, &mut out, &mut sink, &mut self.rec)
                    .map(|()| true)
            }
            WireEvent::Sbe {
                minute,
                node,
                app,
                count,
            } => self
                .step
                .step_sbe(*minute, NodeId(*node), AppId(*app), *count, &mut self.rec)
                .map(|()| true),
        };
        self.out = out;
        fed?;
        self.n_events += 1;
        // ACK first, then anything the step completed. A launch's ACK
        // is not terminal (its SCORES comes later); out-of-window
        // launches complete immediately below with an empty SCORES.
        let launch_like = matches!(ev, WireEvent::Launch { .. });
        self.emit_ack(rs, request_id, !launch_like);
        self.route_out(rs);
        // An out-of-window launch never produces rows: answer it now.
        if let WireEvent::Launch { aprun, .. } = ev {
            let empty_done = self.open.get(aprun).is_some_and(|o| o.expected == 0);
            if empty_done {
                if let Some(open) = self.open.remove(aprun) {
                    let payload = ScoresPayload {
                        minute: open.minute,
                        aprun: *aprun,
                        entries: open.entries,
                    }
                    .encode();
                    self.emit(rs, open.request_id, wire::KIND_SCORES, &payload);
                }
            }
        }
        Ok(())
    }

    /// Validates a hot-swap request carried as full artifact-envelope
    /// bytes: the envelope must decode, its lineage must name the
    /// serving champion as parent with generation champion + 1, and the
    /// challenger must be servable under the current config (same
    /// feature schema; compiles on the compiled backend). No session
    /// state changes — the daemon calls this *before* logging the swap
    /// frame, so a recorded log never contains a swap a replay would
    /// refuse.
    ///
    /// # Errors
    ///
    /// [`SbedError::Draining`] after finish; envelope/lineage/schema
    /// errors via the `streamd`/`mlkit` conversions.
    pub fn prepare_swap(&self, envelope: &[u8]) -> Result<SessionSwap> {
        if self.finished {
            return Err(SbedError::Draining);
        }
        let (artifact, lineage) = PipelineArtifact::from_bytes_with_lineage(envelope)?;
        lineage
            .verify_succession(self.champion_checksum, self.champion_generation)
            .map_err(streamd::StreamError::from)?;
        let prepared = self
            .step
            .prepare_swap(Arc::new(artifact), lineage.generation)?;
        Ok(SessionSwap {
            prepared,
            checksum: fnv1a64(envelope),
            lineage_generation: lineage.generation,
        })
    }

    /// Commits a prepared hot swap at the current request-sequence
    /// boundary: the pending batch is flushed and scored by the old
    /// generation (its SCORES responses are routed and emitted here, so
    /// no in-flight launch is dropped or double-scored), then the
    /// challenger becomes the champion. Every response emitted after
    /// this call is attributable to the new generation.
    ///
    /// # Errors
    ///
    /// Scoring-core failures during the boundary flush (the swap is not
    /// committed).
    pub fn apply_swap(&mut self, swap: SessionSwap) -> Result<Vec<EncodedResponse>> {
        let mut rs = Vec::new();
        let mut sink = NullSink;
        let mut out = std::mem::take(&mut self.out);
        let now_min = self.current_minute.unwrap_or(0);
        let result =
            self.step
                .swap_artifact(now_min, swap.prepared, &mut out, &mut sink, &mut self.rec);
        self.out = out;
        result?;
        self.route_out(&mut rs);
        self.champion_checksum = swap.checksum;
        self.champion_generation = swap.lineage_generation;
        self.n_swaps += 1;
        Ok(rs)
    }

    /// Finalises a session that ends without a FINISH frame (daemon
    /// drain): flushes pending work and emits whatever SCORES complete.
    /// The replayer applies the same rule at end-of-log, so drained
    /// sessions replay bit-identically too.
    ///
    /// # Errors
    ///
    /// Scoring-core failures.
    pub fn finalize(&mut self) -> Result<Vec<EncodedResponse>> {
        let mut rs = Vec::new();
        if self.finished {
            return Ok(rs);
        }
        let mut sink = NullSink;
        let mut out = std::mem::take(&mut self.out);
        self.step.step_finish(&mut out, &mut sink, &mut self.rec)?;
        self.out = out;
        self.finished = true;
        self.route_out(&mut rs);
        Ok(rs)
    }
}

/// The mitigation decision wire code for one scored row — mirrors
/// `streamd::serve::Alert::for_launch`'s escalation rule.
fn decision_of(s: &ScoredLaunch) -> u8 {
    if !s.predicted {
        0
    } else if s.probability >= DRAIN_THRESHOLD {
        2
    } else {
        1
    }
}
