//! The wire client and the mock-fleet load driver.
//!
//! [`Connection`] is a thin blocking client for one TCP connection:
//! frame encoding, response decoding, nothing clever. [`run_fleet`]
//! drives many connections at once against one daemon — the mock
//! fleet: a shared event list is partitioned round-robin, every
//! connection ships its slice in increasing sequence order with a
//! bounded in-flight window, retransmits on typed overload responses,
//! and (for designated failure connections) first sends every k-th
//! frame with a corrupted checksum to exercise the daemon's damage
//! handling live before retransmitting it clean.
//!
//! Because the daemon sequences by request id, the fleet's scores are
//! bit-identical to feeding the same event list through one
//! [`crate::session::ScoreSession`] in process — regardless of
//! connection count, interleaving, overloads, or injected corruption.
//! The parity suite holds it to that.
//!
//! Latency observations go through an injected [`obskit::Clock`]; with
//! the deterministic [`obskit::NullClock`] all latencies are zero and
//! the fleet outcome is reproducible byte for byte.

use crate::wire::{
    self, ErrorPayload, ReportPayload, ScoresPayload, WireEvent, KIND_ACK, KIND_ERROR, KIND_EVENT,
    KIND_FINISH, KIND_REPORT, KIND_SCORES,
};
use crate::{Result, SbedError};
use obskit::{Clock, Recorder};
use std::collections::{BTreeMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One response frame, decoded.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseBody {
    /// Event admitted.
    Ack,
    /// Per-node scores for one launch.
    Scores(ScoresPayload),
    /// Typed rejection.
    Error(ErrorPayload),
    /// End-of-stream report.
    Report(ReportPayload),
}

/// A decoded response with the request it answers.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The request this response answers.
    pub request_id: u64,
    /// The body.
    pub body: ResponseBody,
}

/// A blocking client connection.
#[derive(Debug)]
pub struct Connection {
    stream: TcpStream,
}

impl Connection {
    /// Connects (with TCP_NODELAY for request/response latency).
    ///
    /// # Errors
    ///
    /// Socket I/O.
    pub fn connect(addr: SocketAddr) -> Result<Connection> {
        let stream = TcpStream::connect(addr).map_err(|e| SbedError::Io {
            context: format!("connecting to {addr}"),
            source: e,
        })?;
        stream.set_nodelay(true).ok();
        Ok(Connection { stream })
    }

    /// Sends raw frame bytes.
    ///
    /// # Errors
    ///
    /// Socket I/O.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<()> {
        self.stream.write_all(bytes).map_err(|e| SbedError::Io {
            context: "sending frame".into(),
            source: e,
        })
    }

    /// Sends one event under sequence number `seq`.
    ///
    /// # Errors
    ///
    /// Socket I/O.
    pub fn send_event(&mut self, seq: u64, event: &WireEvent) -> Result<()> {
        self.send_raw(&wire::encode_frame(KIND_EVENT, seq, &event.encode()))
    }

    /// Sends the FINISH request under sequence number `seq`.
    ///
    /// # Errors
    ///
    /// Socket I/O.
    pub fn send_finish(&mut self, seq: u64) -> Result<()> {
        self.send_raw(&wire::encode_frame(KIND_FINISH, seq, &[]))
    }

    /// Receives one response. `Ok(None)` means the server closed the
    /// connection cleanly between frames.
    ///
    /// # Errors
    ///
    /// Socket I/O, frame damage, and non-response frame kinds.
    pub fn recv(&mut self) -> Result<Option<Response>> {
        let mut hdr = [0u8; wire::HEADER_LEN];
        let mut got = 0usize;
        while got < hdr.len() {
            let window = hdr.get_mut(got..).unwrap_or(&mut []);
            match self.stream.read(window) {
                Ok(0) => {
                    if got == 0 {
                        return Ok(None);
                    }
                    return Err(SbedError::Truncated {
                        what: "response header",
                        need: wire::HEADER_LEN,
                        have: got,
                    });
                }
                Ok(n) => got += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    return Err(SbedError::Io {
                        context: "receiving response".into(),
                        source: e,
                    })
                }
            }
        }
        let header = wire::validate_header(&hdr)?;
        let mut payload = vec![0u8; header.len as usize];
        self.stream
            .read_exact(&mut payload)
            .map_err(|e| SbedError::Io {
                context: "receiving response payload".into(),
                source: e,
            })?;
        let computed = mlkit::artifact::fnv1a64(&payload);
        if computed != header.checksum {
            return Err(SbedError::Checksum {
                stored: header.checksum,
                computed,
            });
        }
        let body = match header.kind {
            KIND_ACK => ResponseBody::Ack,
            KIND_SCORES => ResponseBody::Scores(ScoresPayload::decode(&payload)?),
            KIND_ERROR => ResponseBody::Error(ErrorPayload::decode(&payload)?),
            KIND_REPORT => ResponseBody::Report(ReportPayload::decode(&payload)?),
            other => {
                return Err(SbedError::Protocol {
                    reason: format!("server sent non-response kind {other:#06x}"),
                })
            }
        };
        Ok(Some(Response {
            request_id: header.request_id,
            body,
        }))
    }
}

/// Mock-fleet shape and failure injection.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Concurrent connections (simulated fleet nodes).
    pub conns: usize,
    /// Per-connection in-flight window (unanswered requests).
    pub window: usize,
    /// The first `failure_conns` connections are failure nodes.
    pub failure_conns: usize,
    /// Failure nodes first send every `corrupt_every`-th of their
    /// frames with a flipped checksum byte (0 disables), then
    /// retransmit clean after the typed rejection.
    pub corrupt_every: u64,
}

impl FleetConfig {
    /// `conns` healthy connections with a 32-frame window.
    pub fn healthy(conns: usize) -> FleetConfig {
        FleetConfig {
            conns,
            window: 32,
            failure_conns: 0,
            corrupt_every: 0,
        }
    }
}

/// Per-connection driver statistics.
#[derive(Debug, Clone, Default)]
pub struct ConnStats {
    /// Send→ACK (admission) latencies, nanoseconds, completion order
    /// (all zero under [`obskit::NullClock`]).
    pub latencies_ns: Vec<u64>,
    /// Frames retransmitted after a typed overload response.
    pub overload_retries: u64,
    /// Frames deliberately sent corrupted (and their typed rejections
    /// observed) before the clean retransmit.
    pub corruption_retries: u64,
}

/// What the whole fleet run produced.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// Every SCORES response, keyed by request id (= global event
    /// index).
    pub scores: BTreeMap<u64, ScoresPayload>,
    /// The FINISH report.
    pub report: ReportPayload,
    /// Per-connection stats, connection order.
    pub stats: Vec<ConnStats>,
    /// ACKs received across the fleet.
    pub n_acks: u64,
}

impl FleetOutcome {
    /// Folds every connection's latencies into `rec` as the
    /// `sbed.latency_ns` histogram plus request/retry counters —
    /// connection order, so the snapshot is deterministic for a
    /// deterministic clock.
    pub fn observe(&self, rec: &mut Recorder) {
        for s in &self.stats {
            for &ns in &s.latencies_ns {
                rec.observe("sbed.latency_ns", ns as f64);
            }
            rec.incr("sbed.fleet_overload_retries", s.overload_retries);
            rec.incr("sbed.fleet_corruption_retries", s.corruption_retries);
        }
        rec.incr("sbed.fleet_acks", self.n_acks);
        rec.incr("sbed.fleet_scores", self.scores.len() as u64);
    }
}

/// One connection's work item.
struct Job {
    seq: u64,
    bytes: Vec<u8>,
    is_launch: bool,
    is_finish: bool,
    /// Already sent corrupted once — retransmits go out clean so a
    /// `corrupt_every` of 1 cannot loop forever.
    corrupted_once: bool,
}

struct ConnOutcome {
    scores: BTreeMap<u64, ScoresPayload>,
    report: Option<ReportPayload>,
    stats: ConnStats,
    n_acks: u64,
}

/// Flips one checksum byte so the frame arrives damaged but
/// well-framed (header length intact → the daemon rejects and the
/// connection survives).
fn corrupt(bytes: &[u8]) -> Vec<u8> {
    let mut out = bytes.to_vec();
    if let Some(b) = out.get_mut(20) {
        *b ^= 0xff;
    }
    out
}

fn drive_conn(
    addr: SocketAddr,
    jobs: Vec<Job>,
    window: usize,
    corrupt_every: u64,
    clock: &dyn Clock,
) -> Result<ConnOutcome> {
    let mut conn = Connection::connect(addr)?;
    let mut pending: VecDeque<Job> = jobs.into();
    let expected_scores = pending.iter().filter(|j| j.is_launch).count();
    let expects_report = pending.iter().any(|j| j.is_finish);
    // seq → (job, send time, corrupted copy outstanding)
    let mut outstanding: BTreeMap<u64, (Job, u64, bool)> = BTreeMap::new();
    let mut out = ConnOutcome {
        scores: BTreeMap::new(),
        report: None,
        stats: ConnStats::default(),
        n_acks: 0,
    };
    let mut sent = 0u64;
    let mut overload_backoff = 0u32;
    loop {
        while outstanding.len() < window {
            let Some(mut job) = pending.pop_front() else {
                break;
            };
            sent += 1;
            let mangle =
                corrupt_every > 0 && sent.is_multiple_of(corrupt_every) && !job.corrupted_once;
            let wire_bytes = if mangle {
                corrupt(&job.bytes)
            } else {
                job.bytes.clone()
            };
            if mangle {
                job.corrupted_once = true;
            }
            conn.send_raw(&wire_bytes)?;
            outstanding.insert(job.seq, (job, clock.now_nanos(), mangle));
        }
        let done = pending.is_empty()
            && outstanding.is_empty()
            && out.scores.len() >= expected_scores
            && (!expects_report || out.report.is_some());
        if done {
            return Ok(out);
        }
        let resp = match conn.recv()? {
            Some(r) => r,
            None => {
                return Err(SbedError::Protocol {
                    reason: "server closed with requests outstanding".into(),
                })
            }
        };
        let id = resp.request_id;
        match resp.body {
            ResponseBody::Ack => {
                out.n_acks += 1;
                overload_backoff = 0;
                // Latency is send→ACK: the admission latency, measured
                // uniformly for every event kind (a launch's SCORES
                // arrives whenever its batch flushes, which measures
                // batching policy, not the daemon).
                if let Some((_job, t0, _)) = outstanding.remove(&id) {
                    out.stats
                        .latencies_ns
                        .push(clock.now_nanos().saturating_sub(t0));
                }
            }
            ResponseBody::Scores(p) => {
                out.scores.insert(id, p);
                overload_backoff = 0;
                // The launch's window slot was released by its ACK;
                // nothing outstanding to clear here.
            }
            ResponseBody::Report(r) => {
                out.report = Some(r);
                outstanding.remove(&id);
            }
            ResponseBody::Error(e)
                if e.code == wire::ERR_OVERLOAD || e.code == wire::ERR_MALFORMED =>
            {
                // Typed refusal: retransmit the clean frame. Overloads
                // back off briefly so a saturated daemon can drain.
                let Some((job, _, was_corrupt)) = outstanding.remove(&id) else {
                    return Err(SbedError::Protocol {
                        reason: format!("rejection for unknown sequence {id}"),
                    });
                };
                if e.code == wire::ERR_OVERLOAD {
                    out.stats.overload_retries += 1;
                    overload_backoff = (overload_backoff + 1).min(6);
                    std::thread::sleep(Duration::from_micros(50u64 << overload_backoff));
                } else if was_corrupt {
                    out.stats.corruption_retries += 1;
                } else {
                    return Err(SbedError::Rejected {
                        code: e.code,
                        message: e.message,
                    });
                }
                // Resend next loop iteration, clean, same sequence.
                pending.push_front(job);
            }
            ResponseBody::Error(e) => {
                return Err(SbedError::Rejected {
                    code: e.code,
                    message: e.message,
                });
            }
        }
    }
}

/// Drives the mock fleet: partitions `events` round-robin over
/// `cfg.conns` connections (event index = request id = admission
/// sequence), appends a FINISH from the connection owning the final
/// sequence, and runs every connection on its own thread.
///
/// # Errors
///
/// Connection failures, protocol violations, and non-retryable
/// rejections. A missing FINISH report is a protocol violation.
pub fn run_fleet(
    addr: SocketAddr,
    events: &[WireEvent],
    cfg: &FleetConfig,
    clock: &dyn Clock,
) -> Result<FleetOutcome> {
    if cfg.conns == 0 || cfg.window == 0 {
        return Err(SbedError::InvalidConfig {
            reason: "fleet needs at least one connection and a window of at least 1".into(),
        });
    }
    // Partition: event i goes to connection i % conns, so every
    // connection's sequence numbers increase — the invariant that
    // makes the daemon's sequencer deadlock-free under any window.
    let mut slices: Vec<Vec<Job>> = (0..cfg.conns).map(|_| Vec::new()).collect();
    for (i, ev) in events.iter().enumerate() {
        let seq = i as u64;
        let job = Job {
            seq,
            bytes: wire::encode_frame(KIND_EVENT, seq, &ev.encode()),
            is_launch: matches!(ev, WireEvent::Launch { .. }),
            is_finish: false,
            corrupted_once: false,
        };
        if let Some(slot) = slices.get_mut(i % cfg.conns) {
            slot.push(job);
        }
    }
    let finish_seq = events.len() as u64;
    let finish_conn = events.len() % cfg.conns;
    if let Some(slot) = slices.get_mut(finish_conn) {
        slot.push(Job {
            seq: finish_seq,
            bytes: wire::encode_frame(KIND_FINISH, finish_seq, &[]),
            is_launch: false,
            is_finish: true,
            corrupted_once: false,
        });
    }

    let results: Vec<Result<ConnOutcome>> = std::thread::scope(|scope| {
        let handles: Vec<_> = slices
            .into_iter()
            .enumerate()
            .map(|(c, jobs)| {
                let corrupt_every = if c < cfg.failure_conns {
                    cfg.corrupt_every
                } else {
                    0
                };
                let window = cfg.window;
                scope.spawn(move || drive_conn(addr, jobs, window, corrupt_every, clock))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(_) => Err(SbedError::Internal {
                    reason: "fleet thread panicked".into(),
                }),
            })
            .collect()
    });

    let mut outcome = FleetOutcome {
        scores: BTreeMap::new(),
        report: ReportPayload::default(),
        stats: Vec::with_capacity(cfg.conns),
        n_acks: 0,
    };
    let mut report = None;
    for r in results {
        let mut c = r?;
        outcome.scores.append(&mut c.scores);
        outcome.n_acks += c.n_acks;
        if c.report.is_some() {
            report = c.report;
        }
        outcome.stats.push(c.stats);
    }
    outcome.report = report.ok_or(SbedError::Protocol {
        reason: "fleet finished without a FINISH report".into(),
    })?;
    Ok(outcome)
}
