//! Back-pressure, drain, and live-damage behaviour of the daemon.
//!
//! Every refusal must be a *typed response* — never a silent drop —
//! and a drained daemon must finish what it admitted, refuse new
//! work, close its port, and leave a recorded log that replays byte
//! for byte.

mod common;

use common::synthetic_artifact;
use sbed::client::{Connection, ResponseBody};
use sbed::daemon::{Daemon, DaemonConfig};
use sbed::fleet::{synth_events, SynthConfig};
use sbed::replay::replay_log_file;
use sbed::wire::{self, WireEvent};
use std::sync::Arc;
use streamd::serve::ServeConfig;
use titan_sim::topology::Topology;

fn tick(minute: u64) -> WireEvent {
    WireEvent::Tick { minute }
}

fn spawn_daemon(mutate: impl FnOnce(&mut DaemonConfig)) -> Daemon {
    let artifact = Arc::new(synthetic_artifact());
    let topology = Topology::tiny().expect("tiny topology");
    let mut cfg = DaemonConfig::new("127.0.0.1:0", ServeConfig::window(0, 1_000), topology);
    mutate(&mut cfg);
    Daemon::spawn(artifact, cfg).expect("daemon spawns")
}

fn expect_ack(conn: &mut Connection, seq: u64) {
    let r = conn.recv().expect("recv").expect("response");
    assert_eq!(r.request_id, seq);
    assert_eq!(r.body, ResponseBody::Ack, "seq {seq}: expected ACK");
}

fn expect_error(conn: &mut Connection, seq: u64, code: u16) -> String {
    let r = conn.recv().expect("recv").expect("response");
    assert_eq!(r.request_id, seq);
    match r.body {
        ResponseBody::Error(e) => {
            assert_eq!(e.code, code, "seq {seq}: wrong error code ({})", e.message);
            e.message
        }
        other => panic!("seq {seq}: expected error {code}, got {other:?}"),
    }
}

/// A full per-connection window refuses with a typed ERR_OVERLOAD
/// response; the refused request can be retransmitted and the run
/// still completes.
#[test]
fn conn_window_overload_is_typed_not_dropped() {
    let daemon = spawn_daemon(|c| c.conn_window = 1);
    let addr = daemon.addr();
    let mut a = Connection::connect(addr).expect("conn a");
    let mut b = Connection::connect(addr).expect("conn b");

    // seq 1 arrives first: held for the sequencer, occupying conn A's
    // whole window (no response until seq 0 admits it).
    a.send_event(1, &tick(1)).expect("send 1");
    // A deterministic beat so the reader has queued seq 1 before the
    // next frame (the window check is per-reader, in arrival order).
    std::thread::sleep(std::time::Duration::from_millis(50));
    a.send_event(2, &tick(2)).expect("send 2");
    expect_error(&mut a, 2, wire::ERR_OVERLOAD);

    // Conn B supplies seq 0: the sequencer admits 0 then 1, freeing
    // A's window.
    b.send_event(0, &tick(0)).expect("send 0");
    expect_ack(&mut b, 0);
    expect_ack(&mut a, 1);

    // The refused frame retransmits cleanly.
    a.send_event(2, &tick(2)).expect("resend 2");
    expect_ack(&mut a, 2);

    b.send_finish(3).expect("finish");
    let r = b.recv().expect("recv").expect("report");
    assert!(matches!(r.body, ResponseBody::Report(_)));

    let report = daemon.join().expect("join");
    assert_eq!(report.report.n_events, 3);
    assert!(report.n_overloads >= 1, "overload refusal not counted");
}

/// The bounded reorder buffer refuses early arrivals with
/// ERR_OVERLOAD, and stale/duplicate sequence numbers with
/// ERR_REJECTED — all typed, all retransmittable where it makes sense.
#[test]
fn reorder_buffer_and_sequence_rejections_are_typed() {
    let daemon = spawn_daemon(|c| c.reorder_capacity = 1);
    let addr = daemon.addr();
    let mut conn = Connection::connect(addr).expect("conn");

    conn.send_event(1, &tick(1)).expect("send 1"); // buffered (waiting for 0)
    conn.send_event(2, &tick(2)).expect("send 2"); // buffer full
    expect_error(&mut conn, 2, wire::ERR_OVERLOAD);
    conn.send_event(1, &tick(1)).expect("send dup 1"); // already queued
    expect_error(&mut conn, 1, wire::ERR_REJECTED);

    conn.send_event(0, &tick(0)).expect("send 0"); // admits 0 and then 1
    expect_ack(&mut conn, 0);
    expect_ack(&mut conn, 1);

    conn.send_event(0, &tick(0)).expect("send stale 0"); // already admitted
    expect_error(&mut conn, 0, wire::ERR_REJECTED);

    conn.send_event(2, &tick(2)).expect("resend 2");
    expect_ack(&mut conn, 2);
    conn.send_finish(3).expect("finish");
    let r = conn.recv().expect("recv").expect("report");
    assert!(matches!(r.body, ResponseBody::Report(_)));

    let report = daemon.join().expect("join");
    assert_eq!(report.report.n_events, 3);
    assert!(report.n_overloads >= 1);
}

/// Drain finishes everything admitted, then the port closes: new
/// connection attempts are refused by the OS.
#[test]
fn drain_completes_admitted_work_and_closes_the_port() {
    let daemon = spawn_daemon(|c| c.exit_on_finish = false);
    let addr = daemon.addr();
    let mut conn = Connection::connect(addr).expect("conn");

    for seq in 0..10u64 {
        conn.send_event(seq, &tick(seq)).expect("send");
        expect_ack(&mut conn, seq);
    }

    daemon.drain();
    let report = daemon.join().expect("join");
    // Everything admitted before the drain was scored and reported.
    assert_eq!(report.report.n_events, 10);
    assert!(!report.snapshot.is_empty());
    assert_ne!(report.response_fnv, 0);

    // The listener is gone: connecting again must fail.
    assert!(
        Connection::connect(addr).is_err(),
        "post-drain connection was accepted"
    );
    // The drained server closed our connection (any buffered responses
    // were flushed first; recv eventually reports the close).
    while let Ok(Some(_)) = conn.recv() {}
}

/// Recoverable transport damage (checksum, version, non-request kind)
/// gets a typed error and the connection lives on; framing-destroying
/// damage (bad magic) gets a typed error and then the connection
/// closes. Neither enters the replay surface.
#[test]
fn live_connection_survives_recoverable_damage() {
    let daemon = spawn_daemon(|_| {});
    let addr = daemon.addr();

    // A framing-destroyed connection: typed error, then closed.
    let mut broken = Connection::connect(addr).expect("broken conn");
    let mut bad_magic = wire::encode_frame(wire::KIND_EVENT, 900, &tick(0).encode());
    bad_magic[0] = b'X';
    broken.send_raw(&bad_magic).expect("send bad magic");
    expect_error(&mut broken, 900, wire::ERR_MALFORMED);
    // The server abandons the connection (clean close or reset — its
    // reader stopped mid-frame, so an RST is legitimate).
    match broken.recv() {
        Ok(None) | Err(_) => {}
        Ok(Some(r)) => panic!("connection survived unrecoverable framing damage: {r:?}"),
    }

    // A connection taking recoverable damage keeps working.
    let mut conn = Connection::connect(addr).expect("conn");

    let mut bad_sum = wire::encode_frame(wire::KIND_EVENT, 100, &tick(0).encode());
    bad_sum[20] ^= 0xff;
    conn.send_raw(&bad_sum).expect("send bad checksum");
    expect_error(&mut conn, 100, wire::ERR_MALFORMED);

    let mut bad_version = wire::encode_frame(wire::KIND_EVENT, 101, &tick(0).encode());
    bad_version[4] = 9;
    conn.send_raw(&bad_version).expect("send bad version");
    expect_error(&mut conn, 101, wire::ERR_MALFORMED);

    // A response kind is not a request.
    let not_request = wire::encode_frame(wire::KIND_ACK, 102, &[]);
    conn.send_raw(&not_request).expect("send non-request");
    expect_error(&mut conn, 102, wire::ERR_MALFORMED);

    // The same connection then carries a full run.
    for seq in 0..3u64 {
        conn.send_event(seq, &tick(seq)).expect("send");
        expect_ack(&mut conn, seq);
    }
    conn.send_finish(3).expect("finish");
    let r = conn.recv().expect("recv").expect("report");
    assert!(matches!(r.body, ResponseBody::Report(_)));

    let report = daemon.join().expect("join");
    assert_eq!(
        report.report.n_events, 3,
        "damaged frames leaked into the session"
    );
    assert_eq!(report.n_transport_errors, 4);
}

/// A recorded run — drained mid-stream, so the end-of-log rule fires —
/// replays bit-identically: same response checksum, same report, same
/// metrics snapshot bytes.
#[test]
fn drained_recorded_log_replays_byte_identically() {
    let log_path = std::env::temp_dir().join(format!("sbed_drain_log_{}.bin", std::process::id()));
    let artifact = synthetic_artifact();
    let topology = Topology::tiny().expect("tiny topology");
    let serve = ServeConfig::window(0, 1_000);

    let mut cfg = DaemonConfig::new("127.0.0.1:0", serve, topology);
    cfg.record_log = Some(log_path.clone());
    cfg.exit_on_finish = false;
    let daemon = Daemon::spawn(Arc::new(artifact.clone()), cfg).expect("daemon spawns");
    let addr = daemon.addr();

    // A real mixed workload (ticks, launches, SBE deltas), no FINISH:
    // the drain supplies the ending.
    let events = synth_events(&SynthConfig::demo(11, 64));
    let mut conn = Connection::connect(addr).expect("conn");
    let mut acks = 0u64;
    for (seq, ev) in events.iter().enumerate() {
        conn.send_event(seq as u64, ev).expect("send");
        // Keep the window at 1: read until this event's ACK arrives
        // (score frames for earlier launches may come first).
        loop {
            let r = conn.recv().expect("recv").expect("response");
            match r.body {
                ResponseBody::Ack => {
                    assert_eq!(r.request_id, seq as u64);
                    acks += 1;
                    break;
                }
                ResponseBody::Scores(_) => {}
                other => panic!("seq {seq}: unexpected {other:?}"),
            }
        }
    }
    assert_eq!(acks, events.len() as u64);

    daemon.drain();
    let live = daemon.join().expect("join");
    assert_eq!(live.report.n_events, events.len() as u64);

    let replayed = replay_log_file(
        &log_path,
        &artifact,
        &serve,
        Topology::tiny().expect("topo"),
    )
    .expect("replay");
    assert_eq!(replayed.n_frames, events.len() as u64);
    assert_eq!(
        replayed.response_fnv, live.response_fnv,
        "response stream diverged"
    );
    assert_eq!(replayed.report, live.report, "report diverged");
    assert_eq!(
        replayed.snapshot, live.snapshot,
        "metrics snapshot not byte-stable"
    );

    std::fs::remove_file(&log_path).ok();
}
