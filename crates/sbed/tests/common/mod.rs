//! Shared fixture: a fast synthetic artifact for daemon tests.
//!
//! Training a real artifact from a simulated trace takes seconds; the
//! daemon suites only need *an* artifact whose scores are
//! deterministic, so this fits a small GBDT on seeded random rows
//! under the no-telemetry spec (the spec network artifacts ship with,
//! since telemetry does not travel on the wire).

use mlkit::dataset::Dataset;
use mlkit::gbdt::Gbdt;
use mlkit::model::Classifier;
use mlkit::scaler::StandardScaler;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sbepred::features::FeatureSpec;
use streamd::artifact::{PipelineArtifact, PipelineModel};

/// A deterministic synthetic pipeline artifact: no-telemetry spec,
/// 160 seeded random rows, GBDT(12 trees, depth 3). Even node ids are
/// the frozen offender set, so roughly half of all scored rows take
/// the stage-2 path.
pub fn synthetic_artifact() -> PipelineArtifact {
    let spec = FeatureSpec::no_telemetry();
    let n = spec.n_features();
    let mut rng = StdRng::seed_from_u64(42);
    let rows: Vec<Vec<f32>> = (0..160)
        .map(|_| (0..n).map(|_| rng.gen::<f32>() * 2.0 - 1.0).collect())
        .collect();
    let y: Vec<f32> = rows
        .iter()
        .map(|r| {
            if r.iter().sum::<f32>() > 0.0 {
                1.0
            } else {
                0.0
            }
        })
        .collect();
    let data = Dataset::from_rows(&rows, &y).expect("fixture dataset");
    let scaler = StandardScaler::fit(&data).expect("fixture scaler");
    let scaled = scaler.transform(&data).expect("fixture transform");
    let mut model = Gbdt::new()
        .n_trees(12)
        .max_depth(3)
        .min_samples_leaf(2)
        .seed(5);
    model.fit(&scaled).expect("fixture fit");
    let offenders: Vec<u32> = (0..64).step_by(2).collect();
    PipelineArtifact::new(
        spec,
        offenders,
        scaler,
        PipelineModel::Gbdt(model),
        0,
        "synthetic",
    )
}
