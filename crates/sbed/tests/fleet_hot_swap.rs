//! Zero-downtime hot swap under fleet load.
//!
//! A 100-connection mock fleet drives a synthetic workload through the
//! daemon while a lineage-verified challenger is swapped in mid-stream.
//! The suite locks the swap-boundary contract:
//!
//! * every request is answered exactly once — no response dropped, no
//!   launch double-scored, the score universe identical to a no-swap
//!   run;
//! * the end-of-run report attributes the run to exactly one committed
//!   swap and the final generation;
//! * the recorded request log (which embeds the swap at its admission
//!   boundary) replays byte-identically — same rolling response
//!   checksum, report, and metrics snapshot — at 1, 2, and 8 scoring
//!   workers;
//! * a challenger with a broken succession header is refused without
//!   perturbing a single score.

mod common;

use common::synthetic_artifact;
use mlkit::artifact::Lineage;
use mlkit::dataset::Dataset;
use mlkit::gbdt::Gbdt;
use mlkit::hash::fnv1a64;
use mlkit::model::Classifier;
use mlkit::scaler::StandardScaler;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sbed::client::{run_fleet, FleetConfig, FleetOutcome};
use sbed::daemon::{Daemon, DaemonConfig, DaemonReport};
use sbed::fleet::{synth_events, SynthConfig};
use sbed::replay::replay_log_file;
use sbed::wire::WireEvent;
use sbepred::features::FeatureSpec;
use std::collections::BTreeMap;
use std::sync::Arc;
use streamd::artifact::{PipelineArtifact, PipelineModel};
use streamd::serve::ServeConfig;
use titan_sim::topology::Topology;

/// (aprun, node) → (probability bits, hard decision).
type ScoreMap = BTreeMap<(u32, u32), (u32, bool)>;

/// A challenger over the fixture champion: same schema (mandatory for
/// a swap), differently seeded model, encoded with a valid succession
/// header naming the champion as parent.
fn challenger_bytes(champion: &PipelineArtifact, generation: u32) -> Vec<u8> {
    let spec = FeatureSpec::no_telemetry();
    let n = spec.n_features();
    let mut rng = StdRng::seed_from_u64(1717);
    let rows: Vec<Vec<f32>> = (0..160)
        .map(|_| (0..n).map(|_| rng.gen::<f32>() * 2.0 - 1.0).collect())
        .collect();
    let y: Vec<f32> = rows
        .iter()
        .map(|r| {
            if r.iter().sum::<f32>() > 0.0 {
                1.0
            } else {
                0.0
            }
        })
        .collect();
    let data = Dataset::from_rows(&rows, &y).expect("challenger dataset");
    let scaler = StandardScaler::fit(&data).expect("challenger scaler");
    let scaled = scaler.transform(&data).expect("challenger transform");
    let mut model = Gbdt::new()
        .n_trees(12)
        .max_depth(3)
        .min_samples_leaf(2)
        .seed(6);
    model.fit(&scaled).expect("challenger fit");
    let challenger = PipelineArtifact::new(
        spec,
        champion.offenders().to_vec(),
        scaler,
        PipelineModel::Gbdt(model),
        60,
        "adapt-g1",
    );
    let parent = fnv1a64(&champion.to_bytes().expect("champion bytes"));
    let lineage = Lineage::child_of(parent, generation.wrapping_sub(1), 0, 60);
    challenger
        .to_bytes_with_lineage(lineage)
        .expect("challenger envelope")
}

/// The fleet workload: ~1k events, ~2.4k score requests on the tiny
/// 64-node topology.
fn workload() -> (Topology, SynthConfig, Vec<WireEvent>) {
    let topology = Topology::tiny().expect("tiny topology");
    let synth = SynthConfig {
        seed: 0x05ee_d5a9,
        n_nodes: topology.n_nodes(),
        minutes: 60,
        launches_per_min: 10,
        max_nodes_per_launch: 6,
        n_apps: 16,
        sbe_per_min: 5,
    };
    let events = synth_events(&synth);
    (topology, synth, events)
}

/// Runs one daemon + 100-connection fleet pass, optionally scheduling
/// `swaps` (boundary sequence, envelope bytes) before load starts.
fn run_with_swaps(
    artifact: &PipelineArtifact,
    serve_cfg: &ServeConfig,
    topology: Topology,
    events: &[WireEvent],
    swaps: &[(u64, Vec<u8>)],
    record_log: Option<std::path::PathBuf>,
) -> (FleetOutcome, DaemonReport) {
    let mut cfg = DaemonConfig::new("127.0.0.1:0", *serve_cfg, topology);
    cfg.record_log = record_log;
    let daemon = Daemon::spawn(Arc::new(artifact.clone()), cfg).expect("daemon spawns");
    for (at_seq, bytes) in swaps {
        daemon.swap_at(*at_seq, bytes.clone()).expect("swap_at");
    }
    let outcome = run_fleet(
        daemon.addr(),
        events,
        &FleetConfig::healthy(100),
        &obskit::NullClock,
    )
    .expect("fleet run");
    let report = daemon.join().expect("daemon join");
    (outcome, report)
}

fn score_map(outcome: &FleetOutcome) -> ScoreMap {
    let mut map = ScoreMap::new();
    for scores in outcome.scores.values() {
        for e in &scores.entries {
            let prev = map.insert(
                (scores.aprun, e.node),
                (e.probability.to_bits(), e.predicted),
            );
            assert!(
                prev.is_none(),
                "double-scored (aprun {}, node {})",
                scores.aprun,
                e.node
            );
        }
    }
    map
}

#[test]
fn hot_swap_under_fleet_load_drops_nothing_and_replays_byte_identically() {
    let (topology, synth, events) = workload();
    let champion = synthetic_artifact();
    let swap_bytes = challenger_bytes(&champion, 1);
    // The swap lands at the stream's midpoint: frames below the
    // boundary score under generation 0, the rest under generation 1.
    let swap_at = events.len() as u64 / 2;

    // Reference universe: the same fleet with no swap scheduled.
    let base_cfg = ServeConfig::window(0, synth.minutes);
    let (clean, clean_report) = run_with_swaps(&champion, &base_cfg, topology, &events, &[], None);
    let clean_map = score_map(&clean);
    assert!(!clean_map.is_empty(), "degenerate workload: nothing scored");
    assert_eq!(clean_report.report.n_swaps, 0);
    assert_eq!(clean_report.report.generation, 0);

    let mut runs: Vec<(usize, FleetOutcome, DaemonReport)> = Vec::new();
    for workers in [1usize, 2, 8] {
        let serve_cfg = ServeConfig {
            threads: parkit::Threads::Fixed(workers),
            ..base_cfg
        };
        let log_path = std::env::temp_dir().join(format!(
            "sbed_hot_swap_{}_{workers}.bin",
            std::process::id()
        ));
        let (outcome, report) = run_with_swaps(
            &champion,
            &serve_cfg,
            topology,
            &events,
            &[(swap_at, swap_bytes.clone())],
            Some(log_path.clone()),
        );

        // Exactly one committed swap, generation advanced, nothing
        // rejected, every frame acknowledged.
        assert_eq!(outcome.n_acks, events.len() as u64);
        assert_eq!(report.report.n_events, events.len() as u64);
        assert_eq!(report.n_rejected, 0);
        assert_eq!(report.n_swaps_rejected, 0);
        assert_eq!(report.report.n_swaps, 1, "the swap must commit");
        assert_eq!(report.report.generation, 1);

        // Zero dropped, zero double-scored: the answered universe is
        // exactly the no-swap universe (probabilities may differ — a
        // different model serves the tail).
        let map = score_map(&outcome);
        assert_eq!(
            map.keys().collect::<Vec<_>>(),
            clean_map.keys().collect::<Vec<_>>(),
            "swap changed the set of answered (aprun, node) requests"
        );
        assert_ne!(
            map, clean_map,
            "the challenger must actually change some post-swap score"
        );
        assert_eq!(report.report.n_requests, clean_report.report.n_requests);

        // The recorded log embeds the swap at its admission boundary:
        // replay must reproduce the response stream byte for byte.
        let replayed = replay_log_file(&log_path, &champion, &serve_cfg, topology).expect("replay");
        assert_eq!(replayed.n_frames, events.len() as u64 + 2); // + SWAP + FINISH
        assert_eq!(
            replayed.response_fnv, report.response_fnv,
            "replay response stream diverged at {workers} workers"
        );
        assert_eq!(replayed.report, report.report);
        assert_eq!(replayed.snapshot, report.snapshot);
        std::fs::remove_file(&log_path).ok();
        runs.push((workers, outcome, report));
    }

    // Worker-thread invariance across the swap boundary.
    let (_, first_outcome, first_report) = &runs[0];
    let first_map = score_map(first_outcome);
    for (workers, outcome, report) in &runs[1..] {
        assert_eq!(
            score_map(outcome),
            first_map,
            "swap scores diverged between 1 and {workers} workers"
        );
        assert_eq!(report.response_fnv, first_report.response_fnv);
        assert_eq!(report.report, first_report.report);
        assert_eq!(report.snapshot, first_report.snapshot);
    }
}

#[test]
fn broken_succession_is_refused_without_perturbing_scores() {
    let (topology, synth, events) = workload();
    let champion = synthetic_artifact();
    let serve_cfg = ServeConfig::window(0, synth.minutes);

    let (clean, clean_report) = run_with_swaps(&champion, &serve_cfg, topology, &events, &[], None);

    // Wrong parent checksum: the lineage names a champion that is not
    // serving. The engine must refuse it before logging anything.
    let spec_ok_parent_bad = {
        let (art, _) = PipelineArtifact::from_bytes_with_lineage(&challenger_bytes(&champion, 1))
            .expect("decode");
        art.to_bytes_with_lineage(Lineage::child_of(0xdead_beef, 0, 0, 60))
            .expect("re-encode")
    };
    // Generation regression: parent is right, but the header claims a
    // generation that does not strictly advance the serving one.
    let generation_stuck = {
        let (art, _) = PipelineArtifact::from_bytes_with_lineage(&challenger_bytes(&champion, 1))
            .expect("decode");
        let parent = fnv1a64(&champion.to_bytes().expect("bytes"));
        let mut lineage = Lineage::child_of(parent, 0, 0, 60);
        lineage.generation = 0;
        art.to_bytes_with_lineage(lineage).expect("re-encode")
    };

    let swap_at = events.len() as u64 / 2;
    let (faulty, faulty_report) = run_with_swaps(
        &champion,
        &serve_cfg,
        topology,
        &events,
        &[
            (swap_at, spec_ok_parent_bad),
            (swap_at + 7, generation_stuck),
        ],
        None,
    );

    assert_eq!(
        faulty_report.n_swaps_rejected, 2,
        "both swaps must be refused"
    );
    assert_eq!(faulty_report.report.n_swaps, 0);
    assert_eq!(faulty_report.report.generation, 0);
    assert_eq!(score_map(&faulty), score_map(&clean));
    assert_eq!(faulty_report.response_fnv, clean_report.response_fnv);
    assert_eq!(faulty_report.report, clean_report.report);
    assert_eq!(faulty_report.snapshot, clean_report.snapshot);
}
