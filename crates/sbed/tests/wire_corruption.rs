//! The wire-protocol corruption battery.
//!
//! Locks down the decoder's totality: every truncation prefix of a
//! valid frame and every damage mode (magic, version, kind, length,
//! checksum, payload) must produce the *matching typed* [`SbedError`] —
//! and nothing, including arbitrary byte flips and random garbage, may
//! panic the decoder.

use proptest::prelude::*;
use sbed::wire::{
    self, ErrorPayload, ReportPayload, ScoreEntry, ScoresPayload, WireEvent, HEADER_LEN,
    KIND_EVENT, MAX_PAYLOAD,
};
use sbed::SbedError;

fn launch_event() -> WireEvent {
    WireEvent::Launch {
        minute: 120,
        aprun: 55,
        app: 9,
        runtime_min: 30,
        core_util: 0.75,
        mem_util: 0.5,
        nodes: vec![2, 7, 11, 13],
    }
}

fn valid_frame() -> Vec<u8> {
    wire::encode_frame(KIND_EVENT, 1234, &launch_event().encode())
}

#[test]
fn every_truncation_prefix_is_a_typed_truncation() {
    let frame = valid_frame();
    for cut in 0..frame.len() {
        let prefix = &frame[..cut];
        match wire::decode_frame(prefix) {
            Err(SbedError::Truncated { what, need, have }) => {
                assert!(
                    have < need,
                    "prefix {cut}: have {have} !< need {need} ({what})"
                );
                // The named field must be the one the cut landed in.
                let expected = match cut {
                    0..=3 => "frame magic",
                    4..=5 => "protocol version",
                    6..=7 => "frame kind",
                    8..=15 => "request id",
                    16..=19 => "payload length",
                    20..=27 => "payload checksum",
                    _ => "payload",
                };
                assert_eq!(what, expected, "prefix {cut} blamed the wrong field");
            }
            other => panic!("prefix {cut}: expected Truncated, got {other:?}"),
        }
    }
    // The full frame decodes.
    let (frame_decoded, used) = wire::decode_frame(&frame).expect("full frame decodes");
    assert_eq!(used, frame.len());
    assert_eq!(
        WireEvent::decode(&frame_decoded.payload).expect("event decodes"),
        launch_event()
    );
}

#[test]
fn magic_damage_is_bad_magic() {
    for i in 0..4 {
        let mut frame = valid_frame();
        frame[i] ^= 0x20;
        match wire::decode_frame(&frame) {
            Err(SbedError::BadMagic { found }) => {
                assert_ne!(found, *b"SBEW");
            }
            other => panic!("magic byte {i}: expected BadMagic, got {other:?}"),
        }
    }
}

#[test]
fn version_damage_is_version() {
    let mut frame = valid_frame();
    frame[4] = 0x42;
    match wire::decode_frame(&frame) {
        Err(SbedError::Version { found, supported }) => {
            assert_eq!(found, 0x42);
            assert_eq!(supported, wire::VERSION);
        }
        other => panic!("expected Version, got {other:?}"),
    }
}

#[test]
fn kind_damage_is_unknown_kind() {
    let mut frame = valid_frame();
    frame[6] = 0x77;
    frame[7] = 0x77;
    match wire::decode_frame(&frame) {
        Err(SbedError::UnknownKind { kind }) => assert_eq!(kind, 0x7777),
        other => panic!("expected UnknownKind, got {other:?}"),
    }
}

#[test]
fn oversize_length_is_rejected_unread() {
    let mut frame = valid_frame();
    let bad = (MAX_PAYLOAD + 1).to_le_bytes();
    frame[16..20].copy_from_slice(&bad);
    match wire::decode_frame(&frame) {
        Err(SbedError::Oversize { len, max }) => {
            assert_eq!(len, MAX_PAYLOAD + 1);
            assert_eq!(max, MAX_PAYLOAD);
        }
        other => panic!("expected Oversize, got {other:?}"),
    }
}

#[test]
fn length_damage_within_cap_is_truncation_or_checksum() {
    // Declaring more payload than is present → truncation of the
    // payload; declaring less → checksum mismatch (the checksum no
    // longer covers what the length delimits).
    let mut long = valid_frame();
    let declared = launch_event().encode().len() as u32;
    long[16..20].copy_from_slice(&(declared + 9).to_le_bytes());
    assert!(matches!(
        wire::decode_frame(&long),
        Err(SbedError::Truncated {
            what: "payload",
            ..
        })
    ));

    let mut short = valid_frame();
    short[16..20].copy_from_slice(&(declared - 1).to_le_bytes());
    assert!(matches!(
        wire::decode_frame(&short),
        Err(SbedError::Checksum { .. })
    ));
}

#[test]
fn checksum_damage_is_checksum() {
    for i in 20..28 {
        let mut frame = valid_frame();
        frame[i] ^= 0xff;
        match wire::decode_frame(&frame) {
            Err(SbedError::Checksum { stored, computed }) => assert_ne!(stored, computed),
            other => panic!("checksum byte {i}: expected Checksum, got {other:?}"),
        }
    }
}

#[test]
fn payload_damage_is_caught_by_checksum() {
    let payload_len = launch_event().encode().len();
    for i in 0..payload_len {
        let mut frame = valid_frame();
        frame[HEADER_LEN + i] ^= 0x01;
        assert!(
            matches!(wire::decode_frame(&frame), Err(SbedError::Checksum { .. })),
            "payload byte {i} flipped but checksum did not catch it"
        );
    }
}

#[test]
fn payload_structural_damage_is_typed() {
    // Unknown event tag.
    let ev = WireEvent::decode(&[9]);
    assert!(matches!(ev, Err(SbedError::Payload { .. })));
    // Truncated mid-field, every prefix.
    let full = launch_event().encode();
    for cut in 0..full.len() {
        match WireEvent::decode(&full[..cut]) {
            Err(SbedError::Truncated { .. }) => {}
            other => panic!("event prefix {cut}: expected Truncated, got {other:?}"),
        }
    }
    // Trailing bytes.
    let mut padded = full.clone();
    padded.push(0);
    assert!(matches!(
        WireEvent::decode(&padded),
        Err(SbedError::Payload { .. })
    ));
    // Zero-node launch.
    let mut zero_nodes = WireEvent::Launch {
        minute: 1,
        aprun: 1,
        app: 1,
        runtime_min: 1,
        core_util: 0.5,
        mem_util: 0.5,
        nodes: vec![1],
    }
    .encode();
    let count_off = zero_nodes.len() - 8;
    zero_nodes[count_off..count_off + 4].copy_from_slice(&0u32.to_le_bytes());
    zero_nodes.truncate(count_off + 4);
    assert!(matches!(
        WireEvent::decode(&zero_nodes),
        Err(SbedError::Payload { .. })
    ));
}

#[test]
fn response_payload_decoders_reject_truncation() {
    let scores = ScoresPayload {
        minute: 5,
        aprun: 2,
        entries: vec![ScoreEntry {
            node: 1,
            probability: 0.5,
            predicted: true,
            stage2: true,
            decision: 1,
        }],
    }
    .encode();
    for cut in 0..scores.len() {
        assert!(
            ScoresPayload::decode(&scores[..cut]).is_err(),
            "scores prefix {cut}"
        );
    }
    let err = ErrorPayload {
        code: 1,
        message: "boom".into(),
    }
    .encode();
    for cut in 0..err.len() {
        assert!(
            ErrorPayload::decode(&err[..cut]).is_err(),
            "error prefix {cut}"
        );
    }
    let report = ReportPayload::default().encode();
    for cut in 0..report.len() {
        assert!(
            ReportPayload::decode(&report[..cut]).is_err(),
            "report prefix {cut}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Random byte flips over a valid frame never panic the decoder,
    /// and any successful decode means the flips landed harmlessly
    /// (the frame re-encodes to something decodable).
    #[test]
    fn byte_flips_never_panic(
        flips in prop::collection::vec((0usize..128, 0usize..256), 1..8),
    ) {
        let mut frame = valid_frame();
        let len = frame.len();
        for (pos, val) in flips {
            frame[pos % len] = val as u8;
        }
        if let Ok((f, used)) = wire::decode_frame(&frame) {
            prop_assert!(used <= frame.len());
            // Whatever decoded must survive the strict payload
            // decoders without panicking either.
            let _ = WireEvent::decode(&f.payload);
        }
    }

    /// Arbitrary garbage never panics the decoder.
    #[test]
    fn random_bytes_never_panic(raw in prop::collection::vec(0usize..256, 0..256)) {
        let bytes: Vec<u8> = raw.into_iter().map(|b| b as u8).collect();
        let _ = wire::decode_frame(&bytes);
        let _ = WireEvent::decode(&bytes);
        let _ = ScoresPayload::decode(&bytes);
        let _ = ErrorPayload::decode(&bytes);
        let _ = ReportPayload::decode(&bytes);
    }
}
