//! Property-based tests for the ML substrate.

use mlkit::dataset::Dataset;
use mlkit::gbdt::Gbdt;
use mlkit::linear::{sigmoid, LogisticRegression};
use mlkit::matrix::Matrix;
use mlkit::model::Classifier;
use mlkit::scaler::{MinMaxScaler, StandardScaler};
use mlkit::tree::QuantileBinner;
use proptest::prelude::*;

fn dataset_strategy(max_n: usize, d: usize) -> impl Strategy<Value = Dataset> {
    prop::collection::vec((prop::collection::vec(-10.0f32..10.0, d), 0u8..2), 4..max_n)
        .prop_filter_map("needs both classes", |rows| {
            let x: Vec<Vec<f32>> = rows.iter().map(|(r, _)| r.clone()).collect();
            let y: Vec<f32> = rows.iter().map(|&(_, l)| l as f32).collect();
            let pos = y.iter().filter(|&&v| v == 1.0).count();
            if pos == 0 || pos == y.len() {
                return None;
            }
            Dataset::from_rows(&x, &y).ok()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn transpose_is_an_involution(
        rows in 1usize..20,
        cols in 1usize..20,
        seed in 0u64..1000,
    ) {
        let data: Vec<f32> = (0..rows * cols)
            .map(|i| ((i as u64).wrapping_mul(seed + 1) % 97) as f32)
            .collect();
        let m = Matrix::from_vec(rows, cols, data).expect("valid");
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_identity_is_neutral(n in 1usize..16, seed in 0u64..1000) {
        let data: Vec<f32> = (0..n * n)
            .map(|i| ((i as u64).wrapping_mul(seed + 3) % 31) as f32)
            .collect();
        let a = Matrix::from_vec(n, n, data).expect("valid");
        let mut eye = Matrix::zeros(n, n);
        for i in 0..n {
            eye.set(i, i, 1.0);
        }
        prop_assert_eq!(a.matmul(&eye).expect("conforms"), a.clone());
        prop_assert_eq!(eye.matmul(&a).expect("conforms"), a);
    }

    #[test]
    fn sigmoid_bounded_and_monotone(a in -50.0f32..50.0, b in -50.0f32..50.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let (sa, sb) = (sigmoid(lo), sigmoid(hi));
        prop_assert!((0.0..=1.0).contains(&sa));
        prop_assert!((0.0..=1.0).contains(&sb));
        prop_assert!(sa <= sb);
    }

    #[test]
    fn standard_scaler_never_produces_nan(ds in dataset_strategy(40, 3)) {
        let sc = StandardScaler::fit(&ds).expect("fits");
        let t = sc.transform(&ds).expect("transforms");
        for v in t.x().as_slice() {
            prop_assert!(v.is_finite());
        }
    }

    #[test]
    fn minmax_scaler_stays_in_unit_interval(ds in dataset_strategy(40, 3)) {
        let sc = MinMaxScaler::fit(&ds).expect("fits");
        let t = sc.transform(&ds).expect("transforms");
        for v in t.x().as_slice() {
            prop_assert!((-1e-6..=1.0 + 1e-6).contains(&(*v as f64)));
        }
    }

    #[test]
    fn binner_preserves_value_order(
        values in prop::collection::vec(-100.0f32..100.0, 8..100),
        probe_a in -100.0f32..100.0,
        probe_b in -100.0f32..100.0,
    ) {
        let rows: Vec<Vec<f32>> = values.iter().map(|&v| vec![v]).collect();
        let x = Matrix::from_rows(&rows).expect("valid");
        let binner = QuantileBinner::fit(&x, 16).expect("fits");
        let (lo, hi) = if probe_a <= probe_b { (probe_a, probe_b) } else { (probe_b, probe_a) };
        prop_assert!(binner.bin_value(0, lo) <= binner.bin_value(0, hi));
    }

    #[test]
    fn binner_value_lands_within_its_cut_bounds(
        values in prop::collection::vec(-100.0f32..100.0, 8..100),
        probe in -100.0f32..100.0,
    ) {
        let rows: Vec<Vec<f32>> = values.iter().map(|&v| vec![v]).collect();
        let x = Matrix::from_rows(&rows).expect("valid");
        let binner = QuantileBinner::fit(&x, 16).expect("fits");
        let b = binner.bin_value(0, probe) as usize;
        let nb = binner.n_bins_for(0);
        prop_assert!(b < nb, "bin {b} out of range {nb}");
        // bin_value counts thresholds <= probe, so the bin's bracketing
        // cuts must contain the value: threshold[b-1] <= probe < threshold[b].
        if b > 0 {
            prop_assert!(binner.threshold(0, b - 1) <= probe);
        }
        if b + 1 < nb {
            prop_assert!(probe < binner.threshold(0, b));
        }
    }

    #[test]
    fn binning_bit_identical_across_thread_policies(
        values in prop::collection::vec(-100.0f32..100.0, 16..80),
    ) {
        // Binning has no internal parallelism; what the determinism
        // contract requires is that dispatching it across parkit workers
        // (as the training engines do) is order-preserving and
        // bit-identical at 1/2/8 threads.
        let rows: Vec<Vec<f32>> = values.iter().map(|&v| vec![v, -v]).collect();
        let x = Matrix::from_rows(&rows).expect("valid");
        let binner = QuantileBinner::fit(&x, 16).expect("fits");
        let idx: Vec<usize> = (0..rows.len()).collect();
        let bin_all = |threads: parkit::Threads| -> Vec<(u8, u8)> {
            parkit::par_map(threads, &idx, |&i| {
                (binner.bin_value(0, rows[i][0]), binner.bin_value(1, rows[i][1]))
            })
        };
        let reference = bin_all(parkit::Threads::Serial);
        for n in [1usize, 2, 8] {
            prop_assert_eq!(bin_all(parkit::Threads::Fixed(n)), reference.clone());
        }
    }

    #[test]
    fn binner_fit_invariant_under_row_permutation_with_nans(
        mut values in prop::collection::vec((-100.0f32..100.0, 0u8..10), 8..60),
        rotate in 0usize..60,
    ) {
        // ~10% of entries become NaN: the total_cmp sort must give NaNs
        // a fixed position, so fitted cuts cannot depend on row order.
        let as_rows = |vals: &[(f32, u8)]| -> Vec<Vec<f32>> {
            vals.iter()
                .map(|&(v, tag)| vec![if tag == 0 { f32::NAN } else { v }])
                .collect()
        };
        let a = Matrix::from_rows(&as_rows(&values)).expect("valid");
        let shift = rotate % values.len();
        values.rotate_left(shift);
        let b = Matrix::from_rows(&as_rows(&values)).expect("valid");
        let fit_cuts = |x: &Matrix| -> Vec<u32> {
            let binner = QuantileBinner::fit(x, 16).expect("fits");
            (0..binner.n_bins_for(0).saturating_sub(1))
                .map(|c| binner.threshold(0, c).to_bits())
                .collect()
        };
        prop_assert_eq!(fit_cuts(&a), fit_cuts(&b));
    }

    #[test]
    fn gbdt_probabilities_always_bounded(ds in dataset_strategy(60, 3)) {
        let mut m = Gbdt::new().n_trees(5).max_depth(3).min_samples_leaf(1);
        if m.fit(&ds).is_ok() {
            for p in m.predict_proba(&ds).expect("predicts") {
                prop_assert!((0.0..=1.0).contains(&p), "probability {p}");
            }
        }
    }

    #[test]
    fn lr_predictions_are_binary(ds in dataset_strategy(60, 3)) {
        let mut m = LogisticRegression::new().epochs(5);
        if m.fit(&ds).is_ok() {
            for p in m.predict(&ds).expect("predicts") {
                prop_assert!(p == 0.0 || p == 1.0);
            }
        }
    }

    #[test]
    fn dataset_select_preserves_class_counts(ds in dataset_strategy(60, 2)) {
        let idx: Vec<usize> = (0..ds.len()).collect();
        let copy = ds.select(&idx);
        prop_assert_eq!(copy.n_positive(), ds.n_positive());
        prop_assert_eq!(copy.n_negative(), ds.n_negative());
        prop_assert_eq!(copy.x().as_slice(), ds.x().as_slice());
    }
}

// --- artifact envelope: lineage round-trip and corruption properties ---

fn lineage_strategy() -> impl Strategy<Value = mlkit::artifact::Lineage> {
    (
        0u64..u64::MAX,
        0u64..1_000_000,
        0u64..1_000_000,
        0u32..u32::MAX,
    )
        .prop_map(
            |(parent_checksum, from, span, generation)| mlkit::artifact::Lineage {
                parent_checksum,
                train_from_min: from,
                train_until_min: from + span,
                generation,
            },
        )
}

fn kind_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(0u8..26, 1..24)
        .prop_map(|v| v.into_iter().map(|b| (b'a' + b) as char).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn envelope_round_trips_any_lineage(
        kind in kind_strategy(),
        schema_hash in 0u64..u64::MAX,
        lineage in lineage_strategy(),
        payload in prop::collection::vec((0u16..256u16).prop_map(|v| v as u8), 0..256),
    ) {
        let env = mlkit::artifact::Envelope::with_lineage(kind, schema_hash, lineage, payload);
        let bytes = env.encode().expect("encode");
        let back = mlkit::artifact::Envelope::decode(&bytes).expect("decode");
        prop_assert_eq!(back, env);
    }

    #[test]
    fn any_truncation_of_any_envelope_is_a_typed_error(
        lineage in lineage_strategy(),
        payload in prop::collection::vec((0u16..256u16).prop_map(|v| v as u8), 0..64),
        cut_seed in 0u64..u64::MAX,
    ) {
        let env = mlkit::artifact::Envelope::with_lineage("k/t", 7, lineage, payload);
        let bytes = env.encode().expect("encode");
        let n = (cut_seed % bytes.len() as u64) as usize;
        let truncated_is_typed = matches!(
            mlkit::artifact::Envelope::decode(&bytes[..n]),
            Err(mlkit::MlError::ArtifactCorrupt { .. })
        );
        prop_assert!(truncated_is_typed, "truncation at {} was not typed", n);
    }

    #[test]
    fn any_payload_bit_flip_fails_the_checksum(
        lineage in lineage_strategy(),
        payload in prop::collection::vec((0u16..256u16).prop_map(|v| v as u8), 1..64),
        which_seed in 0u64..u64::MAX,
        bit in 0u8..8,
    ) {
        let env = mlkit::artifact::Envelope::with_lineage("k/t", 7, lineage, payload);
        let mut bytes = env.encode().expect("encode");
        let start = bytes.len() - env.payload.len();
        let i = start + (which_seed % env.payload.len() as u64) as usize;
        bytes[i] ^= 1 << bit;
        let flip_is_typed = matches!(
            mlkit::artifact::Envelope::decode(&bytes),
            Err(mlkit::MlError::ArtifactCorrupt { .. })
        );
        prop_assert!(flip_is_typed, "payload flip at byte {} bit {} decoded", i, bit);
    }

    #[test]
    fn succession_accepts_exactly_the_direct_child(
        parent in 0u64..1024,
        claimed_parent in 0u64..1024,
        parent_generation in 0u32..64,
        claimed_generation in 0u32..64,
    ) {
        let lineage = mlkit::artifact::Lineage {
            parent_checksum: claimed_parent,
            train_from_min: 0,
            train_until_min: 1,
            generation: claimed_generation,
        };
        let ok = claimed_parent == parent
            && claimed_generation == parent_generation.wrapping_add(1);
        prop_assert_eq!(
            lineage.verify_succession(parent, parent_generation).is_ok(),
            ok
        );
    }
}
