//! Property tests for the evaluation metrics.
//!
//! The paper's headline numbers (precision / recall / F1, Eq. 4) reduce
//! to ratios of confusion-matrix counts; these properties pin the
//! algebraic invariants the experiment tables silently rely on:
//! boundedness, the harmonic-mean identity, invariance to sample order,
//! and graceful zeros on degenerate label sets (no NaN from 0/0).

use mlkit::metrics::{roc_auc, ConfusionMatrix, Prf};
use proptest::prelude::*;

/// A strategy for paired binary truth/prediction labels.
fn labels(max_len: usize) -> impl Strategy<Value = (Vec<f32>, Vec<f32>)> {
    prop::collection::vec((0u8..2, 0u8..2), 1..max_len).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(t, p)| (f32::from(t), f32::from(p)))
            .unzip()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn metrics_are_bounded_and_finite((truth, pred) in labels(256)) {
        let cm = ConfusionMatrix::from_predictions(&truth, &pred).unwrap();
        for (name, v) in [
            ("precision", cm.precision()),
            ("recall", cm.recall()),
            ("f1", cm.f1()),
            ("precision_negative", cm.precision_negative()),
            ("recall_negative", cm.recall_negative()),
            ("accuracy", cm.accuracy()),
        ] {
            prop_assert!(v.is_finite(), "{name} not finite: {v}");
            prop_assert!((0.0..=1.0).contains(&v), "{name} out of range: {v}");
        }
        prop_assert_eq!(cm.total(), truth.len() as u64);
    }

    #[test]
    fn f1_is_the_harmonic_mean((truth, pred) in labels(256)) {
        let cm = ConfusionMatrix::from_predictions(&truth, &pred).unwrap();
        let (p, r) = (cm.precision(), cm.recall());
        let expected = if p + r == 0.0 { 0.0 } else { 2.0 * p * r / (p + r) };
        prop_assert!((cm.f1() - expected).abs() < 1e-12);
        // The harmonic mean lies between its operands (and collapses to
        // zero as soon as either operand is zero).
        prop_assert!(cm.f1() <= p.max(r) + 1e-12);
        if p > 0.0 && r > 0.0 {
            prop_assert!(cm.f1() >= p.min(r) - 1e-12);
        } else {
            prop_assert_eq!(cm.f1(), 0.0);
        }
    }

    #[test]
    fn metrics_are_sample_order_invariant(
        (truth, pred) in labels(128),
        seed in 0u64..1024,
    ) {
        // A deterministic Fisher–Yates driven by `seed`, applied to the
        // truth/prediction *pairs*.
        let mut pairs: Vec<(f32, f32)> =
            truth.iter().copied().zip(pred.iter().copied()).collect();
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        for i in (1..pairs.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            pairs.swap(i, (state % (i as u64 + 1)) as usize);
        }
        let (t2, p2): (Vec<f32>, Vec<f32>) = pairs.into_iter().unzip();
        let a = ConfusionMatrix::from_predictions(&truth, &pred).unwrap();
        let b = ConfusionMatrix::from_predictions(&t2, &p2).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn degenerate_label_sets_yield_zeros_not_nan(truth_class in 0u8..2, n in 1usize..64) {
        // All-one-class truth with an all-opposite predictor: every ratio
        // that divides by an empty class must come back 0.0, not NaN.
        let t = f32::from(truth_class);
        let truth = vec![t; n];
        let pred = vec![1.0 - t; n];
        let cm = ConfusionMatrix::from_predictions(&truth, &pred).unwrap();
        prop_assert_eq!(cm.f1(), 0.0);
        prop_assert!(cm.precision() == 0.0 && cm.recall() == 0.0 || cm.accuracy() == 0.0);
        for v in [cm.precision(), cm.recall(), cm.precision_negative(), cm.recall_negative()] {
            prop_assert!(v.is_finite());
        }
        // Prf conversion carries the same (finite) numbers through.
        let prf = Prf::from(cm);
        prop_assert!(prf.f1.is_finite() && prf.precision.is_finite() && prf.recall.is_finite());
    }

    #[test]
    fn merge_is_count_addition((ta, pa) in labels(128), (tb, pb) in labels(128)) {
        let mut merged = ConfusionMatrix::from_predictions(&ta, &pa).unwrap();
        merged.merge(&ConfusionMatrix::from_predictions(&tb, &pb).unwrap());
        let whole = ConfusionMatrix::from_predictions(
            &[ta, tb].concat(),
            &[pa, pb].concat(),
        )
        .unwrap();
        prop_assert_eq!(merged, whole);
    }

    #[test]
    fn roc_auc_is_bounded_when_defined(
        (truth, _) in labels(128),
        scores_seed in 0u32..1000,
    ) {
        let scores: Vec<f32> = (0..truth.len())
            .map(|i| (((i as u32).wrapping_mul(scores_seed).wrapping_add(17) % 101) as f32) / 100.0)
            .collect();
        let has_both = truth.contains(&1.0) && truth.contains(&0.0);
        match roc_auc(&truth, &scores) {
            Ok(auc) => {
                prop_assert!(has_both);
                prop_assert!((0.0..=1.0).contains(&auc), "auc out of range: {}", auc);
            }
            Err(_) => prop_assert!(!has_both),
        }
    }
}
