//! Canonical FNV-1a 64 implementation — the single source of truth for
//! every checksum and schema fingerprint in the workspace.
//!
//! The artifact envelope, the sbed wire protocol, the request-log
//! replay, and the new lineage header all checksum bytes with FNV-1a 64.
//! Before this module each consumer carried (or re-imported) its own
//! copy; a silent divergence in any one of them would have produced
//! artifacts one layer writes and another rejects. Now there is exactly
//! one implementation, pinned by known-answer vectors, and the other
//! call sites re-export it.
//!
//! FNV-1a is deliberate: dependency-free, stable across platforms
//! (pure wrapping u64 arithmetic), and fast enough for megabyte
//! payloads. It is an integrity check against accidental corruption,
//! not a cryptographic MAC.

/// FNV-1a 64 offset basis.
pub const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64 prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a hash of a byte slice.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(bytes);
    h.finish()
}

/// Streaming FNV-1a 64 hasher, for checksumming data that arrives in
/// chunks (rolling response digests, incremental log writers) without
/// concatenating into a scratch buffer first.
///
/// Feeding chunks `a` then `b` yields exactly `fnv1a64(a ++ b)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv1a {
    state: u64,
}

impl Fnv1a {
    /// Starts a fresh hash at the offset basis.
    pub fn new() -> Fnv1a {
        Fnv1a {
            state: FNV_OFFSET_BASIS,
        }
    }

    /// Resumes from a previously finished digest, treating it as the
    /// running state. This is how the wire layer folds successive
    /// response frames into one rolling checksum.
    pub fn resume(state: u64) -> Fnv1a {
        Fnv1a { state }
    }

    /// Absorbs a chunk.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.state;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.state = h;
    }

    /// Returns the digest of everything absorbed so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv1a {
    fn default() -> Fnv1a {
        Fnv1a::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"b"), 0xaf63_df4c_8601_f1a5);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        for split in 0..=data.len() {
            let mut h = Fnv1a::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finish(), fnv1a64(data), "split at {split}");
        }
    }

    #[test]
    fn resume_continues_a_digest() {
        let mut h = Fnv1a::resume(fnv1a64(b"foo"));
        h.update(b"bar");
        assert_eq!(h.finish(), fnv1a64(b"foobar"));
    }

    #[test]
    fn empty_update_is_identity() {
        let mut h = Fnv1a::new();
        h.update(b"");
        assert_eq!(h.finish(), FNV_OFFSET_BASIS);
    }
}
