//! Logistic regression trained with mini-batch gradient descent.
//!
//! This is the "LR" model of the paper: simple and fast, but limited to a
//! linear decision boundary between inputs and the log-odds of the output.

use crate::dataset::Dataset;
use crate::matrix::dot;
use crate::model::Classifier;
use crate::{MlError, Result};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Numerically stable logistic sigmoid.
#[inline]
pub fn sigmoid(z: f32) -> f32 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// L2-regularised logistic regression.
///
/// Trained with mini-batch SGD with a decaying learning rate. Supports
/// class weighting so that the minority (SBE) class can be emphasised.
///
/// # Example
///
/// ```
/// use mlkit::dataset::Dataset;
/// use mlkit::linear::LogisticRegression;
/// use mlkit::model::Classifier;
///
/// let ds = Dataset::from_rows(
///     &[vec![0.0], vec![0.1], vec![0.9], vec![1.0]],
///     &[0.0, 0.0, 1.0, 1.0],
/// )?;
/// let mut lr = LogisticRegression::new();
/// lr.fit(&ds)?;
/// assert_eq!(lr.predict(&ds)?, vec![0.0, 0.0, 1.0, 1.0]);
/// # Ok::<(), mlkit::MlError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogisticRegression {
    learning_rate: f32,
    l2: f32,
    epochs: usize,
    batch_size: usize,
    pos_weight: f32,
    seed: u64,
    weights: Option<Vec<f32>>,
    bias: f32,
}

impl Default for LogisticRegression {
    fn default() -> LogisticRegression {
        LogisticRegression::new()
    }
}

impl LogisticRegression {
    /// Creates a model with default hyper-parameters
    /// (lr = 0.1, l2 = 1e-4, 60 epochs, batch 64, no class weighting).
    pub fn new() -> LogisticRegression {
        LogisticRegression {
            learning_rate: 0.1,
            l2: 1e-4,
            epochs: 60,
            batch_size: 64,
            pos_weight: 1.0,
            seed: 42,
            weights: None,
            bias: 0.0,
        }
    }

    /// Sets the initial learning rate.
    pub fn learning_rate(mut self, lr: f32) -> LogisticRegression {
        self.learning_rate = lr;
        self
    }

    /// Sets the L2 regularisation strength.
    pub fn l2(mut self, l2: f32) -> LogisticRegression {
        self.l2 = l2;
        self
    }

    /// Sets the number of passes over the training data.
    pub fn epochs(mut self, epochs: usize) -> LogisticRegression {
        self.epochs = epochs;
        self
    }

    /// Sets the mini-batch size.
    pub fn batch_size(mut self, batch: usize) -> LogisticRegression {
        self.batch_size = batch.max(1);
        self
    }

    /// Sets the loss weight multiplier for positive samples.
    pub fn pos_weight(mut self, w: f32) -> LogisticRegression {
        self.pos_weight = w;
        self
    }

    /// Sets the RNG seed used for shuffling.
    pub fn seed(mut self, seed: u64) -> LogisticRegression {
        self.seed = seed;
        self
    }

    /// Learned feature weights, or `None` before fitting.
    pub fn weights(&self) -> Option<&[f32]> {
        self.weights.as_deref()
    }

    /// Learned bias term.
    pub fn bias(&self) -> f32 {
        self.bias
    }

    /// Reduces the fitted model to a
    /// [`CompiledLinear`](crate::fastpath::CompiledLinear) scorer with
    /// bit-identical probabilities.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::NotFitted`] before fitting.
    pub fn compile(&self) -> Result<crate::fastpath::CompiledLinear> {
        let w = self.weights.clone().ok_or(MlError::NotFitted)?;
        Ok(crate::fastpath::CompiledLinear::new(
            w,
            self.bias,
            self.threshold(),
        ))
    }

    fn validate(&self) -> Result<()> {
        if self.learning_rate <= 0.0 || !self.learning_rate.is_finite() {
            return Err(MlError::InvalidParameter {
                name: "learning_rate",
                reason: format!("must be positive and finite, got {}", self.learning_rate),
            });
        }
        if self.l2 < 0.0 {
            return Err(MlError::InvalidParameter {
                name: "l2",
                reason: format!("must be non-negative, got {}", self.l2),
            });
        }
        if self.epochs == 0 {
            return Err(MlError::InvalidParameter {
                name: "epochs",
                reason: "must be > 0".into(),
            });
        }
        Ok(())
    }
}

impl Classifier for LogisticRegression {
    fn fit(&mut self, train: &Dataset) -> Result<()> {
        self.validate()?;
        if train.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        if train.n_positive() == 0 || train.n_negative() == 0 {
            return Err(MlError::SingleClass);
        }
        let n = train.len();
        let d = train.n_features();
        let mut w = vec![0.0f32; d];
        let mut b = 0.0f32;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut idx: Vec<usize> = (0..n).collect();

        for epoch in 0..self.epochs {
            idx.shuffle(&mut rng);
            // 1/t learning-rate decay keeps early progress fast and the
            // tail stable.
            let lr = self.learning_rate / (1.0 + 0.05 * epoch as f32);
            for batch in idx.chunks(self.batch_size) {
                let mut gw = vec![0.0f32; d];
                let mut gb = 0.0f32;
                for &i in batch {
                    let row = train.x().row(i);
                    let y = train.y()[i];
                    let p = sigmoid(dot(&w, row) + b);
                    let weight = if y == 1.0 { self.pos_weight } else { 1.0 };
                    let err = (p - y) * weight;
                    for (g, &x) in gw.iter_mut().zip(row) {
                        *g += err * x;
                    }
                    gb += err;
                }
                let scale = lr / batch.len() as f32;
                for (wj, gj) in w.iter_mut().zip(&gw) {
                    *wj -= scale * (gj + self.l2 * *wj * batch.len() as f32);
                }
                b -= scale * gb;
            }
        }
        if w.iter().any(|v| !v.is_finite()) || !b.is_finite() {
            return Err(MlError::NumericalError(
                "logistic regression diverged (non-finite weights)".into(),
            ));
        }
        self.weights = Some(w);
        self.bias = b;
        Ok(())
    }

    fn predict_proba(&self, data: &Dataset) -> Result<Vec<f32>> {
        let w = self.weights.as_ref().ok_or(MlError::NotFitted)?;
        if data.n_features() != w.len() {
            return Err(MlError::DimensionMismatch {
                expected: format!("{} features", w.len()),
                found: format!("{} features", data.n_features()),
            });
        }
        Ok(data
            .x()
            .rows_iter()
            .map(|row| sigmoid(dot(w, row) + self.bias))
            .collect())
    }

    fn name(&self) -> &'static str {
        "LR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable() -> Dataset {
        // y = 1 iff x0 > 0.5
        let rows: Vec<Vec<f32>> = (0..40)
            .map(|i| vec![i as f32 / 40.0, ((i * 7) % 13) as f32 / 13.0])
            .collect();
        let y: Vec<f32> = rows
            .iter()
            .map(|r| if r[0] > 0.5 { 1.0 } else { 0.0 })
            .collect();
        Dataset::from_rows(&rows, &y).unwrap()
    }

    #[test]
    fn fits_separable_data() {
        let ds = separable();
        let mut lr = LogisticRegression::new().learning_rate(1.0).epochs(400);
        lr.fit(&ds).unwrap();
        let pred = lr.predict(&ds).unwrap();
        let acc = pred.iter().zip(ds.y()).filter(|(a, b)| a == b).count() as f64 / ds.len() as f64;
        assert!(acc >= 0.95, "accuracy {acc} too low");
    }

    #[test]
    fn predict_before_fit_errors() {
        let ds = separable();
        let lr = LogisticRegression::new();
        assert!(matches!(lr.predict_proba(&ds), Err(MlError::NotFitted)));
    }

    #[test]
    fn single_class_rejected() {
        let ds = Dataset::from_rows(&[vec![1.0], vec![2.0]], &[0.0, 0.0]).unwrap();
        let mut lr = LogisticRegression::new();
        assert!(matches!(lr.fit(&ds), Err(MlError::SingleClass)));
    }

    #[test]
    fn feature_mismatch_rejected() {
        let ds = separable();
        let mut lr = LogisticRegression::new();
        lr.fit(&ds).unwrap();
        let other = Dataset::from_rows(&[vec![1.0]], &[0.0]).unwrap();
        assert!(lr.predict_proba(&other).is_err());
    }

    #[test]
    fn probabilities_in_unit_interval() {
        let ds = separable();
        let mut lr = LogisticRegression::new();
        lr.fit(&ds).unwrap();
        for p in lr.predict_proba(&ds).unwrap() {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn pos_weight_increases_recall() {
        // Imbalanced, noisy data: upweighting positives should not reduce
        // the number of predicted positives.
        let rows: Vec<Vec<f32>> = (0..100).map(|i| vec![(i % 10) as f32 / 10.0]).collect();
        let y: Vec<f32> = (0..100)
            .map(|i| if i % 10 >= 8 { 1.0 } else { 0.0 })
            .collect();
        let ds = Dataset::from_rows(&rows, &y).unwrap();

        let mut plain = LogisticRegression::new().epochs(100);
        plain.fit(&ds).unwrap();
        let plain_pos: usize = plain
            .predict(&ds)
            .unwrap()
            .iter()
            .filter(|&&v| v == 1.0)
            .count();

        let mut weighted = LogisticRegression::new().epochs(100).pos_weight(8.0);
        weighted.fit(&ds).unwrap();
        let weighted_pos: usize = weighted
            .predict(&ds)
            .unwrap()
            .iter()
            .filter(|&&v| v == 1.0)
            .count();
        assert!(weighted_pos >= plain_pos);
    }

    #[test]
    fn invalid_params_rejected() {
        let ds = separable();
        assert!(LogisticRegression::new()
            .learning_rate(-1.0)
            .fit(&ds)
            .is_err());
        assert!(LogisticRegression::new().epochs(0).fit(&ds).is_err());
        assert!(LogisticRegression::new().l2(-0.1).fit(&ds).is_err());
    }

    #[test]
    fn sigmoid_stable_at_extremes() {
        assert_eq!(sigmoid(1000.0), 1.0);
        assert_eq!(sigmoid(-1000.0), 0.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = separable();
        let mut a = LogisticRegression::new().seed(9);
        let mut b = LogisticRegression::new().seed(9);
        a.fit(&ds).unwrap();
        b.fit(&ds).unwrap();
        assert_eq!(a.weights(), b.weights());
    }
}
