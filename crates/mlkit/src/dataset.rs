//! Labelled datasets for binary classification.

use crate::matrix::Matrix;
use crate::{MlError, Result};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A labelled dataset: an `n × d` feature matrix plus `n` binary labels
/// (`0.0` or `1.0`), and optional feature names.
///
/// # Example
///
/// ```
/// use mlkit::dataset::Dataset;
///
/// let ds = Dataset::from_rows(
///     &[vec![1.0, 2.0], vec![3.0, 4.0]],
///     &[0.0, 1.0],
/// )?;
/// assert_eq!(ds.len(), 2);
/// assert_eq!(ds.n_features(), 2);
/// assert_eq!(ds.n_positive(), 1);
/// # Ok::<(), mlkit::MlError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    x: Matrix,
    y: Vec<f32>,
    feature_names: Vec<String>,
}

impl Dataset {
    /// Creates a dataset from a feature matrix and labels.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] when `x.nrows() != y.len()`,
    /// and [`MlError::InvalidParameter`] when any label is not `0.0`/`1.0`.
    pub fn new(x: Matrix, y: Vec<f32>) -> Result<Dataset> {
        if x.nrows() != y.len() {
            return Err(MlError::DimensionMismatch {
                expected: format!("{} labels", x.nrows()),
                found: format!("{} labels", y.len()),
            });
        }
        if let Some(bad) = y.iter().find(|&&v| v != 0.0 && v != 1.0) {
            return Err(MlError::InvalidParameter {
                name: "y",
                reason: format!("labels must be 0.0 or 1.0, found {bad}"),
            });
        }
        let n_features = x.ncols();
        Ok(Dataset {
            x,
            y,
            feature_names: (0..n_features).map(|i| format!("f{i}")).collect(),
        })
    }

    /// Convenience constructor from row vectors.
    ///
    /// # Errors
    ///
    /// Propagates matrix-construction and label-validation errors.
    pub fn from_rows(rows: &[Vec<f32>], y: &[f32]) -> Result<Dataset> {
        Dataset::new(Matrix::from_rows(rows)?, y.to_vec())
    }

    /// Replaces the auto-generated feature names.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] when the number of names does
    /// not match the number of features.
    pub fn with_feature_names<S: Into<String>>(
        mut self,
        names: impl IntoIterator<Item = S>,
    ) -> Result<Dataset> {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        if names.len() != self.x.ncols() {
            return Err(MlError::DimensionMismatch {
                expected: format!("{} names", self.x.ncols()),
                found: format!("{} names", names.len()),
            });
        }
        self.feature_names = names;
        Ok(self)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// `true` when the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Number of features (columns).
    pub fn n_features(&self) -> usize {
        self.x.ncols()
    }

    /// The feature matrix.
    pub fn x(&self) -> &Matrix {
        &self.x
    }

    /// The label vector.
    pub fn y(&self) -> &[f32] {
        &self.y
    }

    /// The feature names (defaults to `f0..fN`).
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Number of positive (`1.0`) samples.
    pub fn n_positive(&self) -> usize {
        self.y.iter().filter(|&&v| v == 1.0).count()
    }

    /// Number of negative (`0.0`) samples.
    pub fn n_negative(&self) -> usize {
        self.len() - self.n_positive()
    }

    /// Ratio of negative to positive samples; `f64::INFINITY` when there are
    /// no positives.
    pub fn imbalance_ratio(&self) -> f64 {
        let p = self.n_positive();
        if p == 0 {
            f64::INFINITY
        } else {
            self.n_negative() as f64 / p as f64
        }
    }

    /// Selects a subset of samples by index into a new dataset.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select(&self, indices: &[usize]) -> Dataset {
        Dataset {
            x: self.x.select_rows(indices),
            y: indices.iter().map(|&i| self.y[i]).collect(),
            feature_names: self.feature_names.clone(),
        }
    }

    /// Keeps only the given feature columns.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_features(&self, indices: &[usize]) -> Dataset {
        Dataset {
            x: self.x.select_cols(indices),
            y: self.y.clone(),
            feature_names: indices
                .iter()
                .map(|&i| self.feature_names[i].clone())
                .collect(),
        }
    }

    /// Splits into `(train, test)` with `test_fraction` of samples in the
    /// test set, after shuffling with `rng`.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidParameter`] when `test_fraction` is outside
    /// `(0, 1)`, or [`MlError::EmptyDataset`] when a side would be empty.
    pub fn train_test_split<R: Rng>(
        &self,
        test_fraction: f64,
        rng: &mut R,
    ) -> Result<(Dataset, Dataset)> {
        if !(test_fraction > 0.0 && test_fraction < 1.0) {
            return Err(MlError::InvalidParameter {
                name: "test_fraction",
                reason: format!("must be in (0, 1), got {test_fraction}"),
            });
        }
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(rng);
        let n_test = ((self.len() as f64) * test_fraction).round() as usize;
        if n_test == 0 || n_test == self.len() {
            return Err(MlError::EmptyDataset);
        }
        let (test_idx, train_idx) = idx.split_at(n_test);
        Ok((self.select(train_idx), self.select(test_idx)))
    }

    /// Returns indices of positive and negative samples.
    pub fn class_indices(&self) -> (Vec<usize>, Vec<usize>) {
        let mut pos = Vec::new();
        let mut neg = Vec::new();
        for (i, &v) in self.y.iter().enumerate() {
            if v == 1.0 {
                pos.push(i);
            } else {
                neg.push(i);
            }
        }
        (pos, neg)
    }

    /// Concatenates two datasets with identical feature counts.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] when feature counts differ.
    pub fn concat(&self, other: &Dataset) -> Result<Dataset> {
        Ok(Dataset {
            x: self.x.vstack(&other.x)?,
            y: self.y.iter().chain(other.y.iter()).copied().collect(),
            feature_names: self.feature_names.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> Dataset {
        Dataset::from_rows(
            &[
                vec![0.0, 1.0],
                vec![1.0, 0.0],
                vec![2.0, 2.0],
                vec![3.0, 1.0],
            ],
            &[0.0, 1.0, 0.0, 1.0],
        )
        .unwrap()
    }

    #[test]
    fn constructor_validates_labels() {
        let bad = Dataset::from_rows(&[vec![1.0]], &[0.5]);
        assert!(matches!(bad, Err(MlError::InvalidParameter { .. })));
    }

    #[test]
    fn constructor_validates_lengths() {
        let x = Matrix::zeros(2, 1);
        assert!(matches!(
            Dataset::new(x, vec![0.0]),
            Err(MlError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn class_counts() {
        let ds = toy();
        assert_eq!(ds.n_positive(), 2);
        assert_eq!(ds.n_negative(), 2);
        assert_eq!(ds.imbalance_ratio(), 1.0);
    }

    #[test]
    fn imbalance_infinite_without_positives() {
        let ds = Dataset::from_rows(&[vec![1.0], vec![2.0]], &[0.0, 0.0]).unwrap();
        assert!(ds.imbalance_ratio().is_infinite());
    }

    #[test]
    fn select_preserves_pairs() {
        let ds = toy();
        let s = ds.select(&[3, 0]);
        assert_eq!(s.y(), &[1.0, 0.0]);
        assert_eq!(s.x().row(0), &[3.0, 1.0]);
    }

    #[test]
    fn select_features_renames() {
        let ds = toy().with_feature_names(["a", "b"]).unwrap();
        let s = ds.select_features(&[1]);
        assert_eq!(s.feature_names(), &["b".to_string()]);
        assert_eq!(s.n_features(), 1);
    }

    #[test]
    fn train_test_split_partitions() {
        let ds = toy();
        let mut rng = StdRng::seed_from_u64(7);
        let (train, test) = ds.train_test_split(0.25, &mut rng).unwrap();
        assert_eq!(train.len() + test.len(), ds.len());
        assert_eq!(test.len(), 1);
    }

    #[test]
    fn train_test_split_rejects_bad_fraction() {
        let ds = toy();
        let mut rng = StdRng::seed_from_u64(7);
        assert!(ds.train_test_split(0.0, &mut rng).is_err());
        assert!(ds.train_test_split(1.5, &mut rng).is_err());
    }

    #[test]
    fn concat_appends() {
        let ds = toy();
        let all = ds.concat(&ds).unwrap();
        assert_eq!(all.len(), 8);
        assert_eq!(all.n_positive(), 4);
    }

    #[test]
    fn feature_name_count_checked() {
        assert!(toy().with_feature_names(["only-one"]).is_err());
    }
}
