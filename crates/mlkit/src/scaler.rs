//! Feature scaling: standardisation (z-score) and min-max normalisation.
//!
//! LR, SVM, and NN training are all sensitive to feature scale; the
//! prediction pipeline standardises features using statistics computed on
//! the *training* split only.

use crate::dataset::Dataset;
use crate::matrix::Matrix;
use crate::{MlError, Result};
use serde::{Deserialize, Serialize};

/// Z-score standardiser: `(x - mean) / std` per feature.
///
/// Constant features (std = 0) are mapped to 0 rather than NaN.
///
/// # Example
///
/// ```
/// use mlkit::dataset::Dataset;
/// use mlkit::scaler::StandardScaler;
///
/// let train = Dataset::from_rows(&[vec![0.0], vec![2.0]], &[0.0, 1.0])?;
/// let scaler = StandardScaler::fit(&train)?;
/// let scaled = scaler.transform(&train)?;
/// assert_eq!(scaled.x().col(0), vec![-1.0, 1.0]);
/// # Ok::<(), mlkit::MlError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StandardScaler {
    means: Vec<f32>,
    stds: Vec<f32>,
}

impl StandardScaler {
    /// Computes per-feature means and standard deviations on `train`.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::EmptyDataset`] when `train` has no samples.
    pub fn fit(train: &Dataset) -> Result<StandardScaler> {
        if train.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        let n = train.len() as f64;
        let d = train.n_features();
        let mut means = vec![0.0f64; d];
        let mut sq = vec![0.0f64; d];
        for row in train.x().rows_iter() {
            for (j, &v) in row.iter().enumerate() {
                means[j] += v as f64;
                sq[j] += (v as f64) * (v as f64);
            }
        }
        for j in 0..d {
            means[j] /= n;
            sq[j] = (sq[j] / n - means[j] * means[j]).max(0.0).sqrt();
        }
        Ok(StandardScaler {
            means: means.iter().map(|&m| m as f32).collect(),
            stds: sq.iter().map(|&s| s as f32).collect(),
        })
    }

    /// Per-feature means observed at fit time.
    pub fn means(&self) -> &[f32] {
        &self.means
    }

    /// Per-feature standard deviations observed at fit time.
    pub fn stds(&self) -> &[f32] {
        &self.stds
    }

    /// Applies the learned transform to a dataset.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] when feature counts differ.
    pub fn transform(&self, data: &Dataset) -> Result<Dataset> {
        if data.n_features() != self.means.len() {
            return Err(MlError::DimensionMismatch {
                expected: format!("{} features", self.means.len()),
                found: format!("{} features", data.n_features()),
            });
        }
        let mut out = Matrix::zeros(data.len(), data.n_features());
        for (i, row) in data.x().rows_iter().enumerate() {
            self.transform_row(out.row_mut(i), row)?;
        }
        Dataset::new(out, data.y().to_vec())?.with_feature_names(data.feature_names().to_vec())
    }

    /// Applies the learned transform to one feature row, writing into
    /// `out`. This is the per-element kernel [`StandardScaler::transform`]
    /// uses, exposed so streaming scorers standardise single rows with
    /// bit-identical arithmetic.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] when either slice length
    /// differs from the fitted feature count.
    pub fn transform_row(&self, out: &mut [f32], row: &[f32]) -> Result<()> {
        if row.len() != self.means.len() || out.len() != self.means.len() {
            return Err(MlError::DimensionMismatch {
                // detlint: allow(D007) reason=cold dimension-mismatch error path; never taken on a validated hot path
                expected: format!("{} features", self.means.len()),
                // detlint: allow(D007) reason=cold dimension-mismatch error path; never taken on a validated hot path
                found: format!("{} in / {} out", row.len(), out.len()),
            });
        }
        // Lockstep iterators: lengths are equal by the check above, so
        // the zip is exhaustive and index-free (no panic sites on the
        // serving hot path).
        for (((o, &v), &m), &s) in out
            .iter_mut()
            .zip(row.iter())
            .zip(self.means.iter())
            .zip(self.stds.iter())
        {
            *o = if s > 0.0 { (v - m) / s } else { 0.0 };
        }
        Ok(())
    }
}

/// Min-max scaler mapping each feature into `[0, 1]`.
///
/// Constant features are mapped to 0.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MinMaxScaler {
    mins: Vec<f32>,
    ranges: Vec<f32>,
}

impl MinMaxScaler {
    /// Computes per-feature min/max on `train`.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::EmptyDataset`] when `train` has no samples.
    pub fn fit(train: &Dataset) -> Result<MinMaxScaler> {
        if train.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        let d = train.n_features();
        let mut mins = vec![f32::INFINITY; d];
        let mut maxs = vec![f32::NEG_INFINITY; d];
        for row in train.x().rows_iter() {
            for (j, &v) in row.iter().enumerate() {
                mins[j] = mins[j].min(v);
                maxs[j] = maxs[j].max(v);
            }
        }
        let ranges = mins.iter().zip(&maxs).map(|(&lo, &hi)| hi - lo).collect();
        Ok(MinMaxScaler { mins, ranges })
    }

    /// Applies the learned transform.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] when feature counts differ.
    pub fn transform(&self, data: &Dataset) -> Result<Dataset> {
        if data.n_features() != self.mins.len() {
            return Err(MlError::DimensionMismatch {
                expected: format!("{} features", self.mins.len()),
                found: format!("{} features", data.n_features()),
            });
        }
        let mut out = Matrix::zeros(data.len(), data.n_features());
        for (i, row) in data.x().rows_iter().enumerate() {
            let orow = out.row_mut(i);
            for (j, &v) in row.iter().enumerate() {
                let r = self.ranges[j];
                orow[j] = if r > 0.0 { (v - self.mins[j]) / r } else { 0.0 };
            }
        }
        Dataset::new(out, data.y().to_vec())?.with_feature_names(data.feature_names().to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds(rows: &[Vec<f32>]) -> Dataset {
        let y = vec![0.0; rows.len()];
        Dataset::from_rows(rows, &y).unwrap()
    }

    #[test]
    fn standard_scaler_zero_mean_unit_std() {
        let train = ds(&[vec![1.0, 10.0], vec![3.0, 30.0], vec![5.0, 50.0]]);
        let sc = StandardScaler::fit(&train).unwrap();
        let t = sc.transform(&train).unwrap();
        for j in 0..2 {
            let col = t.x().col(j);
            let m: f32 = col.iter().sum::<f32>() / col.len() as f32;
            assert!(m.abs() < 1e-6);
            let var: f32 = col.iter().map(|v| v * v).sum::<f32>() / col.len() as f32;
            assert!((var - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn standard_scaler_constant_feature_is_zero() {
        let train = ds(&[vec![7.0], vec![7.0]]);
        let sc = StandardScaler::fit(&train).unwrap();
        let t = sc.transform(&train).unwrap();
        assert_eq!(t.x().col(0), vec![0.0, 0.0]);
    }

    #[test]
    fn standard_scaler_applies_train_stats_to_test() {
        let train = ds(&[vec![0.0], vec![2.0]]);
        let test = ds(&[vec![4.0]]);
        let sc = StandardScaler::fit(&train).unwrap();
        let t = sc.transform(&test).unwrap();
        // mean 1, std 1 -> (4-1)/1 = 3
        assert_eq!(t.x().get(0, 0), 3.0);
    }

    #[test]
    fn scaler_rejects_feature_mismatch() {
        let train = ds(&[vec![0.0], vec![2.0]]);
        let sc = StandardScaler::fit(&train).unwrap();
        let wrong = ds(&[vec![1.0, 2.0]]);
        assert!(sc.transform(&wrong).is_err());
    }

    #[test]
    fn minmax_maps_into_unit_interval() {
        let train = ds(&[vec![2.0, -1.0], vec![4.0, 3.0], vec![6.0, 1.0]]);
        let sc = MinMaxScaler::fit(&train).unwrap();
        let t = sc.transform(&train).unwrap();
        assert_eq!(t.x().col(0), vec![0.0, 0.5, 1.0]);
        assert_eq!(t.x().col(1), vec![0.0, 1.0, 0.5]);
    }

    #[test]
    fn minmax_constant_feature_is_zero() {
        let train = ds(&[vec![5.0], vec![5.0]]);
        let sc = MinMaxScaler::fit(&train).unwrap();
        let t = sc.transform(&train).unwrap();
        assert_eq!(t.x().col(0), vec![0.0, 0.0]);
    }

    #[test]
    fn fit_empty_fails() {
        let empty = Dataset::from_rows(&[vec![1.0]], &[0.0])
            .unwrap()
            .select(&[]);
        assert!(StandardScaler::fit(&empty).is_err());
        assert!(MinMaxScaler::fit(&empty).is_err());
    }
}
