//! Binary-classification evaluation metrics.
//!
//! The paper evaluates with precision, recall, and the F1 score (their
//! Eqs. 2–4), reported separately for the SBE (positive) and non-SBE
//! (negative) classes. [`ConfusionMatrix`] captures all of those.

use crate::{MlError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A 2×2 confusion matrix for binary classification.
///
/// # Example
///
/// ```
/// use mlkit::metrics::ConfusionMatrix;
///
/// let truth = [1.0, 1.0, 0.0, 0.0, 1.0];
/// let pred  = [1.0, 0.0, 0.0, 1.0, 1.0];
/// let cm = ConfusionMatrix::from_predictions(&truth, &pred)?;
/// assert_eq!(cm.tp(), 2);
/// assert_eq!(cm.fn_(), 1);
/// assert!((cm.precision() - 2.0 / 3.0).abs() < 1e-9);
/// # Ok::<(), mlkit::MlError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    tp: u64,
    fp: u64,
    tn: u64,
    fn_: u64,
}

impl ConfusionMatrix {
    /// Builds a confusion matrix from ground-truth and predicted labels
    /// (`0.0`/`1.0` each).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] when lengths differ and
    /// [`MlError::InvalidParameter`] for non-binary values.
    pub fn from_predictions(truth: &[f32], pred: &[f32]) -> Result<ConfusionMatrix> {
        if truth.len() != pred.len() {
            return Err(MlError::DimensionMismatch {
                expected: format!("{} predictions", truth.len()),
                found: format!("{} predictions", pred.len()),
            });
        }
        let mut cm = ConfusionMatrix::default();
        for (&t, &p) in truth.iter().zip(pred) {
            if (t != 0.0 && t != 1.0) || (p != 0.0 && p != 1.0) {
                return Err(MlError::InvalidParameter {
                    name: "labels",
                    reason: format!("labels must be 0.0 or 1.0, found truth={t} pred={p}"),
                });
            }
            match (t == 1.0, p == 1.0) {
                (true, true) => cm.tp += 1,
                (true, false) => cm.fn_ += 1,
                (false, true) => cm.fp += 1,
                (false, false) => cm.tn += 1,
            }
        }
        Ok(cm)
    }

    /// True positives.
    pub fn tp(&self) -> u64 {
        self.tp
    }

    /// False positives.
    pub fn fp(&self) -> u64 {
        self.fp
    }

    /// True negatives.
    pub fn tn(&self) -> u64 {
        self.tn
    }

    /// False negatives.
    pub fn fn_(&self) -> u64 {
        self.fn_
    }

    /// Total number of samples counted.
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Precision of the positive class: `TP / (TP + FP)`.
    /// Returns 0.0 when nothing was predicted positive.
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// Recall of the positive class: `TP / (TP + FN)`.
    /// Returns 0.0 when there are no positive ground-truth samples.
    pub fn recall(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// F1 score: the harmonic mean of precision and recall (paper Eq. 4).
    /// Returns 0.0 when precision + recall is zero.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Precision of the *negative* class: `TN / (TN + FN)`.
    pub fn precision_negative(&self) -> f64 {
        ratio(self.tn, self.tn + self.fn_)
    }

    /// Recall of the *negative* class: `TN / (TN + FP)`.
    pub fn recall_negative(&self) -> f64 {
        ratio(self.tn, self.tn + self.fp)
    }

    /// Overall accuracy: `(TP + TN) / total`.
    pub fn accuracy(&self) -> f64 {
        ratio(self.tp + self.tn, self.total())
    }

    /// Merges the counts of another confusion matrix into this one.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.tn += other.tn;
        self.fn_ += other.fn_;
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tp={} fp={} tn={} fn={} | precision={:.3} recall={:.3} f1={:.3}",
            self.tp,
            self.fp,
            self.tn,
            self.fn_,
            self.precision(),
            self.recall(),
            self.f1()
        )
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// A compact (precision, recall, F1) triple for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Prf {
    /// Positive-class precision.
    pub precision: f64,
    /// Positive-class recall.
    pub recall: f64,
    /// Positive-class F1 score.
    pub f1: f64,
}

impl From<ConfusionMatrix> for Prf {
    fn from(cm: ConfusionMatrix) -> Prf {
        Prf {
            precision: cm.precision(),
            recall: cm.recall(),
            f1: cm.f1(),
        }
    }
}

impl fmt::Display for Prf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "P={:.3} R={:.3} F1={:.3}",
            self.precision, self.recall, self.f1
        )
    }
}

/// Area under the ROC curve computed by the rank statistic
/// (equivalent to the Mann–Whitney U estimator). Ties get average rank.
///
/// # Errors
///
/// Returns [`MlError::DimensionMismatch`] when lengths differ or
/// [`MlError::SingleClass`] when only one class is present.
pub fn roc_auc(truth: &[f32], scores: &[f32]) -> Result<f64> {
    if truth.len() != scores.len() {
        return Err(MlError::DimensionMismatch {
            expected: format!("{} scores", truth.len()),
            found: format!("{} scores", scores.len()),
        });
    }
    let n_pos = truth.iter().filter(|&&t| t == 1.0).count();
    let n_neg = truth.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return Err(MlError::SingleClass);
    }
    // Rank all scores (average rank for ties), then apply the U statistic.
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[a]
            .partial_cmp(&scores[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut ranks = vec![0.0f64; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            ranks[k] = avg_rank;
        }
        i = j + 1;
    }
    let rank_sum_pos: f64 = truth
        .iter()
        .zip(&ranks)
        .filter(|(&t, _)| t == 1.0)
        .map(|(_, &r)| r)
        .sum();
    let u = rank_sum_pos - (n_pos as f64) * (n_pos as f64 + 1.0) / 2.0;
    Ok(u / (n_pos as f64 * n_neg as f64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let y = [1.0, 0.0, 1.0, 0.0];
        let cm = ConfusionMatrix::from_predictions(&y, &y).unwrap();
        assert_eq!(cm.precision(), 1.0);
        assert_eq!(cm.recall(), 1.0);
        assert_eq!(cm.f1(), 1.0);
        assert_eq!(cm.accuracy(), 1.0);
    }

    #[test]
    fn all_wrong_prediction() {
        let truth = [1.0, 0.0];
        let pred = [0.0, 1.0];
        let cm = ConfusionMatrix::from_predictions(&truth, &pred).unwrap();
        assert_eq!(cm.f1(), 0.0);
        assert_eq!(cm.accuracy(), 0.0);
    }

    #[test]
    fn negative_class_metrics() {
        // truth:  1 1 0 0 0 ; pred: 1 0 0 0 1
        let truth = [1.0, 1.0, 0.0, 0.0, 0.0];
        let pred = [1.0, 0.0, 0.0, 0.0, 1.0];
        let cm = ConfusionMatrix::from_predictions(&truth, &pred).unwrap();
        // negatives: tn=2, fn=1, fp=1
        assert!((cm.precision_negative() - 2.0 / 3.0).abs() < 1e-12);
        assert!((cm.recall_negative() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_metrics_are_zero_not_nan() {
        let truth = [0.0, 0.0];
        let pred = [0.0, 0.0];
        let cm = ConfusionMatrix::from_predictions(&truth, &pred).unwrap();
        assert_eq!(cm.precision(), 0.0);
        assert_eq!(cm.recall(), 0.0);
        assert_eq!(cm.f1(), 0.0);
    }

    #[test]
    fn rejects_non_binary() {
        assert!(ConfusionMatrix::from_predictions(&[0.5], &[1.0]).is_err());
        assert!(ConfusionMatrix::from_predictions(&[1.0], &[2.0]).is_err());
    }

    #[test]
    fn rejects_length_mismatch() {
        assert!(ConfusionMatrix::from_predictions(&[1.0], &[1.0, 0.0]).is_err());
    }

    #[test]
    fn merge_adds_counts() {
        let a = ConfusionMatrix::from_predictions(&[1.0, 0.0], &[1.0, 0.0]).unwrap();
        let mut b = ConfusionMatrix::from_predictions(&[1.0], &[0.0]).unwrap();
        b.merge(&a);
        assert_eq!(b.tp(), 1);
        assert_eq!(b.tn(), 1);
        assert_eq!(b.fn_(), 1);
        assert_eq!(b.total(), 3);
    }

    #[test]
    fn f1_is_harmonic_mean() {
        // precision 1.0, recall 0.5 -> f1 = 2/3
        let truth = [1.0, 1.0, 0.0];
        let pred = [1.0, 0.0, 0.0];
        let cm = ConfusionMatrix::from_predictions(&truth, &pred).unwrap();
        assert!((cm.f1() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn auc_perfect_and_random() {
        let truth = [0.0, 0.0, 1.0, 1.0];
        assert_eq!(roc_auc(&truth, &[0.1, 0.2, 0.8, 0.9]).unwrap(), 1.0);
        assert_eq!(roc_auc(&truth, &[0.9, 0.8, 0.2, 0.1]).unwrap(), 0.0);
        // All-tied scores give AUC 0.5.
        assert!((roc_auc(&truth, &[0.5, 0.5, 0.5, 0.5]).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_requires_both_classes() {
        assert!(matches!(
            roc_auc(&[1.0, 1.0], &[0.3, 0.4]),
            Err(MlError::SingleClass)
        ));
    }

    #[test]
    fn prf_from_confusion() {
        let truth = [1.0, 1.0, 0.0];
        let pred = [1.0, 0.0, 0.0];
        let prf = Prf::from(ConfusionMatrix::from_predictions(&truth, &pred).unwrap());
        assert_eq!(prf.precision, 1.0);
        assert_eq!(prf.recall, 0.5);
    }
}
