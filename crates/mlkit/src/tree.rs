//! Regression trees over quantile-binned features.
//!
//! These trees are the weak learners inside [`crate::gbdt::Gbdt`]. Features
//! are discretised once into at most 256 quantile bins
//! ([`QuantileBinner`]); split finding then scans per-bin gradient/hessian
//! histograms, which makes training cost linear in samples × features and
//! independent of the number of distinct feature values.

use crate::matrix::Matrix;
use crate::{MlError, Result};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

/// Maximum number of bins per feature (fits in a `u8`).
pub const MAX_BINS: usize = 256;

/// Quantile-based feature discretiser.
///
/// For each feature, up to `n_bins - 1` split thresholds are chosen at
/// evenly spaced quantiles of the training distribution. Values are mapped
/// to the index of the first threshold that exceeds them.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuantileBinner {
    /// Per-feature ascending split thresholds.
    thresholds: Vec<Vec<f32>>,
    n_bins: usize,
}

impl QuantileBinner {
    /// Learns bin thresholds from a feature matrix.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidParameter`] when `n_bins` is not in
    /// `[2, 256]` or [`MlError::EmptyDataset`] for an empty matrix.
    pub fn fit(x: &Matrix, n_bins: usize) -> Result<QuantileBinner> {
        if !(2..=MAX_BINS).contains(&n_bins) {
            return Err(MlError::InvalidParameter {
                name: "n_bins",
                reason: format!("must be in [2, {MAX_BINS}], got {n_bins}"),
            });
        }
        if x.nrows() == 0 {
            return Err(MlError::EmptyDataset);
        }
        let mut thresholds = Vec::with_capacity(x.ncols());
        for j in 0..x.ncols() {
            let mut col = x.col(j);
            // Total order so cut selection is deterministic for any
            // input, NaNs included (they sort to the ends instead of
            // landing wherever the comparison sequence leaves them).
            col.sort_by(f32::total_cmp);
            col.dedup();
            let mut th = Vec::new();
            if col.len() > 1 {
                // Choose candidate cut points between consecutive quantiles
                // of the deduplicated values.
                let want = (n_bins - 1).min(col.len() - 1);
                for k in 1..=want {
                    let pos = k as f64 / (want + 1) as f64 * (col.len() - 1) as f64;
                    let i = pos.round() as usize;
                    // Cut midway between neighbouring distinct values so
                    // that binning is robust to exact-equality issues.
                    let cut = if i + 1 < col.len() {
                        (col[i] + col[i + 1]) / 2.0
                    } else {
                        col[i]
                    };
                    if th.last().is_none_or(|&last| cut > last) {
                        th.push(cut);
                    }
                }
            }
            thresholds.push(th);
        }
        Ok(QuantileBinner { thresholds, n_bins })
    }

    /// Number of features the binner was fitted on.
    pub fn n_features(&self) -> usize {
        self.thresholds.len()
    }

    /// Number of bins actually used for feature `j`
    /// (`thresholds + 1`, at least 1).
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn n_bins_for(&self, j: usize) -> usize {
        // detlint: allow(D006) reason=hot-path callers iterate j over 0..n_features of the same fitted binner
        self.thresholds[j].len() + 1
    }

    /// Threshold value separating bins `b` and `b + 1` of feature `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` or `b` is out of range.
    pub fn threshold(&self, j: usize, b: usize) -> f32 {
        self.thresholds[j][b]
    }

    /// Maps one raw value of feature `j` to its bin index.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    #[inline]
    pub fn bin_value(&self, j: usize, v: f32) -> u8 {
        let th = &self.thresholds[j];
        th.partition_point(|&t| v >= t) as u8
    }

    /// Bins a whole matrix into a row-major `u8` buffer.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] when feature counts differ.
    pub fn transform(&self, x: &Matrix) -> Result<BinnedMatrix> {
        if x.ncols() != self.thresholds.len() {
            return Err(MlError::DimensionMismatch {
                expected: format!("{} features", self.thresholds.len()),
                found: format!("{} features", x.ncols()),
            });
        }
        let mut bins = vec![0u8; x.nrows() * x.ncols()];
        for (i, row) in x.rows_iter().enumerate() {
            let brow = &mut bins[i * x.ncols()..(i + 1) * x.ncols()];
            for (j, &v) in row.iter().enumerate() {
                brow[j] = self.bin_value(j, v);
            }
        }
        Ok(BinnedMatrix {
            rows: x.nrows(),
            cols: x.ncols(),
            bins,
        })
    }
}

/// A row-major matrix of bin indices produced by [`QuantileBinner`].
#[derive(Debug, Clone)]
pub struct BinnedMatrix {
    rows: usize,
    cols: usize,
    bins: Vec<u8>,
}

impl BinnedMatrix {
    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Bin index of sample `i`, feature `j`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> u8 {
        self.bins[i * self.cols + j]
    }

    /// Contiguous bin-index row of sample `i` (all features), the unit
    /// the [`crate::hist`] gather copies from.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn binned_row(&self, i: usize) -> &[u8] {
        // detlint: allow(D006) reason=hot-path callers pass node indices validated against nrows at fit entry
        &self.bins[i * self.cols..(i + 1) * self.cols]
    }
}

/// Split/leaf node of a [`RegressionTree`], stored in a flat arena.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Split {
        feature: usize,
        /// Raw-value threshold; samples with `x[feature] < threshold` go left.
        threshold: f32,
        /// Bin-index threshold used during training-time routing.
        bin: u8,
        left: usize,
        right: usize,
    },
    Leaf {
        value: f32,
    },
}

/// Hyper-parameters for growing a [`RegressionTree`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TreeParams {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples required in each child of a split.
    pub min_samples_leaf: usize,
    /// Minimum loss reduction (gain) required to split.
    pub min_gain: f64,
    /// L2 regularisation added to the hessian in leaf values and gains.
    pub lambda: f64,
    /// Fraction of features considered at each split (`(0, 1]`).
    pub colsample: f64,
    /// Worker-thread policy for per-feature split evaluation. Execution
    /// detail only — any policy yields identical trees — so it is not
    /// serialized with fitted models.
    #[serde(skip)]
    pub threads: parkit::Threads,
    /// Split-finding engine (see [`crate::hist::TrainMode`]). Training
    /// detail only — `Exact` (the default) is bit-identical to
    /// `Reference` — so it is not serialized with fitted models.
    #[serde(skip)]
    pub mode: crate::hist::TrainMode,
}

impl Default for TreeParams {
    fn default() -> TreeParams {
        TreeParams {
            max_depth: 5,
            min_samples_leaf: 10,
            min_gain: 1e-6,
            lambda: 1.0,
            colsample: 1.0,
            threads: parkit::Threads::Serial,
            mode: crate::hist::TrainMode::Exact,
        }
    }
}

/// A regression tree fit to per-sample gradients/hessians, as used in
/// second-order gradient boosting. Leaf values are Newton steps
/// `-G / (H + lambda)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegressionTree {
    nodes: Vec<Node>,
    n_features: usize,
}

pub(crate) struct BuildCtx<'a> {
    pub(crate) binned: &'a BinnedMatrix,
    pub(crate) binner: &'a QuantileBinner,
    pub(crate) grad: &'a [f32],
    pub(crate) hess: &'a [f32],
    pub(crate) params: TreeParams,
}

impl RegressionTree {
    /// Grows a tree on the given sample indices.
    ///
    /// `grad`/`hess` are the per-sample first/second derivatives of the
    /// boosting loss; `indices` selects the (possibly subsampled) rows.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::EmptyDataset`] when `indices` is empty and
    /// [`MlError::DimensionMismatch`] when gradient lengths differ from the
    /// binned matrix.
    pub fn fit(
        binned: &BinnedMatrix,
        binner: &QuantileBinner,
        grad: &[f32],
        hess: &[f32],
        indices: &[usize],
        params: TreeParams,
        rng: &mut StdRng,
    ) -> Result<RegressionTree> {
        RegressionTree::fit_observed(
            binned,
            binner,
            grad,
            hess,
            indices,
            params,
            rng,
            &mut obskit::Recorder::null(),
        )
    }

    /// Like [`RegressionTree::fit`], but counts the candidate cut points
    /// the split finder scanned into `rec` (`mlkit.tree.split_candidates`).
    /// The count is an exact property of the data and hyper-parameters —
    /// identical under any thread policy — and fitting with a null
    /// recorder is behaviourally identical to [`RegressionTree::fit`].
    ///
    /// # Errors
    ///
    /// Same contract as [`RegressionTree::fit`].
    #[allow(clippy::too_many_arguments)]
    pub fn fit_observed(
        binned: &BinnedMatrix,
        binner: &QuantileBinner,
        grad: &[f32],
        hess: &[f32],
        indices: &[usize],
        params: TreeParams,
        rng: &mut StdRng,
        rec: &mut obskit::Recorder,
    ) -> Result<RegressionTree> {
        let mut scratch = crate::hist::TrainScratch::for_binner(binner);
        RegressionTree::fit_with_scratch(
            binned,
            binner,
            grad,
            hess,
            indices,
            params,
            rng,
            rec,
            &mut scratch,
        )
    }

    /// Like [`RegressionTree::fit_observed`], but reusing a caller-owned
    /// [`TrainScratch`](crate::hist::TrainScratch) so a boosting loop
    /// pays histogram/gather allocations once (first tree) instead of
    /// per tree.
    ///
    /// # Errors
    ///
    /// Same contract as [`RegressionTree::fit`].
    #[allow(clippy::too_many_arguments)]
    pub fn fit_with_scratch(
        binned: &BinnedMatrix,
        binner: &QuantileBinner,
        grad: &[f32],
        hess: &[f32],
        indices: &[usize],
        params: TreeParams,
        rng: &mut StdRng,
        rec: &mut obskit::Recorder,
        scratch: &mut crate::hist::TrainScratch,
    ) -> Result<RegressionTree> {
        if indices.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        if grad.len() != binned.nrows() || hess.len() != binned.nrows() {
            return Err(MlError::DimensionMismatch {
                expected: format!("{} gradient entries", binned.nrows()),
                found: format!("{} / {}", grad.len(), hess.len()),
            });
        }
        scratch.sync_layout(binner);
        let ctx = BuildCtx {
            binned,
            binner,
            grad,
            hess,
            params,
        };
        let mut tree = RegressionTree {
            nodes: Vec::new(),
            n_features: binned.ncols(),
        };
        let mut idx = indices.to_vec();
        let mut candidates = 0u64;
        tree.build(
            &ctx,
            &mut idx,
            0,
            rng,
            &mut candidates,
            scratch,
            crate::hist::NodeHist::Unbuilt,
        );
        rec.incr("mlkit.tree.split_candidates", candidates);
        Ok(tree)
    }

    /// Recursively grows the subtree over `indices`; returns the node id.
    #[allow(clippy::too_many_arguments)]
    fn build(
        &mut self,
        ctx: &BuildCtx<'_>,
        indices: &mut [usize],
        depth: usize,
        rng: &mut StdRng,
        candidates: &mut u64,
        scratch: &mut crate::hist::TrainScratch,
        hist: crate::hist::NodeHist,
    ) -> usize {
        use crate::hist::{NodeHist, TrainMode};
        let (g_sum, h_sum) = sums(ctx.grad, ctx.hess, indices);
        let leaf_value = (-g_sum / (h_sum + ctx.params.lambda)) as f32;

        if depth >= ctx.params.max_depth || indices.len() < 2 * ctx.params.min_samples_leaf {
            return self.push(Node::Leaf { value: leaf_value });
        }

        let (found, scanned, slot) = if ctx.params.mode == TrainMode::Reference {
            let (f, s) = find_best_split(ctx, indices, g_sum, h_sum, rng);
            (f, s, 0)
        } else {
            crate::hist::find_best_split_hist(ctx, indices, g_sum, h_sum, rng, scratch, hist, depth)
        };
        *candidates += scanned;
        let Some(best) = found else {
            return self.push(Node::Leaf { value: leaf_value });
        };

        // Partition indices in place: left = bin < split bin.
        let mid = partition(indices, |&i| ctx.binned.get(i, best.feature) < best.bin);
        // Defensive: histogram said both sides are non-empty, but guard
        // against degenerate partitions anyway.
        if mid == 0 || mid == indices.len() {
            return self.push(Node::Leaf { value: leaf_value });
        }
        // Fast mode: build the smaller child's histogram now (while the
        // parent's slab is still resident for sibling subtraction).
        let (left_hist, right_hist) = if ctx.params.mode == TrainMode::Fast {
            let (l, r) = indices.split_at(mid);
            crate::hist::prepare_children(ctx, scratch, slot, depth, l, r)
        } else {
            (NodeHist::Unbuilt, NodeHist::Unbuilt)
        };
        let threshold = ctx.binner.threshold(best.feature, best.bin as usize - 1);
        let node_id = self.push(Node::Split {
            feature: best.feature,
            threshold,
            bin: best.bin,
            left: usize::MAX,
            right: usize::MAX,
        });
        let (left_idx, right_idx) = indices.split_at_mut(mid);
        let left = self.build(
            ctx,
            left_idx,
            depth + 1,
            rng,
            candidates,
            scratch,
            left_hist,
        );
        let right = self.build(
            ctx,
            right_idx,
            depth + 1,
            rng,
            candidates,
            scratch,
            right_hist,
        );
        if let Node::Split {
            left: l, right: r, ..
        } = &mut self.nodes[node_id]
        {
            *l = left;
            *r = right;
        }
        node_id
    }

    fn push(&mut self, node: Node) -> usize {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Predicts the leaf value for one raw feature row.
    ///
    /// # Panics
    ///
    /// Panics if `row` has fewer features than the tree expects.
    pub fn predict_row(&self, row: &[f32]) -> f32 {
        assert!(row.len() >= self.n_features, "feature row too short");
        let mut node = 0;
        loop {
            match &self.nodes[node] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    node = if row[*feature] < *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Appends this tree to a compiled ensemble's shared
    /// [`NodeTables`](crate::fastpath), returning the number of
    /// predicated steps that guarantee a leaf (the maximum leaf depth).
    ///
    /// Nodes are re-laid-out in breadth-first order so the hot upper
    /// levels of every tree sit adjacently, and leaves become self-loops
    /// (`left == right == self`, `+∞` threshold) so a fixed-count walk
    /// parks on them. Children are numbered *right first*, so every
    /// split satisfies `left == right + 1` — the packed traversal in
    /// `fastpath` exploits that to replace two child pointers with one
    /// (`next = right + (v < t)`); see the module docs for the contract.
    pub(crate) fn flatten_into(&self, tables: &mut crate::fastpath::NodeTables) -> u32 {
        let base = tables.len() as u32;
        let n = self.nodes.len();
        // BFS numbering: visiting order doubles as the new node id, so a
        // split's children always receive consecutive ids (right, left).
        let mut order: Vec<usize> = Vec::with_capacity(n);
        let mut new_id = vec![0u32; n];
        let mut depth = vec![0u32; n];
        order.push(0);
        let mut head = 0;
        while head < order.len() {
            let old = order[head];
            if let Node::Split { left, right, .. } = &self.nodes[old] {
                new_id[*right] = order.len() as u32;
                depth[*right] = depth[old] + 1;
                order.push(*right);
                new_id[*left] = order.len() as u32;
                depth[*left] = depth[old] + 1;
                order.push(*left);
            }
            head += 1;
        }
        let mut max_leaf_depth = 0;
        for &old in &order {
            match &self.nodes[old] {
                Node::Leaf { value } => {
                    let me = base + new_id[old];
                    tables.push(0, f32::INFINITY, me, me, *value);
                    max_leaf_depth = max_leaf_depth.max(depth[old]);
                }
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    tables.push(
                        *feature as u32,
                        *threshold,
                        base + new_id[*left],
                        base + new_id[*right],
                        0.0,
                    );
                }
            }
        }
        max_leaf_depth
    }

    /// Number of nodes in the tree.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaf nodes.
    pub fn n_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count()
    }

    /// Accumulates split-gain-free usage counts per feature into `out`
    /// (a crude feature-importance measure).
    ///
    /// # Panics
    ///
    /// Panics if `out.len() < n_features`.
    pub fn accumulate_feature_counts(&self, out: &mut [u32]) {
        for n in &self.nodes {
            if let Node::Split { feature, .. } = n {
                out[*feature] += 1;
            }
        }
    }
}

pub(crate) struct SplitCandidate {
    pub(crate) feature: usize,
    /// First bin of the right child.
    pub(crate) bin: u8,
    pub(crate) gain: f64,
}

fn sums(grad: &[f32], hess: &[f32], indices: &[usize]) -> (f64, f64) {
    let mut g = 0.0f64;
    let mut h = 0.0f64;
    for &i in indices {
        g += grad[i] as f64;
        h += hess[i] as f64;
    }
    (g, h)
}

pub(crate) fn score(g: f64, h: f64, lambda: f64) -> f64 {
    g * g / (h + lambda)
}

/// Minimum `samples × features` workload below which per-feature split
/// evaluation stays inline — thread spawns would dominate smaller nodes.
pub(crate) const PAR_SPLIT_MIN_WORK: usize = 32_768;

/// Best candidate split for a single feature: histogram the node's
/// gradients/hessians by bin, then scan cut points left to right.
///
/// Pure per feature, so features can be evaluated on any thread: the
/// result depends only on (`indices`, `j`) and the candidate kept under
/// the strict `gain >` rule is the first-best in bin order, exactly as
/// the serial scan keeps it.
fn best_split_for_feature(
    ctx: &BuildCtx<'_>,
    indices: &[usize],
    j: usize,
    g_total: f64,
    h_total: f64,
    parent_score: f64,
) -> Option<SplitCandidate> {
    let nb = ctx.binner.n_bins_for(j);
    if nb < 2 {
        return None;
    }
    let mut hg = [0.0f64; MAX_BINS];
    let mut hh = [0.0f64; MAX_BINS];
    let mut hc = [0u32; MAX_BINS];
    for &i in indices {
        let b = ctx.binned.get(i, j) as usize;
        hg[b] += ctx.grad[i] as f64;
        hh[b] += ctx.hess[i] as f64;
        hc[b] += 1;
    }
    let mut best: Option<SplitCandidate> = None;
    let mut gl = 0.0f64;
    let mut hl = 0.0f64;
    let mut cl = 0u32;
    for b in 0..nb - 1 {
        gl += hg[b];
        hl += hh[b];
        cl += hc[b];
        let cr = indices.len() as u32 - cl;
        if (cl as usize) < ctx.params.min_samples_leaf
            || (cr as usize) < ctx.params.min_samples_leaf
        {
            continue;
        }
        let gr = g_total - gl;
        let hr = h_total - hl;
        let gain =
            score(gl, hl, ctx.params.lambda) + score(gr, hr, ctx.params.lambda) - parent_score;
        if gain > ctx.params.min_gain && best.as_ref().is_none_or(|b2| gain > b2.gain) {
            best = Some(SplitCandidate {
                feature: j,
                bin: (b + 1) as u8,
                gain,
            });
        }
    }
    best
}

/// Returns the best candidate and the number of candidate cut points
/// scanned (an exact count: `Σ_j max(n_bins_j − 1, 0)` over the sampled
/// features, independent of the thread policy).
///
/// This is the [`crate::hist::TrainMode::Reference`] engine: the
/// pre-histogram-engine path, kept verbatim as the bench baseline and
/// the oracle for the differential suite.
pub(crate) fn find_best_split(
    ctx: &BuildCtx<'_>,
    indices: &[usize],
    g_total: f64,
    h_total: f64,
    rng: &mut StdRng,
) -> (Option<SplitCandidate>, u64) {
    let n_features = ctx.binned.ncols();
    let mut features: Vec<usize> = (0..n_features).collect();
    if ctx.params.colsample < 1.0 {
        let keep = ((n_features as f64 * ctx.params.colsample).ceil() as usize).max(1);
        features.shuffle(rng);
        features.truncate(keep);
    }
    let scanned: u64 = features
        .iter()
        .map(|&j| ctx.binner.n_bins_for(j).saturating_sub(1) as u64)
        .sum();

    let parent_score = score(g_total, h_total, ctx.params.lambda);

    // Per-feature evaluation is independent; fan out when the node is big
    // enough to pay for it. Either path reduces candidates in feature-list
    // order under the same strict `gain >` comparison, so the chosen split
    // (ties included) is identical to the serial scan.
    let threads = ctx.params.threads;
    let candidates: Vec<Option<SplitCandidate>> =
        if threads.is_serial() || indices.len() * features.len() < PAR_SPLIT_MIN_WORK {
            features
                .iter()
                .map(|&j| best_split_for_feature(ctx, indices, j, g_total, h_total, parent_score))
                .collect()
        } else {
            parkit::par_map(threads, &features, |&j| {
                best_split_for_feature(ctx, indices, j, g_total, h_total, parent_score)
            })
        };

    let mut best: Option<SplitCandidate> = None;
    for cand in candidates.into_iter().flatten() {
        if best.as_ref().is_none_or(|b2| cand.gain > b2.gain) {
            best = Some(cand);
        }
    }
    (best, scanned)
}

/// Stable-ish in-place partition: elements satisfying `pred` move to the
/// front; returns the number of such elements.
fn partition<T, F: Fn(&T) -> bool>(xs: &mut [T], pred: F) -> usize {
    let mut mid = 0;
    for i in 0..xs.len() {
        if pred(&xs[i]) {
            xs.swap(mid, i);
            mid += 1;
        }
    }
    mid
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn step_data(n: usize) -> (Matrix, Vec<f32>) {
        // target = 1 for x >= 0.5, else -1 (as gradients of a simple loss)
        let rows: Vec<Vec<f32>> = (0..n).map(|i| vec![i as f32 / n as f32]).collect();
        let targets: Vec<f32> = rows
            .iter()
            .map(|r| if r[0] >= 0.5 { 1.0 } else { -1.0 })
            .collect();
        (Matrix::from_rows(&rows).unwrap(), targets)
    }

    #[test]
    fn binner_bins_are_monotone() {
        let (x, _) = step_data(100);
        let binner = QuantileBinner::fit(&x, 16).unwrap();
        let mut prev = 0u8;
        for i in 0..100 {
            let b = binner.bin_value(0, i as f32 / 100.0);
            assert!(b >= prev, "bins must be monotone in the value");
            prev = b;
        }
        assert!(binner.n_bins_for(0) > 1);
    }

    #[test]
    fn binner_constant_feature_single_bin() {
        let x = Matrix::from_rows(&[vec![3.0], vec![3.0], vec![3.0]]).unwrap();
        let binner = QuantileBinner::fit(&x, 8).unwrap();
        assert_eq!(binner.n_bins_for(0), 1);
    }

    #[test]
    fn binner_rejects_bad_bins() {
        let x = Matrix::zeros(2, 1);
        assert!(QuantileBinner::fit(&x, 1).is_err());
        assert!(QuantileBinner::fit(&x, 1000).is_err());
    }

    #[test]
    fn transform_shape_checked() {
        let (x, _) = step_data(10);
        let binner = QuantileBinner::fit(&x, 4).unwrap();
        let wrong = Matrix::zeros(3, 2);
        assert!(binner.transform(&wrong).is_err());
        let b = binner.transform(&x).unwrap();
        assert_eq!(b.nrows(), 10);
        assert_eq!(b.ncols(), 1);
    }

    #[test]
    fn tree_fits_step_function() {
        let (x, targets) = step_data(200);
        let binner = QuantileBinner::fit(&x, 32).unwrap();
        let binned = binner.transform(&x).unwrap();
        // Squared-error boosting: grad = -(target - 0), hess = 1.
        let grad: Vec<f32> = targets.iter().map(|&t| -t).collect();
        let hess = vec![1.0f32; 200];
        let idx: Vec<usize> = (0..200).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let params = TreeParams {
            lambda: 0.0,
            ..TreeParams::default()
        };
        let tree =
            RegressionTree::fit(&binned, &binner, &grad, &hess, &idx, params, &mut rng).unwrap();
        // Predictions should be close to +-1 on the two plateaus.
        assert!(tree.predict_row(&[0.1]) < -0.8);
        assert!(tree.predict_row(&[0.9]) > 0.8);
        assert!(tree.n_leaves() >= 2);
    }

    #[test]
    fn tree_respects_min_samples_leaf() {
        let (x, targets) = step_data(40);
        let binner = QuantileBinner::fit(&x, 32).unwrap();
        let binned = binner.transform(&x).unwrap();
        let grad: Vec<f32> = targets.iter().map(|&t| -t).collect();
        let hess = vec![1.0f32; 40];
        let idx: Vec<usize> = (0..40).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let params = TreeParams {
            min_samples_leaf: 30, // cannot split 40 into two sides of >= 30
            ..TreeParams::default()
        };
        let tree =
            RegressionTree::fit(&binned, &binner, &grad, &hess, &idx, params, &mut rng).unwrap();
        assert_eq!(tree.n_leaves(), 1);
    }

    #[test]
    fn tree_empty_indices_error() {
        let (x, _) = step_data(10);
        let binner = QuantileBinner::fit(&x, 4).unwrap();
        let binned = binner.transform(&x).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let err = RegressionTree::fit(
            &binned,
            &binner,
            &[0.0; 10],
            &[1.0; 10],
            &[],
            TreeParams::default(),
            &mut rng,
        );
        assert!(matches!(err, Err(MlError::EmptyDataset)));
    }

    #[test]
    fn partition_moves_matching_to_front() {
        let mut xs = vec![5, 1, 4, 2, 3];
        let mid = partition(&mut xs, |&v| v <= 2);
        assert_eq!(mid, 2);
        let (left, right) = xs.split_at(mid);
        assert!(left.iter().all(|&v| v <= 2));
        assert!(right.iter().all(|&v| v > 2));
    }

    #[test]
    fn feature_counts_accumulate() {
        let (x, targets) = step_data(100);
        let binner = QuantileBinner::fit(&x, 16).unwrap();
        let binned = binner.transform(&x).unwrap();
        let grad: Vec<f32> = targets.iter().map(|&t| -t).collect();
        let hess = vec![1.0f32; 100];
        let idx: Vec<usize> = (0..100).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let tree = RegressionTree::fit(
            &binned,
            &binner,
            &grad,
            &hess,
            &idx,
            TreeParams::default(),
            &mut rng,
        )
        .unwrap();
        let mut counts = vec![0u32; 1];
        tree.accumulate_feature_counts(&mut counts);
        assert!(counts[0] >= 1);
    }
}
