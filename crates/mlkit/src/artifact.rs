//! Versioned binary envelope for shipped model artifacts.
//!
//! A trained model leaving the training pipeline crosses a trust
//! boundary: the file on disk may be truncated, bit-rotted, produced by
//! an older build, or simply be the wrong file. The envelope makes every
//! one of those failure modes a *typed error* instead of a garbage model:
//!
//! ```text
//! offset  size  field
//!      0     8  magic            b"SBEMODL\x01"
//!      8     4  format version   u32 LE (FORMAT_VERSION)
//!     12     8  schema hash      u64 LE (producer-defined, e.g. FNV-1a
//!                                 over the ordered feature names)
//!     20     2  kind length      u16 LE
//!     22     k  kind             UTF-8 (e.g. "sbepred/twostage")
//!   22+k     8  payload length   u64 LE
//!   30+k     8  payload checksum u64 LE (FNV-1a 64 of the payload)
//!   38+k     n  payload          producer-defined (serde JSON here)
//! ```
//!
//! The envelope itself is payload-agnostic; consumers decode the payload
//! and decide what the schema hash means. Everything is little-endian and
//! self-delimiting, so decoding is a pure function of the byte slice.

use crate::{MlError, Result};

/// Leading magic; the trailing byte doubles as a format generation marker
/// so even version-0 prototypes are distinguishable from arbitrary files.
pub const MAGIC: [u8; 8] = *b"SBEMODL\x01";

/// Envelope format version this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;

/// Fixed header bytes before the variable-length kind string.
const FIXED_HEADER_LEN: usize = 8 + 4 + 8 + 2;

/// 64-bit FNV-1a hash — the checksum/schema-fingerprint primitive used
/// throughout the artifact layer (stable, dependency-free, and fast
/// enough for megabyte payloads).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A decoded artifact envelope: kind tag, schema hash, and the verified
/// payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Producer-defined artifact kind (e.g. `"sbepred/twostage"`).
    pub kind: String,
    /// Producer-defined schema fingerprint.
    pub schema_hash: u64,
    /// The payload, checksum-verified.
    pub payload: Vec<u8>,
}

impl Envelope {
    /// Wraps a payload.
    pub fn new(kind: impl Into<String>, schema_hash: u64, payload: Vec<u8>) -> Envelope {
        Envelope {
            kind: kind.into(),
            schema_hash,
            payload,
        }
    }

    /// Serialises the envelope to bytes.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidParameter`] when the kind string exceeds
    /// the 2-byte length field.
    pub fn encode(&self) -> Result<Vec<u8>> {
        let kind = self.kind.as_bytes();
        if kind.len() > u16::MAX as usize {
            return Err(MlError::InvalidParameter {
                name: "kind",
                reason: format!("kind string of {} bytes exceeds u16::MAX", kind.len()),
            });
        }
        let mut out = Vec::with_capacity(FIXED_HEADER_LEN + kind.len() + 16 + self.payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.schema_hash.to_le_bytes());
        out.extend_from_slice(&(kind.len() as u16).to_le_bytes());
        out.extend_from_slice(kind);
        out.extend_from_slice(&(self.payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a64(&self.payload).to_le_bytes());
        out.extend_from_slice(&self.payload);
        Ok(out)
    }

    /// Parses and verifies an envelope from bytes.
    ///
    /// # Errors
    ///
    /// * [`MlError::ArtifactCorrupt`] — truncation, wrong magic, invalid
    ///   kind encoding, checksum mismatch, or trailing garbage;
    /// * [`MlError::ArtifactVersionMismatch`] — a format version this
    ///   build does not read.
    pub fn decode(bytes: &[u8]) -> Result<Envelope> {
        let mut rest = bytes;
        let magic = take(&mut rest, 8, "magic")?;
        if magic != MAGIC {
            return Err(MlError::ArtifactCorrupt {
                reason: "bad magic: not a model artifact".into(),
            });
        }
        let version = u32::from_le_bytes(le4(take(&mut rest, 4, "format version")?));
        if version != FORMAT_VERSION {
            return Err(MlError::ArtifactVersionMismatch {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let schema_hash = u64::from_le_bytes(le8(take(&mut rest, 8, "schema hash")?));
        let kind_len = u16::from_le_bytes(le2(take(&mut rest, 2, "kind length")?)) as usize;
        let kind_bytes = take(&mut rest, kind_len, "kind string")?;
        let kind = std::str::from_utf8(kind_bytes)
            .map_err(|_| MlError::ArtifactCorrupt {
                reason: "kind string is not valid UTF-8".into(),
            })?
            .to_string();
        let payload_len = u64::from_le_bytes(le8(take(&mut rest, 8, "payload length")?));
        let checksum = u64::from_le_bytes(le8(take(&mut rest, 8, "payload checksum")?));
        if payload_len != rest.len() as u64 {
            return Err(MlError::ArtifactCorrupt {
                reason: format!(
                    "payload length mismatch: header says {payload_len} bytes, {} remain",
                    rest.len()
                ),
            });
        }
        let actual = fnv1a64(rest);
        if actual != checksum {
            return Err(MlError::ArtifactCorrupt {
                reason: format!(
                    "payload checksum mismatch: stored {checksum:#018x}, computed {actual:#018x}"
                ),
            });
        }
        Ok(Envelope {
            kind,
            schema_hash,
            payload: rest.to_vec(),
        })
    }
}

/// Splits `n` bytes off the front of `buf`, or reports what was being
/// read when the file ran out.
fn take<'a>(buf: &mut &'a [u8], n: usize, what: &str) -> Result<&'a [u8]> {
    if buf.len() < n {
        return Err(MlError::ArtifactCorrupt {
            reason: format!(
                "truncated while reading {what}: need {n} bytes, have {}",
                buf.len()
            ),
        });
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Ok(head)
}

fn le2(b: &[u8]) -> [u8; 2] {
    let mut a = [0u8; 2];
    a.copy_from_slice(&b[..2]);
    a
}

fn le4(b: &[u8]) -> [u8; 4] {
    let mut a = [0u8; 4];
    a.copy_from_slice(&b[..4]);
    a
}

fn le8(b: &[u8]) -> [u8; 8] {
    let mut a = [0u8; 8];
    a.copy_from_slice(&b[..8]);
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Envelope {
        Envelope::new(
            "test/kind",
            0xdead_beef_cafe_f00d,
            b"hello payload".to_vec(),
        )
    }

    #[test]
    fn round_trip_preserves_everything() {
        let env = sample();
        let bytes = env.encode().unwrap();
        let back = Envelope::decode(&bytes).unwrap();
        assert_eq!(back, env);
    }

    #[test]
    fn empty_payload_round_trips() {
        let env = Envelope::new("k", 0, Vec::new());
        let back = Envelope::decode(&env.encode().unwrap()).unwrap();
        assert_eq!(back.payload, Vec::<u8>::new());
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let bytes = sample().encode().unwrap();
        for n in 0..bytes.len() {
            match Envelope::decode(&bytes[..n]) {
                Err(MlError::ArtifactCorrupt { .. }) => {}
                other => panic!("truncation at {n} gave {other:?}"),
            }
        }
    }

    #[test]
    fn wrong_magic_rejected() {
        let mut bytes = sample().encode().unwrap();
        bytes[0] ^= 0xff;
        assert!(matches!(
            Envelope::decode(&bytes),
            Err(MlError::ArtifactCorrupt { .. })
        ));
    }

    #[test]
    fn future_version_rejected() {
        let mut bytes = sample().encode().unwrap();
        bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        assert_eq!(
            Envelope::decode(&bytes),
            Err(MlError::ArtifactVersionMismatch {
                found: FORMAT_VERSION + 1,
                supported: FORMAT_VERSION,
            })
        );
    }

    #[test]
    fn payload_corruption_fails_checksum() {
        let env = sample();
        let mut bytes = env.encode().unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(matches!(
            Envelope::decode(&bytes),
            Err(MlError::ArtifactCorrupt { .. })
        ));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = sample().encode().unwrap();
        bytes.push(0);
        assert!(matches!(
            Envelope::decode(&bytes),
            Err(MlError::ArtifactCorrupt { .. })
        ));
    }

    #[test]
    fn fnv_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
