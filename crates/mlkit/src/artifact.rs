//! Versioned binary envelope for shipped model artifacts.
//!
//! A trained model leaving the training pipeline crosses a trust
//! boundary: the file on disk may be truncated, bit-rotted, produced by
//! an older build, or simply be the wrong file. The envelope makes every
//! one of those failure modes a *typed error* instead of a garbage model:
//!
//! ```text
//! offset  size  field
//!      0     8  magic            b"SBEMODL\x01"
//!      8     4  format version   u32 LE (FORMAT_VERSION)
//!     12     8  schema hash      u64 LE (producer-defined, e.g. FNV-1a
//!                                 over the ordered feature names)
//!     20     8  parent checksum  u64 LE (FNV-1a of the parent artifact's
//!                                 encoded bytes; 0 for a root artifact)
//!     28     8  train-from min   u64 LE (training window start)
//!     36     8  train-until min  u64 LE (training window end, exclusive)
//!     44     4  generation       u32 LE (0 for a root artifact)
//!     48     2  kind length      u16 LE
//!     50     k  kind             UTF-8 (e.g. "sbepred/twostage")
//!   50+k     8  payload length   u64 LE
//!   58+k     8  payload checksum u64 LE (FNV-1a 64 of the payload)
//!   66+k     n  payload          producer-defined (serde JSON here)
//! ```
//!
//! Format version 2 added the lineage block (offsets 20–47): the
//! continual-learning loop promotes challenger artifacts whose
//! succession must be auditable — which champion each artifact replaced
//! (parent checksum), what window it was fitted on, and its place in
//! the generation chain. A root artifact (trained from scratch, not
//! promoted over a parent) carries the all-zero lineage.
//!
//! The envelope itself is payload-agnostic; consumers decode the payload
//! and decide what the schema hash means. Everything is little-endian and
//! self-delimiting, so decoding is a pure function of the byte slice.

use crate::{MlError, Result};

// Canonical FNV-1a lives in [`crate::hash`]; re-exported here because the
// artifact layer is where downstream crates historically imported it.
pub use crate::hash::fnv1a64;

/// Leading magic; the trailing byte doubles as a format generation marker
/// so even version-0 prototypes are distinguishable from arbitrary files.
pub const MAGIC: [u8; 8] = *b"SBEMODL\x01";

/// Envelope format version this build reads and writes. Version 2 added
/// the lineage block.
pub const FORMAT_VERSION: u32 = 2;

/// Fixed header bytes before the variable-length kind string:
/// magic + version + schema hash + lineage block + kind length.
const FIXED_HEADER_LEN: usize = 8 + 4 + 8 + Lineage::ENCODED_LEN + 2;

/// Provenance of an artifact in the champion/challenger succession
/// chain: which artifact it replaced, the minute window it was trained
/// on, and its generation counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Lineage {
    /// FNV-1a 64 of the parent artifact's full encoded bytes; 0 for a
    /// root artifact with no parent.
    pub parent_checksum: u64,
    /// First minute of the training window (inclusive).
    pub train_from_min: u64,
    /// End of the training window (exclusive).
    pub train_until_min: u64,
    /// Generation counter: 0 for a root artifact, parent + 1 for every
    /// promoted challenger.
    pub generation: u32,
}

impl Lineage {
    /// Encoded size of the lineage block.
    pub const ENCODED_LEN: usize = 8 + 8 + 8 + 4;

    /// A root lineage: no parent, zero window, generation 0.
    pub fn root() -> Lineage {
        Lineage::default()
    }

    /// Lineage for a child artifact promoted over `parent_checksum`.
    pub fn child_of(
        parent_checksum: u64,
        parent_generation: u32,
        train_from_min: u64,
        train_until_min: u64,
    ) -> Lineage {
        Lineage {
            parent_checksum,
            train_from_min,
            train_until_min,
            generation: parent_generation.wrapping_add(1),
        }
    }

    /// Verifies this lineage is a well-formed successor of the artifact
    /// with the given checksum and generation — the gate a serving
    /// process applies before hot-swapping a challenger in.
    ///
    /// # Errors
    ///
    /// [`MlError::ArtifactLineage`] on a parent-checksum mismatch or a
    /// generation that is not strictly `parent_generation + 1`.
    pub fn verify_succession(&self, parent_checksum: u64, parent_generation: u32) -> Result<()> {
        if self.parent_checksum != parent_checksum {
            return Err(MlError::ArtifactLineage {
                reason: format!(
                    "parent checksum mismatch: artifact claims parent {:#018x}, \
                     serving champion is {parent_checksum:#018x}",
                    self.parent_checksum
                ),
            });
        }
        let expected = parent_generation.wrapping_add(1);
        if self.generation != expected {
            return Err(MlError::ArtifactLineage {
                reason: format!(
                    "generation regression: artifact is generation {}, expected {expected} \
                     (champion is generation {parent_generation})",
                    self.generation
                ),
            });
        }
        Ok(())
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.parent_checksum.to_le_bytes());
        out.extend_from_slice(&self.train_from_min.to_le_bytes());
        out.extend_from_slice(&self.train_until_min.to_le_bytes());
        out.extend_from_slice(&self.generation.to_le_bytes());
    }

    fn decode(rest: &mut &[u8]) -> Result<Lineage> {
        let parent_checksum = u64::from_le_bytes(le8(take(rest, 8, "parent checksum")?));
        let train_from_min = u64::from_le_bytes(le8(take(rest, 8, "train-from minute")?));
        let train_until_min = u64::from_le_bytes(le8(take(rest, 8, "train-until minute")?));
        let generation = u32::from_le_bytes(le4(take(rest, 4, "generation")?));
        if train_until_min < train_from_min {
            return Err(MlError::ArtifactLineage {
                reason: format!(
                    "inverted training window: from minute {train_from_min} until \
                     {train_until_min}"
                ),
            });
        }
        Ok(Lineage {
            parent_checksum,
            train_from_min,
            train_until_min,
            generation,
        })
    }
}

/// A decoded artifact envelope: kind tag, schema hash, lineage, and the
/// verified payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Producer-defined artifact kind (e.g. `"sbepred/twostage"`).
    pub kind: String,
    /// Producer-defined schema fingerprint.
    pub schema_hash: u64,
    /// Succession provenance; [`Lineage::root`] for a from-scratch model.
    pub lineage: Lineage,
    /// The payload, checksum-verified.
    pub payload: Vec<u8>,
}

impl Envelope {
    /// Wraps a payload with root lineage.
    pub fn new(kind: impl Into<String>, schema_hash: u64, payload: Vec<u8>) -> Envelope {
        Envelope {
            kind: kind.into(),
            schema_hash,
            lineage: Lineage::root(),
            payload,
        }
    }

    /// Wraps a payload with explicit lineage.
    pub fn with_lineage(
        kind: impl Into<String>,
        schema_hash: u64,
        lineage: Lineage,
        payload: Vec<u8>,
    ) -> Envelope {
        Envelope {
            kind: kind.into(),
            schema_hash,
            lineage,
            payload,
        }
    }

    /// Serialises the envelope to bytes.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidParameter`] when the kind string exceeds
    /// the 2-byte length field.
    pub fn encode(&self) -> Result<Vec<u8>> {
        let kind = self.kind.as_bytes();
        if kind.len() > u16::MAX as usize {
            return Err(MlError::InvalidParameter {
                name: "kind",
                reason: format!("kind string of {} bytes exceeds u16::MAX", kind.len()),
            });
        }
        let mut out = Vec::with_capacity(FIXED_HEADER_LEN + kind.len() + 16 + self.payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.schema_hash.to_le_bytes());
        self.lineage.encode_into(&mut out);
        out.extend_from_slice(&(kind.len() as u16).to_le_bytes());
        out.extend_from_slice(kind);
        out.extend_from_slice(&(self.payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a64(&self.payload).to_le_bytes());
        out.extend_from_slice(&self.payload);
        Ok(out)
    }

    /// Parses and verifies an envelope from bytes.
    ///
    /// # Errors
    ///
    /// * [`MlError::ArtifactCorrupt`] — truncation, wrong magic, invalid
    ///   kind encoding, checksum mismatch, or trailing garbage;
    /// * [`MlError::ArtifactVersionMismatch`] — a format version this
    ///   build does not read;
    /// * [`MlError::ArtifactLineage`] — an inverted training window.
    pub fn decode(bytes: &[u8]) -> Result<Envelope> {
        let mut rest = bytes;
        let magic = take(&mut rest, 8, "magic")?;
        if magic != MAGIC {
            return Err(MlError::ArtifactCorrupt {
                reason: "bad magic: not a model artifact".into(),
            });
        }
        let version = u32::from_le_bytes(le4(take(&mut rest, 4, "format version")?));
        if version != FORMAT_VERSION {
            return Err(MlError::ArtifactVersionMismatch {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let schema_hash = u64::from_le_bytes(le8(take(&mut rest, 8, "schema hash")?));
        let lineage = Lineage::decode(&mut rest)?;
        let kind_len = u16::from_le_bytes(le2(take(&mut rest, 2, "kind length")?)) as usize;
        let kind_bytes = take(&mut rest, kind_len, "kind string")?;
        let kind = std::str::from_utf8(kind_bytes)
            .map_err(|_| MlError::ArtifactCorrupt {
                reason: "kind string is not valid UTF-8".into(),
            })?
            .to_string();
        let payload_len = u64::from_le_bytes(le8(take(&mut rest, 8, "payload length")?));
        let checksum = u64::from_le_bytes(le8(take(&mut rest, 8, "payload checksum")?));
        if payload_len != rest.len() as u64 {
            return Err(MlError::ArtifactCorrupt {
                reason: format!(
                    "payload length mismatch: header says {payload_len} bytes, {} remain",
                    rest.len()
                ),
            });
        }
        let actual = fnv1a64(rest);
        if actual != checksum {
            return Err(MlError::ArtifactCorrupt {
                reason: format!(
                    "payload checksum mismatch: stored {checksum:#018x}, computed {actual:#018x}"
                ),
            });
        }
        Ok(Envelope {
            kind,
            schema_hash,
            lineage,
            payload: rest.to_vec(),
        })
    }
}

/// Splits `n` bytes off the front of `buf`, or reports what was being
/// read when the file ran out.
fn take<'a>(buf: &mut &'a [u8], n: usize, what: &str) -> Result<&'a [u8]> {
    if buf.len() < n {
        return Err(MlError::ArtifactCorrupt {
            reason: format!(
                "truncated while reading {what}: need {n} bytes, have {}",
                buf.len()
            ),
        });
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Ok(head)
}

fn le2(b: &[u8]) -> [u8; 2] {
    let mut a = [0u8; 2];
    a.copy_from_slice(&b[..2]);
    a
}

fn le4(b: &[u8]) -> [u8; 4] {
    let mut a = [0u8; 4];
    a.copy_from_slice(&b[..4]);
    a
}

fn le8(b: &[u8]) -> [u8; 8] {
    let mut a = [0u8; 8];
    a.copy_from_slice(&b[..8]);
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Envelope {
        Envelope::new(
            "test/kind",
            0xdead_beef_cafe_f00d,
            b"hello payload".to_vec(),
        )
    }

    fn sample_child() -> Envelope {
        Envelope::with_lineage(
            "test/kind",
            0xdead_beef_cafe_f00d,
            Lineage::child_of(0x1111_2222_3333_4444, 6, 1000, 2000),
            b"hello payload".to_vec(),
        )
    }

    #[test]
    fn round_trip_preserves_everything() {
        let env = sample();
        let bytes = env.encode().unwrap();
        let back = Envelope::decode(&bytes).unwrap();
        assert_eq!(back, env);
    }

    #[test]
    fn lineage_round_trips() {
        let env = sample_child();
        let back = Envelope::decode(&env.encode().unwrap()).unwrap();
        assert_eq!(back.lineage.parent_checksum, 0x1111_2222_3333_4444);
        assert_eq!(back.lineage.train_from_min, 1000);
        assert_eq!(back.lineage.train_until_min, 2000);
        assert_eq!(back.lineage.generation, 7);
    }

    #[test]
    fn empty_payload_round_trips() {
        let env = Envelope::new("k", 0, Vec::new());
        let back = Envelope::decode(&env.encode().unwrap()).unwrap();
        assert_eq!(back.payload, Vec::<u8>::new());
        assert_eq!(back.lineage, Lineage::root());
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        // A child envelope so every lineage byte is load-bearing.
        let bytes = sample_child().encode().unwrap();
        for n in 0..bytes.len() {
            match Envelope::decode(&bytes[..n]) {
                Err(MlError::ArtifactCorrupt { .. }) => {}
                other => panic!("truncation at {n} gave {other:?}"),
            }
        }
    }

    #[test]
    fn wrong_magic_rejected() {
        let mut bytes = sample().encode().unwrap();
        bytes[0] ^= 0xff;
        assert!(matches!(
            Envelope::decode(&bytes),
            Err(MlError::ArtifactCorrupt { .. })
        ));
    }

    #[test]
    fn future_version_rejected() {
        let mut bytes = sample().encode().unwrap();
        bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        assert_eq!(
            Envelope::decode(&bytes),
            Err(MlError::ArtifactVersionMismatch {
                found: FORMAT_VERSION + 1,
                supported: FORMAT_VERSION,
            })
        );
    }

    #[test]
    fn lineage_free_v1_rejected_as_version_mismatch() {
        let mut bytes = sample().encode().unwrap();
        bytes[8..12].copy_from_slice(&1u32.to_le_bytes());
        assert_eq!(
            Envelope::decode(&bytes),
            Err(MlError::ArtifactVersionMismatch {
                found: 1,
                supported: FORMAT_VERSION,
            })
        );
    }

    #[test]
    fn inverted_training_window_rejected() {
        let env = Envelope::with_lineage(
            "k",
            0,
            Lineage {
                parent_checksum: 0,
                train_from_min: 500,
                train_until_min: 100,
                generation: 1,
            },
            Vec::new(),
        );
        assert!(matches!(
            Envelope::decode(&env.encode().unwrap()),
            Err(MlError::ArtifactLineage { .. })
        ));
    }

    #[test]
    fn payload_corruption_fails_checksum() {
        let env = sample();
        let mut bytes = env.encode().unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(matches!(
            Envelope::decode(&bytes),
            Err(MlError::ArtifactCorrupt { .. })
        ));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = sample().encode().unwrap();
        bytes.push(0);
        assert!(matches!(
            Envelope::decode(&bytes),
            Err(MlError::ArtifactCorrupt { .. })
        ));
    }

    #[test]
    fn succession_accepts_direct_child() {
        let lin = Lineage::child_of(0xabcd, 3, 0, 10);
        assert!(lin.verify_succession(0xabcd, 3).is_ok());
    }

    #[test]
    fn succession_rejects_wrong_parent() {
        let lin = Lineage::child_of(0xabcd, 3, 0, 10);
        assert!(matches!(
            lin.verify_succession(0xeeee, 3),
            Err(MlError::ArtifactLineage { .. })
        ));
    }

    #[test]
    fn succession_rejects_generation_regression() {
        let lin = Lineage::child_of(0xabcd, 3, 0, 10);
        // Champion has moved on to generation 5: a generation-4 artifact
        // is stale, not a successor.
        assert!(matches!(
            lin.verify_succession(0xabcd, 5),
            Err(MlError::ArtifactLineage { .. })
        ));
    }

    #[test]
    fn fnv_reference_vectors() {
        // Standard FNV-1a 64 test vectors (canonical impl in crate::hash,
        // re-exported here).
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
