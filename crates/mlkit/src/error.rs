use std::fmt;

/// Errors produced by `mlkit` operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MlError {
    /// Matrix/vector dimensions do not agree for the requested operation.
    DimensionMismatch {
        /// What was expected (e.g. "4 columns").
        expected: String,
        /// What was found.
        found: String,
    },
    /// A dataset is empty or otherwise unusable for the requested operation.
    EmptyDataset,
    /// The model has not been fitted yet.
    NotFitted,
    /// An invalid hyper-parameter value was supplied.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable explanation.
        reason: String,
    },
    /// Training data contained only a single class where two are required.
    SingleClass,
    /// A numeric operation produced a non-finite value.
    NumericalError(String),
    /// A model artifact is structurally damaged: truncated, wrong magic,
    /// bad checksum, or an undecodable payload.
    ArtifactCorrupt {
        /// What was damaged.
        reason: String,
    },
    /// A model artifact was written by an incompatible format version.
    ArtifactVersionMismatch {
        /// Version found in the artifact header.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// A model artifact declares a different kind than the caller expects
    /// (e.g. loading a forecast model as a classifier pipeline).
    ArtifactKindMismatch {
        /// Kind the caller expected.
        expected: String,
        /// Kind found in the artifact header.
        found: String,
    },
    /// A model artifact's feature schema does not match the schema the
    /// running code would produce — scoring it would silently misalign
    /// features.
    ArtifactSchemaMismatch {
        /// Schema hash the running code expects.
        expected: u64,
        /// Schema hash found in the artifact header.
        found: u64,
    },
    /// A model artifact's lineage header is inconsistent with the
    /// succession chain it claims membership in: wrong parent checksum,
    /// a generation regression, or an inverted training window.
    ArtifactLineage {
        /// What broke the succession invariant.
        reason: String,
    },
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            MlError::EmptyDataset => write!(f, "dataset is empty"),
            MlError::NotFitted => write!(f, "model has not been fitted"),
            MlError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            MlError::SingleClass => {
                write!(f, "training data contains a single class; two are required")
            }
            MlError::NumericalError(msg) => write!(f, "numerical error: {msg}"),
            MlError::ArtifactCorrupt { reason } => {
                write!(f, "artifact corrupt: {reason}")
            }
            MlError::ArtifactVersionMismatch { found, supported } => {
                write!(
                    f,
                    "artifact format version {found} not supported (this build reads version {supported})"
                )
            }
            MlError::ArtifactKindMismatch { expected, found } => {
                write!(
                    f,
                    "artifact kind mismatch: expected `{expected}`, found `{found}`"
                )
            }
            MlError::ArtifactSchemaMismatch { expected, found } => {
                write!(
                    f,
                    "artifact feature-schema mismatch: expected {expected:#018x}, found {found:#018x}"
                )
            }
            MlError::ArtifactLineage { reason } => {
                write!(f, "artifact lineage invalid: {reason}")
            }
        }
    }
}

impl std::error::Error for MlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = MlError::DimensionMismatch {
            expected: "3 columns".into(),
            found: "2 columns".into(),
        };
        let s = e.to_string();
        assert!(s.contains("expected 3 columns"));
        assert!(s.starts_with("dimension mismatch"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MlError>();
    }
}
