//! Descriptive statistics used throughout the characterization study:
//! Spearman/Pearson correlation, percentiles, running moments, histograms,
//! and empirical CDFs.

use crate::{MlError, Result};
use serde::{Deserialize, Serialize};

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation; 0.0 for fewer than two values.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
    var.sqrt()
}

/// Pearson linear correlation coefficient.
///
/// # Errors
///
/// Returns [`MlError::DimensionMismatch`] when lengths differ,
/// [`MlError::EmptyDataset`] for fewer than two points, and
/// [`MlError::NumericalError`] when either input is constant.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Result<f64> {
    if xs.len() != ys.len() {
        return Err(MlError::DimensionMismatch {
            expected: format!("{} values", xs.len()),
            found: format!("{} values", ys.len()),
        });
    }
    if xs.len() < 2 {
        return Err(MlError::EmptyDataset);
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return Err(MlError::NumericalError(
            "pearson correlation undefined for constant input".into(),
        ));
    }
    Ok(sxy / (sxx.sqrt() * syy.sqrt()))
}

/// Spearman rank correlation coefficient (the statistic the paper uses for
/// Fig. 4 and the temperature/offender spatial comparison).
///
/// Ties receive average ranks; the coefficient is the Pearson correlation of
/// the rank vectors.
///
/// # Errors
///
/// Same conditions as [`pearson`].
pub fn spearman(xs: &[f64], ys: &[f64]) -> Result<f64> {
    if xs.len() != ys.len() {
        return Err(MlError::DimensionMismatch {
            expected: format!("{} values", xs.len()),
            found: format!("{} values", ys.len()),
        });
    }
    let rx = ranks(xs);
    let ry = ranks(ys);
    pearson(&rx, &ry)
}

/// Average ranks (1-based) with ties sharing their mean rank.
pub fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..xs.len()).collect();
    order.sort_by(|&a, &b| {
        xs[a]
            .partial_cmp(&xs[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && xs[order[j + 1]] == xs[order[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

/// Linear-interpolated percentile (`p` in `[0, 100]`) of unsorted data.
///
/// # Errors
///
/// Returns [`MlError::EmptyDataset`] for empty input and
/// [`MlError::InvalidParameter`] when `p` is out of range.
pub fn percentile(xs: &[f64], p: f64) -> Result<f64> {
    if xs.is_empty() {
        return Err(MlError::EmptyDataset);
    }
    if !(0.0..=100.0).contains(&p) {
        return Err(MlError::InvalidParameter {
            name: "p",
            reason: format!("percentile must be in [0, 100], got {p}"),
        });
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let idx = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = idx.floor() as usize;
    let hi = idx.ceil() as usize;
    if lo == hi {
        Ok(sorted[lo])
    } else {
        let frac = idx - lo as f64;
        Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Streaming mean/std/min/max accumulator (Welford's algorithm).
///
/// Used by the telemetry engine to summarise temperature/power windows
/// without storing the series.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> RunningStats {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population standard deviation (0.0 for < 2 observations).
    pub fn std_dev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / self.n as f64).sqrt()
        }
    }

    /// Minimum (0.0 when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum (0.0 when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
}

/// An empirical CDF over a sample.
///
/// # Example
///
/// ```
/// use mlkit::stats::Ecdf;
///
/// let cdf = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(cdf.eval(2.5), 0.5);
/// assert_eq!(cdf.eval(0.0), 0.0);
/// assert_eq!(cdf.eval(10.0), 1.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds the ECDF from a sample (unsorted input accepted).
    pub fn new(xs: &[f64]) -> Ecdf {
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        Ecdf { sorted }
    }

    /// Fraction of the sample that is `<= x`.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Number of samples backing the ECDF.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` when the ECDF has no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Inverse CDF (quantile); clamps `q` into `[0, 1]`.
    ///
    /// Returns `None` when the sample is empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.sorted.len() - 1) as f64 * q).round() as usize;
        Some(self.sorted[idx])
    }
}

/// A fixed-bin histogram over `[lo, hi)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidParameter`] when `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Histogram> {
        if bins == 0 {
            return Err(MlError::InvalidParameter {
                name: "bins",
                reason: "must be > 0".into(),
            });
        }
        if hi <= lo {
            return Err(MlError::InvalidParameter {
                name: "hi",
                reason: format!("hi ({hi}) must exceed lo ({lo})"),
            });
        }
        Ok(Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        })
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let bin = ((x - self.lo) / (self.hi - self.lo) * self.counts.len() as f64) as usize;
            let last = self.counts.len() - 1;
            self.counts[bin.min(last)] += 1;
        }
    }

    /// Per-bin raw counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Per-bin probabilities (counts normalised by the in-range total).
    pub fn probabilities(&self) -> Vec<f64> {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect()
    }

    /// Centre of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin index out of range");
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + w * (i as f64 + 0.5)
    }

    /// Observations below `lo` / at-or-above `hi`.
    pub fn out_of_range(&self) -> (u64, u64) {
        (self.underflow, self.overflow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert!((std_dev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
        assert_eq!(std_dev(&[5.0]), 0.0);
    }

    #[test]
    fn pearson_perfect_line() {
        let x = [1.0, 2.0, 3.0];
        let y = [2.0, 4.0, 6.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let yneg = [6.0, 4.0, 2.0];
        assert!((pearson(&x, &yneg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_rejects_constant() {
        assert!(pearson(&[1.0, 1.0], &[2.0, 3.0]).is_err());
    }

    #[test]
    fn spearman_monotonic_nonlinear() {
        // y = x^3 is monotone, so Spearman must be exactly 1.
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|&v| v * v * v).collect();
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties() {
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [1.0, 2.0, 2.0, 3.0];
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranks_average_ties() {
        assert_eq!(ranks(&[10.0, 20.0, 20.0, 30.0]), vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(percentile(&xs, 100.0).unwrap(), 4.0);
        assert_eq!(percentile(&xs, 50.0).unwrap(), 2.5);
        assert!(percentile(&xs, 101.0).is_err());
        assert!(percentile(&[], 50.0).is_err());
    }

    #[test]
    fn running_stats_matches_batch() {
        let xs = [1.0, 4.0, 2.0, 8.0, 5.0];
        let mut rs = RunningStats::new();
        for &x in &xs {
            rs.push(x);
        }
        assert!((rs.mean() - mean(&xs)).abs() < 1e-12);
        assert!((rs.std_dev() - std_dev(&xs)).abs() < 1e-12);
        assert_eq!(rs.min(), 1.0);
        assert_eq!(rs.max(), 8.0);
        assert_eq!(rs.count(), 5);
    }

    #[test]
    fn empty_running_stats() {
        let rs = RunningStats::new();
        assert_eq!(rs.mean(), 0.0);
        assert_eq!(rs.std_dev(), 0.0);
        assert_eq!(rs.min(), 0.0);
        assert_eq!(rs.max(), 0.0);
    }

    #[test]
    fn ecdf_step_function() {
        let cdf = Ecdf::new(&[3.0, 1.0, 2.0]);
        assert_eq!(cdf.eval(0.5), 0.0);
        assert!((cdf.eval(1.0) - 1.0 / 3.0).abs() < 1e-12);
        assert!((cdf.eval(2.9) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(cdf.eval(3.0), 1.0);
        assert_eq!(cdf.quantile(0.0), Some(1.0));
        assert_eq!(cdf.quantile(1.0), Some(3.0));
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        for x in [0.5, 1.5, 2.5, 9.9, 10.0, -1.0] {
            h.push(x);
        }
        assert_eq!(h.counts(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.out_of_range(), (1, 1));
        assert_eq!(h.bin_center(0), 1.0);
        let p = h.probabilities();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_rejects_bad_params() {
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(1.0, 1.0, 4).is_err());
    }
}
