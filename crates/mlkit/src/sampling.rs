//! Class-imbalance mitigation strategies.
//!
//! The paper (§VI-B) surveys the standard remedies before proposing its
//! TwoStage filter: over-sampling the minority class (synthetically, as in
//! SMOTE), and under-sampling the majority class (randomly, or guided by
//! k-means clustering). All three are implemented here so the TwoStage
//! approach can be compared against them in ablation benches.

use crate::dataset::Dataset;
use crate::kmeans::kmeans;
use crate::matrix::Matrix;
use crate::{MlError, Result};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;

/// Randomly under-samples the majority (negative) class until the
/// negative:positive ratio is at most `max_ratio`.
///
/// # Errors
///
/// Returns [`MlError::InvalidParameter`] for a non-positive ratio and
/// [`MlError::SingleClass`] when a class is absent.
pub fn random_undersample(ds: &Dataset, max_ratio: f64, seed: u64) -> Result<Dataset> {
    if max_ratio <= 0.0 {
        return Err(MlError::InvalidParameter {
            name: "max_ratio",
            reason: format!("must be positive, got {max_ratio}"),
        });
    }
    let (pos, mut neg) = ds.class_indices();
    if pos.is_empty() || neg.is_empty() {
        return Err(MlError::SingleClass);
    }
    let keep_neg = ((pos.len() as f64 * max_ratio).round() as usize).clamp(1, neg.len());
    let mut rng = StdRng::seed_from_u64(seed);
    neg.shuffle(&mut rng);
    neg.truncate(keep_neg);
    let mut idx = pos;
    idx.extend_from_slice(&neg);
    idx.shuffle(&mut rng);
    Ok(ds.select(&idx))
}

/// Randomly over-samples the minority (positive) class *with replacement*
/// until the negative:positive ratio is at most `max_ratio`.
///
/// # Errors
///
/// Same conditions as [`random_undersample`].
pub fn random_oversample(ds: &Dataset, max_ratio: f64, seed: u64) -> Result<Dataset> {
    if max_ratio <= 0.0 {
        return Err(MlError::InvalidParameter {
            name: "max_ratio",
            reason: format!("must be positive, got {max_ratio}"),
        });
    }
    let (pos, neg) = ds.class_indices();
    if pos.is_empty() || neg.is_empty() {
        return Err(MlError::SingleClass);
    }
    let want_pos = ((neg.len() as f64 / max_ratio).ceil() as usize).max(pos.len());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut idx: Vec<usize> = neg;
    idx.extend_from_slice(&pos);
    for _ in pos.len()..want_pos {
        idx.push(pos[rng.gen_range(0..pos.len())]);
    }
    idx.shuffle(&mut rng);
    Ok(ds.select(&idx))
}

/// SMOTE: synthetic minority over-sampling (Chawla et al., the paper's
/// reference \[18\]).
///
/// For each synthetic sample, a random minority point is interpolated
/// toward one of its `k` nearest minority neighbours at a random fraction.
/// Generates enough synthetic positives to bring the negative:positive
/// ratio down to `max_ratio`.
///
/// # Errors
///
/// Returns [`MlError::SingleClass`] when a class is absent, and
/// [`MlError::InvalidParameter`] for bad `k`/`max_ratio`.
pub fn smote(ds: &Dataset, max_ratio: f64, k: usize, seed: u64) -> Result<Dataset> {
    if max_ratio <= 0.0 {
        return Err(MlError::InvalidParameter {
            name: "max_ratio",
            reason: format!("must be positive, got {max_ratio}"),
        });
    }
    if k == 0 {
        return Err(MlError::InvalidParameter {
            name: "k",
            reason: "must be > 0".into(),
        });
    }
    let (pos, neg) = ds.class_indices();
    if pos.is_empty() || neg.is_empty() {
        return Err(MlError::SingleClass);
    }
    let want_pos = (neg.len() as f64 / max_ratio).ceil() as usize;
    let n_synth = want_pos.saturating_sub(pos.len());
    if n_synth == 0 {
        return Ok(ds.clone());
    }

    // Pre-compute k nearest minority neighbours for each minority point.
    let k_eff = k.min(pos.len().saturating_sub(1)).max(1);
    let mut neighbours: Vec<Vec<usize>> = Vec::with_capacity(pos.len());
    for (a, &ia) in pos.iter().enumerate() {
        let mut d: Vec<(f32, usize)> = pos
            .iter()
            .enumerate()
            .filter(|&(b2, _)| b2 != a)
            .map(|(b2, &ib)| (crate::matrix::sq_dist(ds.x().row(ia), ds.x().row(ib)), b2))
            .collect();
        d.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap_or(std::cmp::Ordering::Equal));
        neighbours.push(d.into_iter().take(k_eff).map(|(_, b2)| b2).collect());
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let d = ds.n_features();
    let mut synth = Matrix::zeros(n_synth, d);
    for s in 0..n_synth {
        let a = rng.gen_range(0..pos.len());
        let nb_list = &neighbours[a];
        let b = if nb_list.is_empty() {
            a
        } else {
            nb_list[rng.gen_range(0..nb_list.len())]
        };
        let frac: f32 = rng.gen();
        let ra = ds.x().row(pos[a]);
        let rb = ds.x().row(pos[b]);
        let srow = synth.row_mut(s);
        for j in 0..d {
            srow[j] = ra[j] + frac * (rb[j] - ra[j]);
        }
    }
    let synth_ds =
        Dataset::new(synth, vec![1.0; n_synth])?.with_feature_names(ds.feature_names().to_vec())?;
    let mut out = ds.concat(&synth_ds)?;
    // Shuffle so downstream mini-batch training sees mixed classes.
    let mut idx: Vec<usize> = (0..out.len()).collect();
    idx.shuffle(&mut rng);
    out = out.select(&idx);
    Ok(out)
}

/// K-means-guided under-sampling (the paper's reference \[20\]): clusters the
/// majority class into `want_neg` clusters and keeps one representative
/// (the sample closest to each centroid), preserving the majority class's
/// diversity better than random dropping.
///
/// # Errors
///
/// Returns [`MlError::SingleClass`] when a class is absent and
/// [`MlError::InvalidParameter`] for a non-positive ratio.
pub fn kmeans_undersample(ds: &Dataset, max_ratio: f64, seed: u64) -> Result<Dataset> {
    if max_ratio <= 0.0 {
        return Err(MlError::InvalidParameter {
            name: "max_ratio",
            reason: format!("must be positive, got {max_ratio}"),
        });
    }
    let (pos, neg) = ds.class_indices();
    if pos.is_empty() || neg.is_empty() {
        return Err(MlError::SingleClass);
    }
    let want_neg = ((pos.len() as f64 * max_ratio).round() as usize).clamp(1, neg.len());
    if want_neg == neg.len() {
        return Ok(ds.clone());
    }
    let neg_x = ds.x().select_rows(&neg);
    let fit = kmeans(&neg_x, want_neg, 30, seed)?;
    // Pick the member closest to each centroid.
    let mut reps: Vec<usize> = Vec::with_capacity(want_neg);
    for c in 0..want_neg {
        let mut best: Option<(f32, usize)> = None;
        for (local, &global) in neg.iter().enumerate() {
            if fit.assignments[local] != c {
                continue;
            }
            let dd = crate::matrix::sq_dist(neg_x.row(local), fit.centroids.row(c));
            if best.is_none_or(|(bd, _)| dd < bd) {
                best = Some((dd, global));
            }
        }
        if let Some((_, g)) = best {
            reps.push(g);
        }
    }
    let mut idx = pos;
    idx.extend_from_slice(&reps);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9);
    idx.shuffle(&mut rng);
    Ok(ds.select(&idx))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 5 positives and 50 negatives.
    fn imbalanced() -> Dataset {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..5 {
            rows.push(vec![10.0 + i as f32 * 0.1, 10.0]);
            y.push(1.0);
        }
        for i in 0..50 {
            rows.push(vec![(i % 10) as f32, (i / 10) as f32]);
            y.push(0.0);
        }
        Dataset::from_rows(&rows, &y).unwrap()
    }

    #[test]
    fn undersample_hits_target_ratio() {
        let ds = imbalanced();
        let out = random_undersample(&ds, 2.0, 1).unwrap();
        assert_eq!(out.n_positive(), 5);
        assert_eq!(out.n_negative(), 10);
    }

    #[test]
    fn undersample_never_drops_positives() {
        let ds = imbalanced();
        let out = random_undersample(&ds, 0.5, 1).unwrap();
        assert_eq!(out.n_positive(), 5);
        assert!(out.n_negative() <= 3);
    }

    #[test]
    fn oversample_hits_target_ratio() {
        let ds = imbalanced();
        let out = random_oversample(&ds, 2.0, 1).unwrap();
        assert_eq!(out.n_negative(), 50);
        assert!(out.n_positive() >= 25);
    }

    #[test]
    fn smote_generates_interpolated_positives() {
        let ds = imbalanced();
        let out = smote(&ds, 2.0, 3, 1).unwrap();
        assert_eq!(out.n_negative(), 50);
        assert!(out.n_positive() >= 25);
        // Synthetic positives lie within the convex hull of the originals:
        // x0 in [10.0, 10.4], x1 == 10.0.
        for (i, row) in out.x().rows_iter().enumerate() {
            if out.y()[i] == 1.0 {
                assert!((10.0..=10.4).contains(&row[0]), "x0 {}", row[0]);
                assert!((row[1] - 10.0).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn smote_noop_when_ratio_met() {
        let ds = imbalanced();
        let out = smote(&ds, 100.0, 3, 1).unwrap();
        assert_eq!(out.len(), ds.len());
    }

    #[test]
    fn kmeans_undersample_hits_target_and_keeps_positives() {
        let ds = imbalanced();
        let out = kmeans_undersample(&ds, 2.0, 1).unwrap();
        assert_eq!(out.n_positive(), 5);
        assert!(out.n_negative() <= 10);
        assert!(out.n_negative() >= 5); // most clusters non-empty
    }

    #[test]
    fn all_reject_single_class() {
        let ds = Dataset::from_rows(&[vec![1.0], vec![2.0]], &[0.0, 0.0]).unwrap();
        assert!(random_undersample(&ds, 1.0, 1).is_err());
        assert!(random_oversample(&ds, 1.0, 1).is_err());
        assert!(smote(&ds, 1.0, 3, 1).is_err());
        assert!(kmeans_undersample(&ds, 1.0, 1).is_err());
    }

    #[test]
    fn all_reject_bad_ratio() {
        let ds = imbalanced();
        assert!(random_undersample(&ds, 0.0, 1).is_err());
        assert!(random_oversample(&ds, -1.0, 1).is_err());
        assert!(smote(&ds, 0.0, 3, 1).is_err());
        assert!(kmeans_undersample(&ds, 0.0, 1).is_err());
    }

    #[test]
    fn smote_rejects_zero_k() {
        let ds = imbalanced();
        assert!(smote(&ds, 2.0, 0, 1).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = imbalanced();
        let a = random_undersample(&ds, 2.0, 9).unwrap();
        let b = random_undersample(&ds, 2.0, 9).unwrap();
        assert_eq!(a.y(), b.y());
        assert_eq!(a.x().as_slice(), b.x().as_slice());
    }
}
