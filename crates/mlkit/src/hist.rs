//! Cache-blocked histogram training engine for [`crate::tree`].
//!
//! The reference split finder re-walks a node's index list once **per
//! feature** through indirect `grad[i]` / `binned.get(i, j)` accesses.
//! This module replaces that with a cache-friendly pipeline:
//!
//! 1. **Node scratch gather** ([`gather_node`]) — the node's gradients,
//!    hessians, and binned rows are packed into contiguous scratch once
//!    per node, so every later pass is a linear sweep.
//! 2. **Single-pass histogram build** ([`accumulate_all`] /
//!    [`accumulate_subset`]) — one sweep over the gathered rows fills
//!    *all* features' `(g, h, count)` histograms. Per-(feature, bin)
//!    accumulators are independent and see rows in index order, so the
//!    per-bin sums are **bit-identical** to the reference per-feature
//!    build.
//! 3. **Sibling subtraction** ([`derive_sibling`], [`TrainMode::Fast`]
//!    only) — only the smaller child's histograms are built from rows;
//!    the larger child's are derived as `parent − small`.
//! 4. **Row-block parallelism** ([`TrainMode::Fast`] only) — rows are
//!    cut into fixed [`ROW_BLOCK`]-sized blocks whose partial histograms
//!    are merged in block order, so results are bit-identical across
//!    `SBE_THREADS=1/2/8` (the block structure never depends on the
//!    thread count, only the dispatch does).
//! 5. **Reusable scratch arena** ([`TrainScratch`]) — slabs, partials,
//!    and gather buffers are allocated during the first tree (warm-up)
//!    and reused for every subsequent node and tree, so steady-state
//!    training is allocation-free.
//!
//! # Exactness contract
//!
//! * [`TrainMode::Reference`] is the pre-engine per-feature path, kept
//!   verbatim in `tree.rs`. It is the baseline for the training bench
//!   and the oracle for the differential suite.
//! * [`TrainMode::Exact`] (the default) uses the gather + single-pass
//!   build but keeps every floating-point accumulation in the same
//!   order as the reference path, so fitted trees are **bit-identical**
//!   to `Reference` — the pinned goldens do not move. When parallel,
//!   features are partitioned into groups; per-(feature, bin) sums are
//!   untouched by that partition, so the thread policy cannot change a
//!   single bit either.
//! * [`TrainMode::Fast`] adds sibling subtraction and row-block
//!   parallelism. Derived histograms and block-merged sums differ from
//!   directly-built ones in floating-point rounding, so `Fast` is *not*
//!   contractually bit-identical to `Exact`; it is locked instead by a
//!   differential suite (identical chosen splits on randomized
//!   ensembles, quality parity on the repro datasets) and is itself
//!   bit-identical across thread counts.

use crate::tree::{
    score, BinnedMatrix, BuildCtx, QuantileBinner, SplitCandidate, TreeParams, PAR_SPLIT_MIN_WORK,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

/// Fixed row-block size for [`TrainMode::Fast`] partial histograms.
///
/// Blocks are cut by row position, never by thread count, so the
/// partial-sum merge order — and therefore every output bit — is
/// independent of `SBE_THREADS`.
pub const ROW_BLOCK: usize = 2048;

/// Number of features handed to one parallel task when an
/// [`TrainMode::Exact`] histogram build fans out by feature group.
const FEATS_PER_GROUP: usize = 8;

/// Which split-finding engine [`crate::tree::RegressionTree`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TrainMode {
    /// Pre-engine per-feature scan. Kept as the bench baseline and the
    /// oracle for the differential suite.
    Reference,
    /// Gathered single-pass histogram build; bit-identical to
    /// `Reference` (default — goldens are pinned against this).
    #[default]
    Exact,
    /// `Exact` plus sibling subtraction and row-block parallelism;
    /// split-identical in practice, not contractually bit-identical.
    Fast,
}

/// One histogram slab: `(g, h, count)` for every (feature, bin) pair,
/// laid out feature-major with per-feature extents given by
/// [`TrainScratch`]'s offset table.
#[derive(Debug)]
struct HistSlab {
    g: Vec<f64>,
    h: Vec<f64>,
    c: Vec<u32>,
}

impl HistSlab {
    fn sized(total_bins: usize) -> HistSlab {
        HistSlab {
            g: vec![0.0; total_bins],
            h: vec![0.0; total_bins],
            c: vec![0; total_bins],
        }
    }

    /// Zeroes the slab in place without touching capacity.
    fn fill_zero(&mut self) {
        self.g.iter_mut().for_each(|v| *v = 0.0);
        self.h.iter_mut().for_each(|v| *v = 0.0);
        self.c.iter_mut().for_each(|v| *v = 0);
    }
}

/// Where a node's histogram lives when [`crate::tree`] recurses.
#[derive(Debug, Clone, Copy)]
pub(crate) enum NodeHist {
    /// No prebuilt histogram: build from rows on demand.
    Unbuilt,
    /// Histogram already resident in the scratch slab at this slot
    /// (built directly or derived by sibling subtraction).
    Ready(usize),
}

/// Reusable per-training-run scratch arena.
///
/// Create one per fitted binner with [`TrainScratch::for_binner`] and
/// reuse it across every tree of a boosting run: all growth happens
/// during the first tree (warm-up), after which node gathers, histogram
/// builds, and scans run entirely in place.
#[derive(Debug, Default)]
pub struct TrainScratch {
    /// Prefix sums of per-feature bin counts; `offsets[n_features]` is
    /// the slab length. Entry `(j, b)` of a slab lives at
    /// `offsets[j] + b`.
    offsets: Vec<u32>,
    /// Histogram slabs indexed by slot (`2 * depth + side` in `Fast`
    /// mode, always slot 0 in `Exact` mode), grown lazily.
    slabs: Vec<HistSlab>,
    /// Per-row-block partial histograms for the `Fast` build.
    partials: Vec<HistSlab>,
    /// Gathered per-node gradients (`grad[indices[r]]`).
    gather_g: Vec<f32>,
    /// Gathered per-node hessians.
    gather_h: Vec<f32>,
    /// Gathered row-major binned rows of the node.
    gather_rows: Vec<u8>,
    /// Sampled feature list in RNG (tie-break) order.
    features: Vec<usize>,
    /// Sampled feature list in ascending order (build locality).
    sorted_feats: Vec<usize>,
}

impl TrainScratch {
    /// Builds scratch sized for `binner`'s bin layout.
    pub fn for_binner(binner: &QuantileBinner) -> TrainScratch {
        let mut s = TrainScratch::default();
        s.sync_layout(binner);
        s
    }

    /// Re-syncs the offset table to `binner`, discarding slabs only when
    /// the layout actually changed. A no-op (and allocation-free) when
    /// the layout matches, which is every call after the first.
    pub fn sync_layout(&mut self, binner: &QuantileBinner) {
        let n = binner.n_features();
        let matches = self.offsets.len() == n + 1
            && (0..n).all(|j| {
                self.offsets[j + 1].wrapping_sub(self.offsets[j]) == binner.n_bins_for(j) as u32
            });
        if matches {
            return;
        }
        self.offsets.clear();
        self.offsets.reserve(n + 1);
        self.offsets.push(0);
        let mut acc = 0u32;
        for j in 0..n {
            acc += binner.n_bins_for(j) as u32;
            self.offsets.push(acc);
        }
        self.slabs.clear();
        self.partials.clear();
    }

    /// Slab length implied by the current offset table.
    fn total_bins(&self) -> usize {
        self.offsets.last().map_or(0, |&v| v as usize)
    }

    /// Grows the slab arena so `slot` exists (warm-up only).
    fn ensure_slab(&mut self, slot: usize) {
        let total = self.total_bins();
        while self.slabs.len() <= slot {
            self.slabs.push(HistSlab::sized(total));
        }
    }
}

/// Packs the node's gradients, hessians, and binned rows into
/// contiguous scratch, replacing `features × indices` indirect accesses
/// with one gather per node.
fn gather_node(
    binned: &BinnedMatrix,
    grad: &[f32],
    hess: &[f32],
    indices: &[usize],
    gg: &mut Vec<f32>,
    gh: &mut Vec<f32>,
    grows: &mut Vec<u8>,
) {
    let cols = binned.ncols();
    let n = indices.len();
    gg.resize(n, 0.0);
    gh.resize(n, 0.0);
    grows.resize(n * cols, 0);
    for ((&i, dst), (gslot, hslot)) in indices
        .iter()
        .zip(grows.chunks_exact_mut(cols))
        .zip(gg.iter_mut().zip(gh.iter_mut()))
    {
        dst.copy_from_slice(binned.binned_row(i));
        *gslot = grad[i];
        *hslot = hess[i];
    }
}

/// Single-pass histogram build over *all* features: one sweep over the
/// gathered rows, scattering into the slab at `offsets[j] + bin`.
///
/// Per-(feature, bin) accumulators are disjoint and see rows in gather
/// (= index) order, so the per-bin sums are bit-identical to the
/// reference per-feature build over the same rows.
fn accumulate_all(
    rows: &[u8],
    cols: usize,
    gg: &[f32],
    gh: &[f32],
    offsets: &[u32],
    slab: &mut HistSlab,
) {
    for (row, (&g, &h)) in rows.chunks_exact(cols).zip(gg.iter().zip(gh.iter())) {
        let (g, h) = (g as f64, h as f64);
        for (&b, &off) in row.iter().zip(offsets.iter()) {
            let k = off as usize + b as usize;
            slab.g[k] += g;
            slab.h[k] += h;
            slab.c[k] += 1;
        }
    }
}

/// Like [`accumulate_all`] but touching only the sampled features in
/// `feats` (the `Exact`-mode build under column subsampling).
fn accumulate_subset(
    rows: &[u8],
    cols: usize,
    gg: &[f32],
    gh: &[f32],
    feats: &[usize],
    offsets: &[u32],
    slab: &mut HistSlab,
) {
    for (row, (&g, &h)) in rows.chunks_exact(cols).zip(gg.iter().zip(gh.iter())) {
        let (g, h) = (g as f64, h as f64);
        for &j in feats {
            let k = offsets[j] as usize + row[j] as usize;
            slab.g[k] += g;
            slab.h[k] += h;
            slab.c[k] += 1;
        }
    }
}

/// Feature-group variant of [`accumulate_subset`] writing into a slab
/// *sub-slice* starting at slab position `base` — the unit of work for
/// the `Exact`-mode parallel build. Identical adds in identical row
/// order as the serial build, just restricted to one group's columns.
#[allow(clippy::too_many_arguments)]
fn accumulate_group(
    rows: &[u8],
    cols: usize,
    gg: &[f32],
    gh: &[f32],
    feats: &[usize],
    offsets: &[u32],
    base: usize,
    g_out: &mut [f64],
    h_out: &mut [f64],
    c_out: &mut [u32],
) {
    for (row, (&g, &h)) in rows.chunks_exact(cols).zip(gg.iter().zip(gh.iter())) {
        let (g, h) = (g as f64, h as f64);
        for &j in feats {
            let k = offsets[j] as usize - base + row[j] as usize;
            g_out[k] += g;
            h_out[k] += h;
            c_out[k] += 1;
        }
    }
}

/// Adds per-block partial histograms into `slab` in block order —
/// parkit-style fixed-order merge, so the result is independent of
/// which thread filled which partial.
fn merge_partials(parts: &[HistSlab], slab: &mut HistSlab) {
    for p in parts {
        for (dst, &src) in slab.g.iter_mut().zip(p.g.iter()) {
            *dst += src;
        }
        for (dst, &src) in slab.h.iter_mut().zip(p.h.iter()) {
            *dst += src;
        }
        for (dst, &src) in slab.c.iter_mut().zip(p.c.iter()) {
            *dst += src;
        }
    }
}

/// Sibling subtraction: `out = parent − small`, per (feature, bin).
/// Counts are exact integers; gradient/hessian sums inherit one
/// subtraction's rounding, which is why this lives behind
/// [`TrainMode::Fast`].
fn derive_sibling(parent: &HistSlab, small: &HistSlab, out: &mut HistSlab) {
    for ((dst, &p), &s) in out.g.iter_mut().zip(parent.g.iter()).zip(small.g.iter()) {
        *dst = p - s;
    }
    for ((dst, &p), &s) in out.h.iter_mut().zip(parent.h.iter()).zip(small.h.iter()) {
        *dst = p - s;
    }
    for ((dst, &p), &s) in out.c.iter_mut().zip(parent.c.iter()).zip(small.c.iter()) {
        *dst = p.saturating_sub(s);
    }
}

/// Scans the sampled features' histograms for the best cut point.
///
/// Features are visited in `feats` (RNG) order and bins left to right
/// under the strict `gain >` rule, so the kept candidate is the first
/// occurrence of the maximum gain in (feature-position, bin) order —
/// exactly the candidate the reference per-feature scan + feature-order
/// reduce keeps, ties included.
#[allow(clippy::too_many_arguments)]
fn scan_features(
    slab: &HistSlab,
    offsets: &[u32],
    feats: &[usize],
    n_rows: usize,
    g_total: f64,
    h_total: f64,
    parent_score: f64,
    params: &TreeParams,
) -> Option<SplitCandidate> {
    let mut best: Option<SplitCandidate> = None;
    for &j in feats {
        let lo = offsets[j] as usize;
        let hi = offsets[j + 1] as usize;
        let nb = hi - lo;
        if nb < 2 {
            continue;
        }
        let hg = &slab.g[lo..hi];
        let hh = &slab.h[lo..hi];
        let hc = &slab.c[lo..hi];
        let mut gl = 0.0f64;
        let mut hl = 0.0f64;
        let mut cl = 0u32;
        for (b, ((&g, &h), &c)) in hg
            .iter()
            .zip(hh.iter())
            .zip(hc.iter())
            .take(nb - 1)
            .enumerate()
        {
            gl += g;
            hl += h;
            cl += c;
            let cr = n_rows as u32 - cl;
            if (cl as usize) < params.min_samples_leaf || (cr as usize) < params.min_samples_leaf {
                continue;
            }
            let gr = g_total - gl;
            let hr = h_total - hl;
            let gain = score(gl, hl, params.lambda) + score(gr, hr, params.lambda) - parent_score;
            if gain > params.min_gain && best.as_ref().is_none_or(|b2| gain > b2.gain) {
                best = Some(SplitCandidate {
                    feature: j,
                    bin: (b + 1) as u8,
                    gain,
                });
            }
        }
    }
    best
}

/// `Fast`-mode build over all features with fixed row blocks.
///
/// Nodes at or under [`ROW_BLOCK`] rows accumulate directly; larger
/// nodes always go through per-block partials merged in block order,
/// serial and parallel alike, so the summation tree — and every output
/// bit — is a function of the row count only, never of `SBE_THREADS`.
#[allow(clippy::too_many_arguments)]
fn build_hist_all(
    threads: parkit::Threads,
    rows: &[u8],
    cols: usize,
    gg: &[f32],
    gh: &[f32],
    offsets: &[u32],
    partials: &mut Vec<HistSlab>,
    slab: &mut HistSlab,
) {
    slab.fill_zero();
    let n = gg.len();
    if n <= ROW_BLOCK {
        accumulate_all(rows, cols, gg, gh, offsets, slab);
        return;
    }
    let n_blocks = n.div_ceil(ROW_BLOCK);
    let total = slab.g.len();
    while partials.len() < n_blocks {
        // Warm-up only: the arena retains its high-water mark across
        // nodes and trees.
        partials.push(HistSlab::sized(total));
    }
    let fill = |blk: usize, part: &mut HistSlab| {
        part.fill_zero();
        let r0 = blk * ROW_BLOCK;
        let r1 = (r0 + ROW_BLOCK).min(n);
        accumulate_all(
            &rows[r0 * cols..r1 * cols],
            cols,
            &gg[r0..r1],
            &gh[r0..r1],
            offsets,
            part,
        );
    };
    if threads.is_serial() || n * cols < PAR_SPLIT_MIN_WORK {
        for (blk, part) in partials[..n_blocks].iter_mut().enumerate() {
            fill(blk, part);
        }
    } else {
        parkit::par_apply_chunks(threads, &mut partials[..n_blocks], |offset, chunk| {
            for (k, part) in chunk.iter_mut().enumerate() {
                fill(offset + k, part);
            }
        });
    }
    merge_partials(&partials[..n_blocks], slab);
}

/// `Exact`-mode build over the sampled features.
///
/// Serial small nodes take one [`accumulate_subset`] sweep; large nodes
/// under a parallel policy fan out by *feature group*, which leaves
/// every per-(feature, bin) accumulation order untouched — both paths
/// are bit-identical to each other and to the reference build.
#[allow(clippy::too_many_arguments)]
fn build_hist_subset(
    threads: parkit::Threads,
    rows: &[u8],
    cols: usize,
    gg: &[f32],
    gh: &[f32],
    offsets: &[u32],
    feats_sorted: &[usize],
    slab: &mut HistSlab,
) {
    slab.fill_zero();
    let n = gg.len();
    if threads.is_serial()
        || n * feats_sorted.len() < PAR_SPLIT_MIN_WORK
        || feats_sorted.len() <= FEATS_PER_GROUP
    {
        accumulate_subset(rows, cols, gg, gh, feats_sorted, offsets, slab);
        return;
    }
    struct GroupTask<'a> {
        feats: &'a [usize],
        base: usize,
        g: &'a mut [f64],
        h: &'a mut [f64],
        c: &'a mut [u32],
    }
    // Slice the slab into disjoint per-group windows by walking the
    // (ascending) sampled features in chunks.
    let mut rem_g: &mut [f64] = slab.g.as_mut_slice();
    let mut rem_h: &mut [f64] = slab.h.as_mut_slice();
    let mut rem_c: &mut [u32] = slab.c.as_mut_slice();
    let mut consumed = 0usize;
    let mut tasks: Vec<GroupTask<'_>> =
        Vec::with_capacity(feats_sorted.len().div_ceil(FEATS_PER_GROUP));
    for chunk in feats_sorted.chunks(FEATS_PER_GROUP) {
        let lo = offsets[chunk[0]] as usize;
        let hi = offsets[chunk[chunk.len() - 1] + 1] as usize;
        let skip = lo - consumed;
        rem_g = std::mem::take(&mut rem_g).split_at_mut(skip).1;
        rem_h = std::mem::take(&mut rem_h).split_at_mut(skip).1;
        rem_c = std::mem::take(&mut rem_c).split_at_mut(skip).1;
        let (tg, rg) = std::mem::take(&mut rem_g).split_at_mut(hi - lo);
        let (th, rh) = std::mem::take(&mut rem_h).split_at_mut(hi - lo);
        let (tc, rc) = std::mem::take(&mut rem_c).split_at_mut(hi - lo);
        rem_g = rg;
        rem_h = rh;
        rem_c = rc;
        consumed = hi;
        tasks.push(GroupTask {
            feats: chunk,
            base: lo,
            g: tg,
            h: th,
            c: tc,
        });
    }
    parkit::par_apply_chunks(threads, &mut tasks, |_, tchunk| {
        for t in tchunk.iter_mut() {
            accumulate_group(rows, cols, gg, gh, t.feats, offsets, t.base, t.g, t.h, t.c);
        }
    });
}

/// Histogram-engine split finder: gathers the node (when its histogram
/// is not already resident), builds the histograms in one pass, and
/// scans the sampled features. Returns the candidate, the scanned
/// cut-point count, and the slab slot holding this node's histogram.
///
/// The RNG interaction (shuffle iff `colsample < 1.0`) is identical to
/// the reference path, so both engines consume the same random stream.
#[allow(clippy::too_many_arguments)]
pub(crate) fn find_best_split_hist(
    ctx: &BuildCtx<'_>,
    indices: &[usize],
    g_total: f64,
    h_total: f64,
    rng: &mut StdRng,
    scratch: &mut TrainScratch,
    hist: NodeHist,
    depth: usize,
) -> (Option<SplitCandidate>, u64, usize) {
    let n_features = ctx.binned.ncols();
    let params = &ctx.params;
    scratch.features.clear();
    scratch.features.extend(0..n_features);
    if params.colsample < 1.0 {
        let keep = ((n_features as f64 * params.colsample).ceil() as usize).max(1);
        scratch.features.shuffle(rng);
        scratch.features.truncate(keep);
    }
    let scanned: u64 = scratch
        .features
        .iter()
        .map(|&j| ctx.binner.n_bins_for(j).saturating_sub(1) as u64)
        .sum();
    let parent_score = score(g_total, h_total, params.lambda);

    let (slot, need_build) = match hist {
        NodeHist::Ready(s) => (s, false),
        NodeHist::Unbuilt => {
            let s = if params.mode == TrainMode::Fast {
                2 * depth
            } else {
                0
            };
            (s, true)
        }
    };
    scratch.ensure_slab(slot);
    let TrainScratch {
        offsets,
        slabs,
        partials,
        gather_g,
        gather_h,
        gather_rows,
        features,
        sorted_feats,
    } = scratch;
    let Some(slab) = slabs.get_mut(slot) else {
        return (None, scanned, slot);
    };
    if need_build {
        gather_node(
            ctx.binned,
            ctx.grad,
            ctx.hess,
            indices,
            gather_g,
            gather_h,
            gather_rows,
        );
        let cols = ctx.binned.ncols();
        if params.mode == TrainMode::Fast {
            build_hist_all(
                params.threads,
                gather_rows,
                cols,
                gather_g,
                gather_h,
                offsets,
                partials,
                slab,
            );
        } else {
            sorted_feats.clear();
            sorted_feats.extend_from_slice(features);
            sorted_feats.sort_unstable();
            build_hist_subset(
                params.threads,
                gather_rows,
                cols,
                gather_g,
                gather_h,
                offsets,
                sorted_feats,
                slab,
            );
        }
    }
    let best = scan_features(
        slab,
        offsets,
        features,
        indices.len(),
        g_total,
        h_total,
        parent_score,
        params,
    );
    (best, scanned, slot)
}

/// `Fast`-mode child preparation: after a split partitions the node,
/// build only the *smaller* child's histogram from rows and derive the
/// larger child's by sibling subtraction from the parent's slab.
///
/// Slot discipline: the parent occupies `2·depth` or `2·depth + 1`; the
/// children take `2·(depth + 1)` (small) and `2·(depth + 1) + 1`
/// (large). A node's subtree only ever writes slots at depths ≥ two
/// below it, so the right sibling's slab survives the whole left-side
/// recursion — this is what makes one slab pair per depth sufficient.
pub(crate) fn prepare_children(
    ctx: &BuildCtx<'_>,
    scratch: &mut TrainScratch,
    parent_slot: usize,
    depth: usize,
    left: &[usize],
    right: &[usize],
) -> (NodeHist, NodeHist) {
    let params = &ctx.params;
    let child_depth = depth + 1;
    let needs =
        |n: usize| child_depth < params.max_depth && n >= 2 * params.min_samples_leaf && n >= 2;
    let need_l = needs(left.len());
    let need_r = needs(right.len());
    if !need_l && !need_r {
        return (NodeHist::Unbuilt, NodeHist::Unbuilt);
    }
    let small_is_left = left.len() <= right.len();
    let small = if small_is_left { left } else { right };
    let small_slot = 2 * child_depth;
    let large_slot = small_slot + 1;
    scratch.ensure_slab(large_slot);
    let TrainScratch {
        offsets,
        slabs,
        partials,
        gather_g,
        gather_h,
        gather_rows,
        ..
    } = scratch;
    let (head, tail) = slabs.split_at_mut(small_slot);
    let (Some(parent), Some((small_slab, tail2))) = (head.get(parent_slot), tail.split_first_mut())
    else {
        return (NodeHist::Unbuilt, NodeHist::Unbuilt);
    };
    let Some((large_slab, _)) = tail2.split_first_mut() else {
        return (NodeHist::Unbuilt, NodeHist::Unbuilt);
    };
    let cols = ctx.binned.ncols();
    gather_node(
        ctx.binned,
        ctx.grad,
        ctx.hess,
        small,
        gather_g,
        gather_h,
        gather_rows,
    );
    build_hist_all(
        params.threads,
        gather_rows,
        cols,
        gather_g,
        gather_h,
        offsets,
        partials,
        small_slab,
    );
    let need_large = if small_is_left { need_r } else { need_l };
    if need_large {
        derive_sibling(parent, small_slab, large_slab);
    }
    let small_hist = NodeHist::Ready(small_slot);
    let large_hist = if need_large {
        NodeHist::Ready(large_slot)
    } else {
        NodeHist::Unbuilt
    };
    if small_is_left {
        (small_hist, large_hist)
    } else {
        (large_hist, small_hist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use rand::Rng;
    use rand::SeedableRng;

    fn random_node(
        seed: u64,
        n_rows: usize,
        n_feats: usize,
        n_bins: usize,
    ) -> (BinnedMatrix, QuantileBinner, Vec<f32>, Vec<f32>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f32>> = (0..n_rows)
            .map(|_| (0..n_feats).map(|_| rng.gen::<f32>() * 4.0 - 2.0).collect())
            .collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let binner = QuantileBinner::fit(&x, n_bins).unwrap();
        let binned = binner.transform(&x).unwrap();
        let grad: Vec<f32> = (0..n_rows).map(|_| rng.gen::<f32>() - 0.5).collect();
        let hess: Vec<f32> = (0..n_rows)
            .map(|_| rng.gen::<f32>() * 0.25 + 1e-3)
            .collect();
        // A strict subset of rows, shuffled, to model a real node.
        let mut idx: Vec<usize> = (0..n_rows).collect();
        idx.shuffle(&mut rng);
        idx.truncate(n_rows * 3 / 4);
        (binned, binner, grad, hess, idx)
    }

    /// Reference per-feature histogram, lifted straight from the old
    /// `best_split_for_feature` accumulation loop.
    fn reference_feature_hist(
        binned: &BinnedMatrix,
        grad: &[f32],
        hess: &[f32],
        indices: &[usize],
        j: usize,
    ) -> (Vec<f64>, Vec<f64>, Vec<u32>) {
        let mut hg = vec![0.0f64; crate::tree::MAX_BINS];
        let mut hh = vec![0.0f64; crate::tree::MAX_BINS];
        let mut hc = vec![0u32; crate::tree::MAX_BINS];
        for &i in indices {
            let b = binned.get(i, j) as usize;
            hg[b] += grad[i] as f64;
            hh[b] += hess[i] as f64;
            hc[b] += 1;
        }
        (hg, hh, hc)
    }

    #[test]
    fn single_pass_build_bit_equal_to_per_feature_build() {
        for seed in [1u64, 7, 42] {
            let (binned, binner, grad, hess, idx) = random_node(seed, 500, 9, 16);
            let mut scratch = TrainScratch::for_binner(&binner);
            gather_node(
                &binned,
                &grad,
                &hess,
                &idx,
                &mut scratch.gather_g,
                &mut scratch.gather_h,
                &mut scratch.gather_rows,
            );
            scratch.ensure_slab(0);
            let total = scratch.total_bins();
            let mut slab = HistSlab::sized(total);
            accumulate_all(
                &scratch.gather_rows,
                binned.ncols(),
                &scratch.gather_g,
                &scratch.gather_h,
                &scratch.offsets,
                &mut slab,
            );
            for j in 0..binned.ncols() {
                let (hg, hh, hc) = reference_feature_hist(&binned, &grad, &hess, &idx, j);
                let lo = scratch.offsets[j] as usize;
                let nb = binner.n_bins_for(j);
                for b in 0..nb {
                    assert_eq!(
                        slab.g[lo + b].to_bits(),
                        hg[b].to_bits(),
                        "g mismatch seed={seed} j={j} b={b}"
                    );
                    assert_eq!(
                        slab.h[lo + b].to_bits(),
                        hh[b].to_bits(),
                        "h mismatch seed={seed} j={j} b={b}"
                    );
                    assert_eq!(
                        slab.c[lo + b],
                        hc[b],
                        "count mismatch seed={seed} j={j} b={b}"
                    );
                }
            }
        }
    }

    #[test]
    fn subset_build_matches_full_build_on_sampled_features() {
        let (binned, binner, grad, hess, idx) = random_node(3, 400, 8, 12);
        let mut scratch = TrainScratch::for_binner(&binner);
        gather_node(
            &binned,
            &grad,
            &hess,
            &idx,
            &mut scratch.gather_g,
            &mut scratch.gather_h,
            &mut scratch.gather_rows,
        );
        let total = scratch.total_bins();
        let mut full = HistSlab::sized(total);
        accumulate_all(
            &scratch.gather_rows,
            binned.ncols(),
            &scratch.gather_g,
            &scratch.gather_h,
            &scratch.offsets,
            &mut full,
        );
        let feats = vec![1usize, 4, 6];
        let mut sub = HistSlab::sized(total);
        accumulate_subset(
            &scratch.gather_rows,
            binned.ncols(),
            &scratch.gather_g,
            &scratch.gather_h,
            &feats,
            &scratch.offsets,
            &mut sub,
        );
        for &j in &feats {
            let lo = scratch.offsets[j] as usize;
            let hi = scratch.offsets[j + 1] as usize;
            assert_eq!(
                sub.g[lo..hi]
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                full.g[lo..hi]
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>()
            );
            assert_eq!(&sub.c[lo..hi], &full.c[lo..hi]);
        }
    }

    #[test]
    fn blocked_build_is_thread_invariant() {
        // > ROW_BLOCK rows so the partial-merge path engages; the block
        // structure (and thus every bit) must not depend on the policy.
        let (binned, binner, grad, hess, _) = random_node(11, 3 * ROW_BLOCK + 37, 6, 16);
        let idx: Vec<usize> = (0..binned.nrows()).collect();
        let mut scratch = TrainScratch::for_binner(&binner);
        gather_node(
            &binned,
            &grad,
            &hess,
            &idx,
            &mut scratch.gather_g,
            &mut scratch.gather_h,
            &mut scratch.gather_rows,
        );
        let total = scratch.total_bins();
        let mut out: Vec<Vec<u64>> = Vec::new();
        for threads in [
            parkit::Threads::Serial,
            parkit::Threads::Fixed(2),
            parkit::Threads::Fixed(8),
        ] {
            let mut slab = HistSlab::sized(total);
            let mut partials = Vec::new();
            build_hist_all(
                threads,
                &scratch.gather_rows,
                binned.ncols(),
                &scratch.gather_g,
                &scratch.gather_h,
                &scratch.offsets,
                &mut partials,
                &mut slab,
            );
            let mut bits: Vec<u64> = slab.g.iter().map(|v| v.to_bits()).collect();
            bits.extend(slab.h.iter().map(|v| v.to_bits()));
            bits.extend(slab.c.iter().map(|&v| v as u64));
            out.push(bits);
        }
        assert_eq!(out[0], out[1]);
        assert_eq!(out[0], out[2]);
    }

    #[test]
    fn derive_sibling_counts_are_exact() {
        let (binned, binner, grad, hess, idx) = random_node(19, 600, 5, 10);
        let mut scratch = TrainScratch::for_binner(&binner);
        let total = scratch.total_bins();
        let (left, right) = idx.split_at(idx.len() / 3);
        let build = |rows: &[usize], scratch: &mut TrainScratch| {
            gather_node(
                &binned,
                &grad,
                &hess,
                rows,
                &mut scratch.gather_g,
                &mut scratch.gather_h,
                &mut scratch.gather_rows,
            );
            let mut slab = HistSlab::sized(total);
            accumulate_all(
                &scratch.gather_rows,
                binned.ncols(),
                &scratch.gather_g,
                &scratch.gather_h,
                &scratch.offsets,
                &mut slab,
            );
            slab
        };
        let parent = build(&idx, &mut scratch);
        let small = build(left, &mut scratch);
        let direct_large = build(right, &mut scratch);
        let mut derived = HistSlab::sized(total);
        derive_sibling(&parent, &small, &mut derived);
        // Counts are exact; g/h agree to f64 rounding of one subtraction.
        assert_eq!(derived.c, direct_large.c);
        for (d, e) in derived.g.iter().zip(direct_large.g.iter()) {
            assert!((d - e).abs() <= 1e-9 * (1.0 + e.abs()), "{d} vs {e}");
        }
    }

    #[test]
    fn scratch_layout_sync_is_stable() {
        let (_, binner, _, _, _) = random_node(23, 50, 4, 8);
        let mut scratch = TrainScratch::for_binner(&binner);
        scratch.ensure_slab(3);
        let slabs_before = scratch.slabs.len();
        scratch.sync_layout(&binner); // matching layout: a no-op
        assert_eq!(scratch.slabs.len(), slabs_before);
        let (_, other, _, _, _) = random_node(29, 50, 6, 8);
        scratch.sync_layout(&other); // layout changed: slabs discarded
        assert!(scratch.slabs.is_empty());
        assert_eq!(scratch.offsets.len(), 7);
    }
}
