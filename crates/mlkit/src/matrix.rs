//! A minimal dense, row-major `f32` matrix.
//!
//! Supports exactly the operations the rest of the crate needs: row/column
//! access, matrix-vector and matrix-matrix products, transpose, and
//! element-wise maps. Everything is bounds-checked at the API surface and
//! designed for clarity over absolute peak throughput.

use crate::{MlError, Result};
use serde::{Deserialize, Serialize};

/// Dense row-major matrix of `f32` values.
///
/// # Example
///
/// ```
/// use mlkit::matrix::Matrix;
///
/// let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]])?;
/// assert_eq!(m.shape(), (2, 2));
/// assert_eq!(m.get(1, 0), 3.0);
/// # Ok::<(), mlkit::MlError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Matrix> {
        if data.len() != rows * cols {
            return Err(MlError::DimensionMismatch {
                expected: format!("{} elements ({rows}x{cols})", rows * cols),
                found: format!("{} elements", data.len()),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::EmptyDataset`] when `rows` is empty and
    /// [`MlError::DimensionMismatch`] when rows are ragged.
    pub fn from_rows(rows: &[Vec<f32>]) -> Result<Matrix> {
        let nrows = rows.len();
        if nrows == 0 {
            return Err(MlError::EmptyDataset);
        }
        let ncols = rows[0].len();
        let mut data = Vec::with_capacity(nrows * ncols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != ncols {
                return Err(MlError::DimensionMismatch {
                    expected: format!("{ncols} columns"),
                    found: format!("{} columns in row {i}", r.len()),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `c` is out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `c` is out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row index out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row index out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    pub fn col(&self, c: usize) -> Vec<f32> {
        assert!(c < self.cols, "column index out of bounds");
        (0..self.rows)
            .map(|r| self.data[r * self.cols + c])
            .collect()
    }

    /// Iterates over rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// The underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Consumes the matrix and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] when `v.len() != ncols`.
    pub fn matvec(&self, v: &[f32]) -> Result<Vec<f32>> {
        if v.len() != self.cols {
            return Err(MlError::DimensionMismatch {
                expected: format!("vector of length {}", self.cols),
                found: format!("length {}", v.len()),
            });
        }
        let mut out = vec![0.0f32; self.rows];
        for (r, out_r) in out.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let mut acc = 0.0f32;
            for (a, b) in row.iter().zip(v) {
                acc += a * b;
            }
            *out_r = acc;
        }
        Ok(out)
    }

    /// Matrix product `self * other`.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] when inner dimensions differ.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(MlError::DimensionMismatch {
                expected: format!("{} rows", self.cols),
                found: format!("{} rows", other.rows),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let orow = &other.data[k * other.cols..(k + 1) * other.cols];
                let crow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (cv, ov) in crow.iter_mut().zip(orow) {
                    *cv += a * ov;
                }
            }
        }
        Ok(out)
    }

    /// Returns the transpose of `self`.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Selects the given rows into a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Matrix {
            rows: indices.len(),
            cols: self.cols,
            data,
        }
    }

    /// Selects the given columns into a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_cols(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.rows);
        for r in 0..self.rows {
            let row = self.row(r);
            for &c in indices {
                assert!(c < self.cols, "column index out of bounds");
                data.push(row[c]);
            }
        }
        Matrix {
            rows: self.rows,
            cols: indices.len(),
            data,
        }
    }

    /// Vertically stacks `self` on top of `other`.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] when column counts differ.
    pub fn vstack(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.cols {
            return Err(MlError::DimensionMismatch {
                expected: format!("{} columns", self.cols),
                found: format!("{} columns", other.cols),
            });
        }
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Ok(Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        })
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot product length mismatch");
    let mut acc = 0.0f32;
    for (x, y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}

/// Squared Euclidean distance between two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "distance length mismatch");
    let mut acc = 0.0f32;
    for (x, y) in a.iter().zip(b) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_correct_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(matches!(
            Matrix::from_vec(2, 2, vec![1.0; 3]),
            Err(MlError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]);
        assert!(matches!(err, Err(MlError::DimensionMismatch { .. })));
        assert!(matches!(Matrix::from_rows(&[]), Err(MlError::EmptyDataset)));
    }

    #[test]
    fn get_set_row_col() {
        let mut m = Matrix::zeros(2, 3);
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
        assert_eq!(m.col(2), vec![0.0, 5.0]);
    }

    #[test]
    fn matvec_works() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert!(m.matvec(&[1.0]).is_err());
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn matmul_rejects_mismatched_inner_dims() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 2);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn select_rows_and_cols() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let s = a.select_rows(&[2, 0]);
        assert_eq!(s.row(0), &[5.0, 6.0]);
        assert_eq!(s.row(1), &[1.0, 2.0]);
        let c = a.select_cols(&[1]);
        assert_eq!(c.shape(), (3, 1));
        assert_eq!(c.col(0), vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn vstack_appends_rows() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let v = a.vstack(&b).unwrap();
        assert_eq!(v.shape(), (3, 2));
        assert_eq!(v.row(2), &[5.0, 6.0]);
        let bad = Matrix::zeros(1, 3);
        assert!(a.vstack(&bad).is_err());
    }

    #[test]
    fn dot_and_sq_dist() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    fn map_applies_elementwise() {
        let a = Matrix::from_rows(&[vec![1.0, -2.0]]).unwrap();
        let b = a.map(f32::abs);
        assert_eq!(b.row(0), &[1.0, 2.0]);
    }
}
