//! Multi-layer perceptron (the paper's "NN" model).
//!
//! A fully connected feed-forward network with ReLU hidden activations and
//! a sigmoid output, trained with mini-batch Adam on the logistic loss.

use crate::dataset::Dataset;
use crate::linear::sigmoid;
use crate::model::Classifier;
use crate::{MlError, Result};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// One dense layer's parameters and Adam state.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Layer {
    in_dim: usize,
    out_dim: usize,
    // Row-major `out_dim x in_dim` weights.
    w: Vec<f32>,
    b: Vec<f32>,
    // Adam moments.
    mw: Vec<f32>,
    vw: Vec<f32>,
    mb: Vec<f32>,
    vb: Vec<f32>,
}

impl Layer {
    fn new(in_dim: usize, out_dim: usize, rng: &mut StdRng) -> Layer {
        // He initialisation for ReLU layers.
        let scale = (2.0 / in_dim as f32).sqrt();
        let w = (0..in_dim * out_dim)
            .map(|_| (rng.gen::<f32>() * 2.0 - 1.0) * scale)
            .collect();
        Layer {
            in_dim,
            out_dim,
            w,
            b: vec![0.0; out_dim],
            mw: vec![0.0; in_dim * out_dim],
            vw: vec![0.0; in_dim * out_dim],
            mb: vec![0.0; out_dim],
            vb: vec![0.0; out_dim],
        }
    }

    /// `out = W x + b`
    fn forward(&self, x: &[f32], out: &mut Vec<f32>) {
        out.clear();
        for o in 0..self.out_dim {
            let row = &self.w[o * self.in_dim..(o + 1) * self.in_dim];
            let mut acc = self.b[o];
            for (wv, xv) in row.iter().zip(x) {
                acc += wv * xv;
            }
            out.push(acc);
        }
    }
}

/// MLP binary classifier.
///
/// # Example
///
/// ```
/// use mlkit::dataset::Dataset;
/// use mlkit::model::Classifier;
/// use mlkit::nn::MlpClassifier;
///
/// let rows: Vec<Vec<f32>> = (0..40).map(|i| vec![i as f32 / 40.0]).collect();
/// let y: Vec<f32> = rows.iter().map(|r| if r[0] > 0.5 { 1.0 } else { 0.0 }).collect();
/// let ds = Dataset::from_rows(&rows, &y)?;
/// let mut nn = MlpClassifier::new().hidden_layers(&[8]).epochs(200);
/// nn.fit(&ds)?;
/// assert!(nn.predict_proba(&ds)?[0] < 0.5);
/// assert!(nn.predict_proba(&ds)?[39] > 0.5);
/// # Ok::<(), mlkit::MlError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MlpClassifier {
    hidden: Vec<usize>,
    learning_rate: f32,
    epochs: usize,
    batch_size: usize,
    l2: f32,
    pos_weight: f32,
    seed: u64,
    layers: Vec<Layer>,
    n_features: usize,
    adam_t: u64,
}

impl Default for MlpClassifier {
    fn default() -> MlpClassifier {
        MlpClassifier::new()
    }
}

impl MlpClassifier {
    /// Creates an MLP with one hidden layer of 32 units, Adam lr 1e-3,
    /// 50 epochs, batch 64.
    pub fn new() -> MlpClassifier {
        MlpClassifier {
            hidden: vec![32],
            learning_rate: 1e-3,
            epochs: 50,
            batch_size: 64,
            l2: 1e-5,
            pos_weight: 1.0,
            seed: 42,
            layers: Vec::new(),
            n_features: 0,
            adam_t: 0,
        }
    }

    /// Sets hidden-layer sizes (one entry per layer).
    pub fn hidden_layers(mut self, sizes: &[usize]) -> MlpClassifier {
        self.hidden = sizes.to_vec();
        self
    }

    /// Sets the Adam learning rate.
    pub fn learning_rate(mut self, lr: f32) -> MlpClassifier {
        self.learning_rate = lr;
        self
    }

    /// Sets the number of epochs.
    pub fn epochs(mut self, e: usize) -> MlpClassifier {
        self.epochs = e.max(1);
        self
    }

    /// Sets the mini-batch size.
    pub fn batch_size(mut self, b: usize) -> MlpClassifier {
        self.batch_size = b.max(1);
        self
    }

    /// Sets the L2 weight decay.
    pub fn l2(mut self, l2: f32) -> MlpClassifier {
        self.l2 = l2;
        self
    }

    /// Sets the loss weight multiplier for positive samples.
    pub fn pos_weight(mut self, w: f32) -> MlpClassifier {
        self.pos_weight = w;
        self
    }

    /// Sets the RNG seed (init, shuffling).
    pub fn seed(mut self, seed: u64) -> MlpClassifier {
        self.seed = seed;
        self
    }

    /// Forward pass; returns per-layer activations (input first) and the
    /// output logit.
    fn forward(&self, x: &[f32]) -> (Vec<Vec<f32>>, f32) {
        let mut acts: Vec<Vec<f32>> = Vec::with_capacity(self.layers.len() + 1);
        // `cur` always holds the most recent activation, so no layer
        // ever has to reach back into `acts` (which would need a panic
        // or a default on the impossible empty case).
        let mut cur: Vec<f32> = x.to_vec();
        let mut buf = Vec::new();
        for (li, layer) in self.layers.iter().enumerate() {
            layer.forward(&cur, &mut buf);
            let last = li + 1 == self.layers.len();
            if !last {
                for v in buf.iter_mut() {
                    *v = v.max(0.0); // ReLU
                }
            }
            acts.push(std::mem::take(&mut cur));
            cur = buf.clone();
        }
        let logit = cur.first().copied().unwrap_or_default();
        acts.push(cur);
        (acts, logit)
    }

    fn validate(&self) -> Result<()> {
        if self.learning_rate <= 0.0 {
            return Err(MlError::InvalidParameter {
                name: "learning_rate",
                reason: format!("must be positive, got {}", self.learning_rate),
            });
        }
        if self.hidden.contains(&0) {
            return Err(MlError::InvalidParameter {
                name: "hidden_layers",
                reason: "layer sizes must be > 0".into(),
            });
        }
        Ok(())
    }
}

impl Classifier for MlpClassifier {
    // Gradient buffers are indexed by layer/unit throughout backprop;
    // iterator rewrites would obscure the maths.
    #[allow(clippy::needless_range_loop)]
    fn fit(&mut self, train: &Dataset) -> Result<()> {
        self.validate()?;
        if train.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        if train.n_positive() == 0 || train.n_negative() == 0 {
            return Err(MlError::SingleClass);
        }
        let d = train.n_features();
        self.n_features = d;
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Build layer stack: d -> hidden... -> 1
        self.layers.clear();
        let mut dims = vec![d];
        dims.extend_from_slice(&self.hidden);
        dims.push(1);
        for w in dims.windows(2) {
            self.layers.push(Layer::new(w[0], w[1], &mut rng));
        }
        self.adam_t = 0;

        let n = train.len();
        let mut idx: Vec<usize> = (0..n).collect();
        const BETA1: f32 = 0.9;
        const BETA2: f32 = 0.999;
        const EPS: f32 = 1e-8;

        // Per-layer gradient buffers.
        let mut gw: Vec<Vec<f32>> = self.layers.iter().map(|l| vec![0.0; l.w.len()]).collect();
        let mut gb: Vec<Vec<f32>> = self.layers.iter().map(|l| vec![0.0; l.b.len()]).collect();

        for _ in 0..self.epochs {
            idx.shuffle(&mut rng);
            for batch in idx.chunks(self.batch_size) {
                for g in gw.iter_mut() {
                    g.fill(0.0);
                }
                for g in gb.iter_mut() {
                    g.fill(0.0);
                }
                for &i in batch {
                    let x = train.x().row(i);
                    let y = train.y()[i];
                    let (acts, logit) = self.forward(x);
                    let p = sigmoid(logit);
                    let w = if y == 1.0 { self.pos_weight } else { 1.0 };
                    // dL/dlogit for weighted logistic loss.
                    let mut delta = vec![w * (p - y)];
                    // Backpropagate layer by layer.
                    for li in (0..self.layers.len()).rev() {
                        let layer = &self.layers[li];
                        let a_in = &acts[li];
                        // Accumulate gradients for this layer.
                        for o in 0..layer.out_dim {
                            let dv = delta[o];
                            if dv == 0.0 {
                                continue;
                            }
                            gb[li][o] += dv;
                            let grow = &mut gw[li][o * layer.in_dim..(o + 1) * layer.in_dim];
                            for (g, &av) in grow.iter_mut().zip(a_in) {
                                *g += dv * av;
                            }
                        }
                        if li == 0 {
                            break;
                        }
                        // delta for previous layer: W^T delta, masked by ReLU'.
                        let mut prev = vec![0.0f32; layer.in_dim];
                        for o in 0..layer.out_dim {
                            let dv = delta[o];
                            if dv == 0.0 {
                                continue;
                            }
                            let row = &layer.w[o * layer.in_dim..(o + 1) * layer.in_dim];
                            for (pv, &wv) in prev.iter_mut().zip(row) {
                                *pv += dv * wv;
                            }
                        }
                        for (pv, &av) in prev.iter_mut().zip(&acts[li]) {
                            if av <= 0.0 {
                                *pv = 0.0;
                            }
                        }
                        delta = prev;
                    }
                }
                // Adam update.
                self.adam_t += 1;
                let t = self.adam_t as f32;
                let bc1 = 1.0 - BETA1.powf(t);
                let bc2 = 1.0 - BETA2.powf(t);
                let scale = 1.0 / batch.len() as f32;
                for (li, layer) in self.layers.iter_mut().enumerate() {
                    for k in 0..layer.w.len() {
                        let g = gw[li][k] * scale + self.l2 * layer.w[k];
                        layer.mw[k] = BETA1 * layer.mw[k] + (1.0 - BETA1) * g;
                        layer.vw[k] = BETA2 * layer.vw[k] + (1.0 - BETA2) * g * g;
                        let mhat = layer.mw[k] / bc1;
                        let vhat = layer.vw[k] / bc2;
                        layer.w[k] -= self.learning_rate * mhat / (vhat.sqrt() + EPS);
                    }
                    for k in 0..layer.b.len() {
                        let g = gb[li][k] * scale;
                        layer.mb[k] = BETA1 * layer.mb[k] + (1.0 - BETA1) * g;
                        layer.vb[k] = BETA2 * layer.vb[k] + (1.0 - BETA2) * g * g;
                        let mhat = layer.mb[k] / bc1;
                        let vhat = layer.vb[k] / bc2;
                        layer.b[k] -= self.learning_rate * mhat / (vhat.sqrt() + EPS);
                    }
                }
            }
        }
        for layer in &self.layers {
            if layer.w.iter().any(|v| !v.is_finite()) {
                return Err(MlError::NumericalError(
                    "mlp training diverged (non-finite weights)".into(),
                ));
            }
        }
        Ok(())
    }

    /// The optimiser always runs exactly `epochs × ceil(n / batch_size)`
    /// Adam steps, so the training-loop metrics are recorded in closed
    /// form after the (unchanged) fit — recording can never perturb it.
    fn fit_observed(&mut self, train: &Dataset, rec: &mut obskit::Recorder) -> Result<()> {
        self.fit(train)?;
        rec.incr("mlkit.nn.epochs", self.epochs as u64);
        let n_batches = train.len().div_ceil(self.batch_size) as u64;
        rec.incr("mlkit.nn.adam_steps", self.epochs as u64 * n_batches);
        Ok(())
    }

    fn predict_proba(&self, data: &Dataset) -> Result<Vec<f32>> {
        if self.layers.is_empty() {
            return Err(MlError::NotFitted);
        }
        if data.n_features() != self.n_features {
            return Err(MlError::DimensionMismatch {
                expected: format!("{} features", self.n_features),
                found: format!("{} features", data.n_features()),
            });
        }
        Ok(data
            .x()
            .rows_iter()
            .map(|row| sigmoid(self.forward(row).1))
            .collect())
    }

    fn name(&self) -> &'static str {
        "NN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_dataset(n: usize) -> Dataset {
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|i| vec![(i % 2) as f32, ((i / 2) % 2) as f32])
            .collect();
        let y: Vec<f32> = rows
            .iter()
            .map(|r| if r[0] != r[1] { 1.0 } else { 0.0 })
            .collect();
        Dataset::from_rows(&rows, &y).unwrap()
    }

    #[test]
    fn fit_observed_records_epochs_and_steps() {
        let ds = xor_dataset(40);
        let mut nn = MlpClassifier::new()
            .hidden_layers(&[4])
            .epochs(3)
            .batch_size(16);
        let mut rec = obskit::Recorder::new();
        nn.fit_observed(&ds, &mut rec).unwrap();
        assert_eq!(rec.counter("mlkit.nn.epochs"), 3);
        // 40 samples / batch 16 -> 3 batches per epoch; matches the
        // optimiser's own Adam step counter.
        assert_eq!(rec.counter("mlkit.nn.adam_steps"), 9);
        assert_eq!(nn.adam_t, 9);
    }

    #[test]
    fn learns_xor() {
        let ds = xor_dataset(120);
        let mut nn = MlpClassifier::new()
            .hidden_layers(&[16])
            .epochs(300)
            .learning_rate(5e-3);
        nn.fit(&ds).unwrap();
        let pred = nn.predict(&ds).unwrap();
        let acc = pred.iter().zip(ds.y()).filter(|(a, b)| a == b).count() as f64 / 120.0;
        assert!(acc > 0.97, "accuracy {acc}");
    }

    #[test]
    fn not_fitted_error() {
        let ds = xor_dataset(8);
        assert!(matches!(
            MlpClassifier::new().predict_proba(&ds),
            Err(MlError::NotFitted)
        ));
    }

    #[test]
    fn single_class_rejected() {
        let ds = Dataset::from_rows(&[vec![1.0], vec![2.0]], &[0.0, 0.0]).unwrap();
        assert!(matches!(
            MlpClassifier::new().fit(&ds),
            Err(MlError::SingleClass)
        ));
    }

    #[test]
    fn invalid_params_rejected() {
        let ds = xor_dataset(8);
        assert!(MlpClassifier::new().learning_rate(0.0).fit(&ds).is_err());
        assert!(MlpClassifier::new().hidden_layers(&[0]).fit(&ds).is_err());
    }

    #[test]
    fn deep_network_trains() {
        let ds = xor_dataset(120);
        let mut nn = MlpClassifier::new()
            .hidden_layers(&[16, 8])
            .epochs(300)
            .learning_rate(5e-3);
        nn.fit(&ds).unwrap();
        let pred = nn.predict(&ds).unwrap();
        let acc = pred.iter().zip(ds.y()).filter(|(a, b)| a == b).count() as f64 / 120.0;
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn probabilities_bounded() {
        let ds = xor_dataset(40);
        let mut nn = MlpClassifier::new().epochs(10);
        nn.fit(&ds).unwrap();
        for p in nn.predict_proba(&ds).unwrap() {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = xor_dataset(60);
        let mut a = MlpClassifier::new().epochs(20).seed(11);
        let mut b = MlpClassifier::new().epochs(20).seed(11);
        a.fit(&ds).unwrap();
        b.fit(&ds).unwrap();
        assert_eq!(a.predict_proba(&ds).unwrap(), b.predict_proba(&ds).unwrap());
    }

    #[test]
    fn feature_mismatch_rejected() {
        let ds = xor_dataset(40);
        let mut nn = MlpClassifier::new().epochs(5);
        nn.fit(&ds).unwrap();
        let wrong = Dataset::from_rows(&[vec![0.0]], &[0.0]).unwrap();
        assert!(nn.predict_proba(&wrong).is_err());
    }
}
