//! The common binary-classifier interface.

use crate::dataset::Dataset;
use crate::Result;

/// A binary classifier over [`Dataset`]s.
///
/// Implementations predict the probability that each sample belongs to the
/// positive class (`1.0`). Hard predictions threshold that probability at
/// [`Classifier::threshold`] (0.5 by default).
pub trait Classifier {
    /// Fits the model to a training dataset.
    ///
    /// # Errors
    ///
    /// Returns an error when the dataset is empty, single-class (for models
    /// that require both classes), or numerically degenerate.
    fn fit(&mut self, train: &Dataset) -> Result<()>;

    /// Like [`Classifier::fit`], but records training-loop metrics
    /// (boosting rounds, epochs, split candidates, …) into `rec`. The
    /// default ignores the recorder; models with interesting training
    /// loops override it. Fitting through this method with
    /// [`obskit::Recorder::null`] must be behaviourally identical to
    /// [`Classifier::fit`] — the instrumentation-equivalence suite
    /// (`tests/obskit_equivalence.rs`) locks that down end to end.
    ///
    /// # Errors
    ///
    /// Same contract as [`Classifier::fit`].
    fn fit_observed(&mut self, train: &Dataset, rec: &mut obskit::Recorder) -> Result<()> {
        let _ = rec;
        self.fit(train)
    }

    /// Predicts positive-class probabilities for every sample.
    ///
    /// # Errors
    ///
    /// Returns [`crate::MlError::NotFitted`] before [`Classifier::fit`], or a
    /// dimension error when feature counts differ from training.
    fn predict_proba(&self, data: &Dataset) -> Result<Vec<f32>>;

    /// Decision threshold used by [`Classifier::predict`].
    fn threshold(&self) -> f32 {
        0.5
    }

    /// Predicts hard labels (`0.0`/`1.0`) by thresholding
    /// [`Classifier::predict_proba`].
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Classifier::predict_proba`].
    fn predict(&self, data: &Dataset) -> Result<Vec<f32>> {
        let t = self.threshold();
        Ok(self
            .predict_proba(data)?
            .into_iter()
            .map(|p| if p >= t { 1.0 } else { 0.0 })
            .collect())
    }

    /// A short human-readable model name (e.g. `"GBDT"`).
    fn name(&self) -> &'static str;
}

impl<T: Classifier + ?Sized> Classifier for Box<T> {
    fn fit(&mut self, train: &Dataset) -> Result<()> {
        (**self).fit(train)
    }
    fn fit_observed(&mut self, train: &Dataset, rec: &mut obskit::Recorder) -> Result<()> {
        (**self).fit_observed(train, rec)
    }
    fn predict_proba(&self, data: &Dataset) -> Result<Vec<f32>> {
        (**self).predict_proba(data)
    }
    fn threshold(&self) -> f32 {
        (**self).threshold()
    }
    fn predict(&self, data: &Dataset) -> Result<Vec<f32>> {
        (**self).predict(data)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;

    /// A constant-probability classifier used to test default methods.
    struct Constant(f32);

    impl Classifier for Constant {
        fn fit(&mut self, _train: &Dataset) -> Result<()> {
            Ok(())
        }
        fn predict_proba(&self, data: &Dataset) -> Result<Vec<f32>> {
            Ok(vec![self.0; data.len()])
        }
        fn name(&self) -> &'static str {
            "Constant"
        }
    }

    #[test]
    fn default_predict_thresholds_at_half() {
        let ds = Dataset::from_rows(&[vec![0.0], vec![1.0]], &[0.0, 1.0]).unwrap();
        assert_eq!(Constant(0.6).predict(&ds).unwrap(), vec![1.0, 1.0]);
        assert_eq!(Constant(0.4).predict(&ds).unwrap(), vec![0.0, 0.0]);
        // Boundary: p == threshold counts as positive.
        assert_eq!(Constant(0.5).predict(&ds).unwrap(), vec![1.0, 1.0]);
    }

    #[test]
    fn default_fit_observed_delegates_and_records_nothing() {
        let ds = Dataset::from_rows(&[vec![0.0]], &[0.0]).unwrap();
        let mut rec = obskit::Recorder::new();
        let mut model = Constant(0.9);
        model.fit_observed(&ds, &mut rec).unwrap();
        assert_eq!(rec.ticks(), 0);
        // The Box blanket impl forwards fit_observed too.
        let mut boxed: Box<dyn Classifier> = Box::new(Constant(0.1));
        boxed.fit_observed(&ds, &mut rec).unwrap();
        assert_eq!(rec.ticks(), 0);
    }

    #[test]
    fn trait_is_object_safe() {
        let ds = Dataset::from_rows(&[vec![0.0]], &[0.0]).unwrap();
        let boxed: Box<dyn Classifier> = Box::new(Constant(0.9));
        assert_eq!(boxed.predict(&ds).unwrap(), vec![1.0]);
        assert_eq!(boxed.name(), "Constant");
    }
}
