//! Lloyd's k-means clustering with k-means++ initialisation.
//!
//! Used by [`crate::sampling::kmeans_undersample`] — one of the
//! imbalanced-dataset mitigations the paper discusses (its reference \[20\]
//! controls under-sampling via k-means).

use crate::matrix::{sq_dist, Matrix};
use crate::{MlError, Result};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Result of a k-means run: centroids plus per-sample assignments.
#[derive(Debug, Clone)]
pub struct KMeansFit {
    /// `k × d` centroid matrix.
    pub centroids: Matrix,
    /// Cluster index per input row.
    pub assignments: Vec<usize>,
    /// Final within-cluster sum of squared distances.
    pub inertia: f64,
    /// Iterations executed before convergence (or the cap).
    pub iterations: usize,
}

/// Runs k-means with k-means++ seeding.
///
/// # Errors
///
/// Returns [`MlError::InvalidParameter`] when `k` is zero or exceeds the
/// number of samples, and [`MlError::EmptyDataset`] for an empty matrix.
pub fn kmeans(x: &Matrix, k: usize, max_iters: usize, seed: u64) -> Result<KMeansFit> {
    if x.nrows() == 0 {
        return Err(MlError::EmptyDataset);
    }
    if k == 0 || k > x.nrows() {
        return Err(MlError::InvalidParameter {
            name: "k",
            reason: format!("must be in [1, {}], got {k}", x.nrows()),
        });
    }
    let n = x.nrows();
    let d = x.ncols();
    let mut rng = StdRng::seed_from_u64(seed);

    // k-means++ initialisation.
    let mut centroids = Matrix::zeros(k, d);
    let first = rng.gen_range(0..n);
    centroids.row_mut(0).copy_from_slice(x.row(first));
    let mut dists: Vec<f32> = (0..n)
        .map(|i| sq_dist(x.row(i), centroids.row(0)))
        .collect();
    for c in 1..k {
        let total: f64 = dists.iter().map(|&v| v as f64).sum();
        let pick = if total <= 0.0 {
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut chosen = n - 1;
            for (i, &v) in dists.iter().enumerate() {
                target -= v as f64;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centroids.row_mut(c).copy_from_slice(x.row(pick));
        for (i, d) in dists.iter_mut().enumerate() {
            let nd = sq_dist(x.row(i), centroids.row(c));
            if nd < *d {
                *d = nd;
            }
        }
    }

    let mut assignments = vec![0usize; n];
    let mut iterations = 0;
    for it in 0..max_iters.max(1) {
        iterations = it + 1;
        // Assignment step.
        let mut changed = false;
        for (i, assignment) in assignments.iter_mut().enumerate() {
            let row = x.row(i);
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for c in 0..k {
                let dd = sq_dist(row, centroids.row(c));
                if dd < best_d {
                    best_d = dd;
                    best = c;
                }
            }
            if *assignment != best {
                *assignment = best;
                changed = true;
            }
        }
        // Update step.
        let mut sums = vec![0.0f64; k * d];
        let mut counts = vec![0usize; k];
        for (i, &c) in assignments.iter().enumerate() {
            counts[c] += 1;
            for (j, &v) in x.row(i).iter().enumerate() {
                sums[c * d + j] += v as f64;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed an empty cluster at a random point.
                let pick = rng.gen_range(0..n);
                centroids.row_mut(c).copy_from_slice(x.row(pick));
                continue;
            }
            let crow = centroids.row_mut(c);
            for (j, cv) in crow.iter_mut().enumerate() {
                *cv = (sums[c * d + j] / counts[c] as f64) as f32;
            }
        }
        if !changed && it > 0 {
            break;
        }
    }

    let inertia = (0..n)
        .map(|i| sq_dist(x.row(i), centroids.row(assignments[i])) as f64)
        .sum();
    Ok(KMeansFit {
        centroids,
        assignments,
        inertia,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Matrix {
        let mut rows = Vec::new();
        for i in 0..20 {
            let eps = (i % 5) as f32 * 0.01;
            rows.push(vec![0.0 + eps, 0.0 + eps]);
            rows.push(vec![10.0 + eps, 10.0 + eps]);
        }
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn separates_two_blobs() {
        let x = two_blobs();
        let fit = kmeans(&x, 2, 50, 1).unwrap();
        // All even rows (blob A) share a cluster distinct from odd rows.
        let a = fit.assignments[0];
        let b = fit.assignments[1];
        assert_ne!(a, b);
        for i in 0..x.nrows() {
            let expect = if i % 2 == 0 { a } else { b };
            assert_eq!(fit.assignments[i], expect);
        }
        assert!(fit.inertia < 1.0);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let x = Matrix::from_rows(&[vec![0.0], vec![5.0], vec![9.0]]).unwrap();
        let fit = kmeans(&x, 3, 20, 2).unwrap();
        assert!(fit.inertia < 1e-9);
    }

    #[test]
    fn invalid_k_rejected() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0]]).unwrap();
        assert!(kmeans(&x, 0, 10, 1).is_err());
        assert!(kmeans(&x, 3, 10, 1).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let x = two_blobs();
        let a = kmeans(&x, 2, 50, 7).unwrap();
        let b = kmeans(&x, 2, 50, 7).unwrap();
        assert_eq!(a.assignments, b.assignments);
    }

    #[test]
    fn single_cluster_centroid_is_mean() {
        let x = Matrix::from_rows(&[vec![1.0], vec![3.0]]).unwrap();
        let fit = kmeans(&x, 1, 10, 1).unwrap();
        assert!((fit.centroids.get(0, 0) - 2.0).abs() < 1e-6);
    }
}
