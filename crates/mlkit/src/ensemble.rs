//! Model ensembling: soft-voting over heterogeneous classifiers.
//!
//! The paper compares LR/GBDT/SVM/NN individually; a natural follow-up
//! (and a common production pattern) is to average their probabilities.
//! [`VotingEnsemble`] holds boxed classifiers and averages their
//! `predict_proba` outputs, optionally with weights.

use crate::dataset::Dataset;
use crate::model::Classifier;
use crate::{MlError, Result};

/// Soft-voting ensemble: the positive probability is the (weighted) mean
/// of the members' probabilities.
pub struct VotingEnsemble {
    members: Vec<Box<dyn Classifier>>,
    weights: Vec<f32>,
}

impl std::fmt::Debug for VotingEnsemble {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VotingEnsemble")
            .field(
                "members",
                &self.members.iter().map(|m| m.name()).collect::<Vec<_>>(),
            )
            .field("weights", &self.weights)
            .finish()
    }
}

impl VotingEnsemble {
    /// Creates an empty ensemble.
    pub fn new() -> VotingEnsemble {
        VotingEnsemble {
            members: Vec::new(),
            weights: Vec::new(),
        }
    }

    /// Adds a member with weight 1.
    pub fn with_member(self, member: Box<dyn Classifier>) -> VotingEnsemble {
        self.with_weighted_member(member, 1.0)
    }

    /// Adds a member with an explicit non-negative weight.
    pub fn with_weighted_member(
        mut self,
        member: Box<dyn Classifier>,
        weight: f32,
    ) -> VotingEnsemble {
        self.members.push(member);
        self.weights.push(weight.max(0.0));
        self
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` when no members were added.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Member names in insertion order.
    pub fn member_names(&self) -> Vec<&'static str> {
        self.members.iter().map(|m| m.name()).collect()
    }
}

impl Default for VotingEnsemble {
    fn default() -> VotingEnsemble {
        VotingEnsemble::new()
    }
}

impl Classifier for VotingEnsemble {
    fn fit(&mut self, train: &Dataset) -> Result<()> {
        if self.members.is_empty() {
            return Err(MlError::InvalidParameter {
                name: "members",
                reason: "ensemble has no members".into(),
            });
        }
        let total: f32 = self.weights.iter().sum();
        if total <= 0.0 {
            return Err(MlError::InvalidParameter {
                name: "weights",
                reason: "weights sum to zero".into(),
            });
        }
        for m in &mut self.members {
            m.fit(train)?;
        }
        Ok(())
    }

    fn predict_proba(&self, data: &Dataset) -> Result<Vec<f32>> {
        if self.members.is_empty() {
            return Err(MlError::NotFitted);
        }
        let total: f32 = self.weights.iter().sum();
        let mut acc = vec![0.0f32; data.len()];
        for (m, &w) in self.members.iter().zip(&self.weights) {
            if w == 0.0 {
                continue;
            }
            let p = m.predict_proba(data)?;
            for (a, v) in acc.iter_mut().zip(p) {
                *a += w * v;
            }
        }
        for a in acc.iter_mut() {
            *a /= total;
        }
        Ok(acc)
    }

    fn name(&self) -> &'static str {
        "Ensemble"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gbdt::Gbdt;
    use crate::linear::LogisticRegression;
    use crate::nn::MlpClassifier;

    fn dataset(n: usize) -> Dataset {
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|i| {
                let a = (i % 2) as f32 + (i % 7) as f32 * 0.01;
                let b = ((i / 2) % 2) as f32 + (i % 5) as f32 * 0.01;
                vec![a, b]
            })
            .collect();
        let y: Vec<f32> = rows
            .iter()
            .map(|r| {
                if (r[0] > 0.5) != (r[1] > 0.5) {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        Dataset::from_rows(&rows, &y).unwrap()
    }

    #[test]
    fn ensemble_probability_is_member_average() {
        let ds = dataset(120);
        let mut e = VotingEnsemble::new()
            .with_member(Box::new(Gbdt::new().n_trees(15).min_samples_leaf(2)))
            .with_member(Box::new(LogisticRegression::new().epochs(30)));
        e.fit(&ds).unwrap();
        // Recompute member probabilities manually and compare.
        let mut g = Gbdt::new().n_trees(15).min_samples_leaf(2);
        g.fit(&ds).unwrap();
        let mut l = LogisticRegression::new().epochs(30);
        l.fit(&ds).unwrap();
        let pg = g.predict_proba(&ds).unwrap();
        let pl = l.predict_proba(&ds).unwrap();
        let pe = e.predict_proba(&ds).unwrap();
        for ((a, b), c) in pg.iter().zip(&pl).zip(&pe) {
            assert!(((a + b) / 2.0 - c).abs() < 1e-6);
        }
    }

    #[test]
    fn weighted_ensemble_leans_toward_heavy_member() {
        let ds = dataset(120);
        let mut e = VotingEnsemble::new()
            .with_weighted_member(Box::new(Gbdt::new().n_trees(20).min_samples_leaf(2)), 9.0)
            .with_weighted_member(Box::new(LogisticRegression::new().epochs(5)), 1.0);
        e.fit(&ds).unwrap();
        let mut g = Gbdt::new().n_trees(20).min_samples_leaf(2);
        g.fit(&ds).unwrap();
        let pg = g.predict_proba(&ds).unwrap();
        let pe = e.predict_proba(&ds).unwrap();
        // Ensemble should track GBDT closely at weight 9:1.
        let mean_diff: f32 =
            pg.iter().zip(&pe).map(|(a, b)| (a - b).abs()).sum::<f32>() / pg.len() as f32;
        assert!(mean_diff < 0.1, "diff {mean_diff}");
    }

    #[test]
    fn ensemble_beats_its_weakest_member_on_xor() {
        let ds = dataset(200);
        let acc = |pred: &[f32]| -> f64 {
            pred.iter().zip(ds.y()).filter(|(a, b)| a == b).count() as f64 / ds.len() as f64
        };
        let mut weak = LogisticRegression::new().epochs(20);
        weak.fit(&ds).unwrap();
        let weak_acc = acc(&weak.predict(&ds).unwrap());

        let mut e = VotingEnsemble::new()
            .with_member(Box::new(Gbdt::new().n_trees(25).min_samples_leaf(2)))
            .with_member(Box::new(
                MlpClassifier::new()
                    .hidden_layers(&[16])
                    .epochs(150)
                    .learning_rate(5e-3),
            ))
            .with_member(Box::new(LogisticRegression::new().epochs(20)));
        e.fit(&ds).unwrap();
        let e_acc = acc(&e.predict(&ds).unwrap());
        assert!(e_acc >= weak_acc, "ensemble {e_acc} vs weak {weak_acc}");
        assert_eq!(e.member_names(), vec!["GBDT", "NN", "LR"]);
    }

    #[test]
    fn empty_or_zero_weight_rejected() {
        let ds = dataset(20);
        assert!(VotingEnsemble::new().fit(&ds).is_err());
        let mut zero =
            VotingEnsemble::new().with_weighted_member(Box::new(LogisticRegression::new()), 0.0);
        assert!(zero.fit(&ds).is_err());
        assert!(VotingEnsemble::new().predict_proba(&ds).is_err());
    }
}
