//! `mlkit` — a small, self-contained machine-learning library.
//!
//! This crate is the ML substrate for the DSN 2018 GPU-error-prediction
//! reproduction. It provides, from scratch and with no external ML
//! dependencies:
//!
//! * a row-major [`Matrix`](matrix::Matrix) and a labelled
//!   [`Dataset`](dataset::Dataset),
//! * binary classifiers behind the common [`Classifier`](model::Classifier)
//!   trait: [`LogisticRegression`](linear::LogisticRegression),
//!   [`Gbdt`](gbdt::Gbdt) (gradient-boosted decision trees),
//!   [`SvmRbf`](svm::SvmRbf) / [`LinearSvm`](svm::LinearSvm), and
//!   [`MlpClassifier`](nn::MlpClassifier),
//! * evaluation [`metrics`] (precision, recall, F1, confusion matrices),
//! * probability [`calibration`] (Platt scaling, expected calibration
//!   error), stratified [`crossval`]idation, and soft-voting
//!   [`ensemble`]s,
//! * class-imbalance [`sampling`] utilities (random over/under-sampling,
//!   SMOTE, k-means-based under-sampling),
//! * descriptive [`stats`] (Spearman/Pearson correlation, percentiles,
//!   histograms, empirical CDFs),
//! * feature [`scaler`]s and [`kmeans`] clustering.
//!
//! # Example
//!
//! ```
//! use mlkit::dataset::Dataset;
//! use mlkit::linear::LogisticRegression;
//! use mlkit::model::Classifier;
//!
//! // Tiny linearly separable problem: y = 1 iff x0 + x1 > 1.
//! let x = vec![
//!     vec![0.0, 0.0], vec![0.2, 0.1], vec![0.9, 0.8], vec![1.0, 1.0],
//!     vec![0.1, 0.3], vec![0.8, 0.9], vec![0.0, 0.4], vec![1.2, 0.7],
//! ];
//! let y = vec![0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 0.0, 1.0];
//! let ds = Dataset::from_rows(&x, &y)?;
//! let mut model = LogisticRegression::new().learning_rate(1.0).epochs(300);
//! model.fit(&ds)?;
//! let yhat = model.predict(&ds)?;
//! assert_eq!(yhat, vec![0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 0.0, 1.0]);
//! # Ok::<(), mlkit::MlError>(())
//! ```

pub mod artifact;
pub mod calibration;
pub mod crossval;
pub mod dataset;
pub mod ensemble;
pub mod fastpath;
pub mod gbdt;
pub mod hash;
pub mod hist;
pub mod kmeans;
pub mod linear;
pub mod matrix;
pub mod metrics;
pub mod model;
pub mod nn;
pub mod sampling;
pub mod scaler;
pub mod stats;
pub mod svm;
pub mod tree;

mod error;

pub use error::MlError;

/// Crate-wide `Result` alias using [`MlError`].
pub type Result<T> = std::result::Result<T, MlError>;
