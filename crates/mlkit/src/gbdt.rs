//! Gradient-boosted decision trees (GBDT) for binary classification.
//!
//! This is the paper's best-performing model. The implementation follows
//! the second-order boosting formulation (as popularised by XGBoost):
//! at each round a regression tree is fit to the gradient/hessian of the
//! logistic loss, and leaves take Newton steps `-G/(H + lambda)` shrunk by
//! the learning rate. Features are quantile-binned once up front, so each
//! boosting round costs `O(samples × features)`.

use crate::dataset::Dataset;
use crate::hist::{TrainMode, TrainScratch};
use crate::linear::sigmoid;
use crate::model::Classifier;
use crate::tree::{QuantileBinner, RegressionTree, TreeParams};
use crate::{MlError, Result};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Gradient-boosted decision tree classifier with logistic loss.
///
/// # Example
///
/// ```
/// use mlkit::dataset::Dataset;
/// use mlkit::gbdt::Gbdt;
/// use mlkit::model::Classifier;
///
/// // XOR-ish data (with slight jitter) that a linear model cannot fit.
/// let rows: Vec<Vec<f32>> = (0..80)
///     .map(|i| {
///         let a = (i % 2) as f32 + (i % 7) as f32 * 0.01;
///         let b = ((i / 2) % 2) as f32 + (i % 5) as f32 * 0.01;
///         vec![a, b]
///     })
///     .collect();
/// let y: Vec<f32> = rows
///     .iter()
///     .map(|r| if (r[0] > 0.5) != (r[1] > 0.5) { 1.0 } else { 0.0 })
///     .collect();
/// let ds = Dataset::from_rows(&rows, &y)?;
/// let mut model = Gbdt::new().n_trees(20).min_samples_leaf(1);
/// model.fit(&ds)?;
/// let pred = model.predict(&ds)?;
/// assert_eq!(pred, y);
/// # Ok::<(), mlkit::MlError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Gbdt {
    n_trees: usize,
    learning_rate: f32,
    max_depth: usize,
    min_samples_leaf: usize,
    lambda: f64,
    subsample: f64,
    colsample: f64,
    n_bins: usize,
    pos_weight: f32,
    seed: u64,
    /// Worker-thread policy for split finding, score updates, and
    /// prediction. Execution detail — results are identical under any
    /// policy — so fitted-model serialization excludes it.
    #[serde(skip)]
    threads: parkit::Threads,
    /// Split-finding engine (see [`TrainMode`]). Training detail — the
    /// default `Exact` engine is bit-identical to `Reference`, and
    /// `Fast` is locked split-identical by the differential suite — so
    /// fitted-model serialization excludes it.
    #[serde(skip)]
    train_mode: TrainMode,
    // Fitted state.
    binner: Option<QuantileBinner>,
    trees: Vec<RegressionTree>,
    base_score: f32,
    n_features: usize,
}

impl Default for Gbdt {
    fn default() -> Gbdt {
        Gbdt::new()
    }
}

impl Gbdt {
    /// Creates a model with defaults suited to medium-size tabular data
    /// (100 trees, depth 5, learning rate 0.1, 64 bins).
    pub fn new() -> Gbdt {
        Gbdt {
            n_trees: 100,
            learning_rate: 0.1,
            max_depth: 5,
            min_samples_leaf: 10,
            lambda: 1.0,
            subsample: 1.0,
            colsample: 1.0,
            n_bins: 64,
            pos_weight: 1.0,
            seed: 42,
            threads: parkit::Threads::Auto,
            train_mode: TrainMode::Exact,
            binner: None,
            trees: Vec::new(),
            base_score: 0.0,
            n_features: 0,
        }
    }

    /// Sets the number of boosting rounds.
    pub fn n_trees(mut self, n: usize) -> Gbdt {
        self.n_trees = n;
        self
    }

    /// Sets the shrinkage (learning rate) applied to each tree.
    pub fn learning_rate(mut self, lr: f32) -> Gbdt {
        self.learning_rate = lr;
        self
    }

    /// Sets the maximum depth of each tree.
    pub fn max_depth(mut self, d: usize) -> Gbdt {
        self.max_depth = d;
        self
    }

    /// Sets the minimum samples per leaf.
    pub fn min_samples_leaf(mut self, m: usize) -> Gbdt {
        self.min_samples_leaf = m.max(1);
        self
    }

    /// Sets the L2 leaf regularisation.
    pub fn lambda(mut self, l: f64) -> Gbdt {
        self.lambda = l;
        self
    }

    /// Sets the per-round row subsampling fraction (`(0, 1]`).
    pub fn subsample(mut self, s: f64) -> Gbdt {
        self.subsample = s;
        self
    }

    /// Sets the per-split feature sampling fraction (`(0, 1]`).
    pub fn colsample(mut self, c: f64) -> Gbdt {
        self.colsample = c;
        self
    }

    /// Sets the number of quantile bins per feature (2–256).
    pub fn n_bins(mut self, b: usize) -> Gbdt {
        self.n_bins = b;
        self
    }

    /// Sets the loss weight multiplier for positive samples.
    pub fn pos_weight(mut self, w: f32) -> Gbdt {
        self.pos_weight = w;
        self
    }

    /// Sets the RNG seed (subsampling, feature sampling).
    pub fn seed(mut self, seed: u64) -> Gbdt {
        self.seed = seed;
        self
    }

    /// Sets the worker-thread policy. Training and prediction results are
    /// bit-identical under any policy (see `parkit`); this only changes
    /// wall-clock time.
    pub fn threads(mut self, threads: parkit::Threads) -> Gbdt {
        self.threads = threads;
        self
    }

    /// Sets the split-finding engine. `Exact` (the default) is
    /// bit-identical to the pre-engine `Reference` path; `Fast` adds
    /// sibling subtraction and row-block parallelism for a ≥2x
    /// training-throughput gain at the cost of last-ulp floating-point
    /// identity (see [`crate::hist`] for the contract).
    pub fn train_mode(mut self, mode: TrainMode) -> Gbdt {
        self.train_mode = mode;
        self
    }

    /// Number of fitted trees (0 before fitting).
    pub fn n_fitted_trees(&self) -> usize {
        self.trees.len()
    }

    /// Flattens the fitted ensemble into a branch-free
    /// [`CompiledGbdt`](crate::fastpath::CompiledGbdt) whose
    /// probabilities are bit-identical to
    /// [`Classifier::predict_proba`].
    ///
    /// # Errors
    ///
    /// Returns [`MlError::NotFitted`] before fitting.
    pub fn compile(&self) -> Result<crate::fastpath::CompiledGbdt> {
        crate::fastpath::CompiledGbdt::from_gbdt(self)
    }

    /// The fitted trees, for fastpath flattening.
    pub(crate) fn fitted_trees(&self) -> &[RegressionTree] {
        &self.trees
    }

    /// The fitted base score (log-odds prior).
    pub(crate) fn fitted_base_score(&self) -> f32 {
        self.base_score
    }

    /// The shrinkage applied to each tree's leaf values.
    pub(crate) fn shrinkage(&self) -> f32 {
        self.learning_rate
    }

    /// The fitted feature count.
    pub(crate) fn fitted_n_features(&self) -> usize {
        self.n_features
    }

    /// Split-count feature importances, or `None` before fitting.
    pub fn feature_importances(&self) -> Option<Vec<u32>> {
        if self.trees.is_empty() {
            return None;
        }
        let mut counts = vec![0u32; self.n_features];
        for t in &self.trees {
            t.accumulate_feature_counts(&mut counts);
        }
        Some(counts)
    }

    fn validate(&self) -> Result<()> {
        if self.n_trees == 0 {
            return Err(MlError::InvalidParameter {
                name: "n_trees",
                reason: "must be > 0".into(),
            });
        }
        if self.learning_rate <= 0.0 {
            return Err(MlError::InvalidParameter {
                name: "learning_rate",
                reason: format!("must be positive, got {}", self.learning_rate),
            });
        }
        if !(0.0..=1.0).contains(&self.subsample) || self.subsample == 0.0 {
            return Err(MlError::InvalidParameter {
                name: "subsample",
                reason: format!("must be in (0, 1], got {}", self.subsample),
            });
        }
        if !(0.0..=1.0).contains(&self.colsample) || self.colsample == 0.0 {
            return Err(MlError::InvalidParameter {
                name: "colsample",
                reason: format!("must be in (0, 1], got {}", self.colsample),
            });
        }
        Ok(())
    }

    /// Effective thread policy for an `n`-row pass: small batches run
    /// inline — spawning would cost more than the work saves. Results are
    /// identical either way; this is purely a scheduling choice.
    fn row_pass_threads(&self, n: usize) -> parkit::Threads {
        const PAR_ROW_MIN: usize = 4_096;
        if n < PAR_ROW_MIN {
            parkit::Threads::Serial
        } else {
            self.threads
        }
    }

    /// Raw additive score (log-odds) for one feature row.
    fn raw_score_row(&self, row: &[f32]) -> f32 {
        let mut s = self.base_score;
        for t in &self.trees {
            s += self.learning_rate * t.predict_row(row);
        }
        s
    }

    /// The boosting loop, shared by [`Classifier::fit`] (null recorder)
    /// and [`Classifier::fit_observed`]. Recording is strictly read-only
    /// with respect to training state, so both paths produce identical
    /// models.
    fn fit_impl(&mut self, train: &Dataset, rec: &mut obskit::Recorder) -> Result<()> {
        self.validate()?;
        if train.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        let n_pos = train.n_positive();
        let n_neg = train.n_negative();
        if n_pos == 0 || n_neg == 0 {
            return Err(MlError::SingleClass);
        }
        let n = train.len();
        self.n_features = train.n_features();

        let binner = QuantileBinner::fit(train.x(), self.n_bins)?;
        let binned = binner.transform(train.x())?;

        // Initialise with the log-odds of the (weighted) base rate.
        let wp = n_pos as f64 * self.pos_weight as f64;
        let wn = n_neg as f64;
        self.base_score = ((wp / wn).ln()) as f32;

        let mut raw = vec![self.base_score; n];
        let mut grad = vec![0.0f32; n];
        let mut hess = vec![0.0f32; n];
        let mut rng = StdRng::seed_from_u64(self.seed);
        let params = TreeParams {
            max_depth: self.max_depth,
            min_samples_leaf: self.min_samples_leaf,
            min_gain: 1e-6,
            lambda: self.lambda,
            colsample: self.colsample,
            threads: self.threads,
            mode: self.train_mode,
        };

        self.trees.clear();
        let mut all_idx: Vec<usize> = (0..n).collect();
        let sub_n = ((n as f64) * self.subsample).ceil() as usize;
        // One scratch arena for the whole boosting run: gathers, slabs,
        // and partials allocate during the first tree and are reused by
        // every later one, so steady-state training is allocation-free.
        let mut scratch = TrainScratch::for_binner(&binner);

        for _ in 0..self.n_trees {
            // Logistic loss derivatives with optional positive-class weight:
            //   L = -w_i [y ln p + (1-y) ln (1-p)],  p = sigmoid(raw)
            //   dL/draw = w_i (p - y),  d2L/draw2 = w_i p (1 - p)
            for i in 0..n {
                let p = sigmoid(raw[i]);
                let y = train.y()[i];
                let w = if y == 1.0 { self.pos_weight } else { 1.0 };
                grad[i] = w * (p - y);
                hess[i] = (w * p * (1.0 - p)).max(1e-6);
            }
            let idx: &[usize] = if self.subsample < 1.0 {
                all_idx.shuffle(&mut rng);
                &all_idx[..sub_n]
            } else {
                &all_idx
            };
            let tree = RegressionTree::fit_with_scratch(
                &binned,
                &binner,
                &grad,
                &hess,
                idx,
                params,
                &mut rng,
                rec,
                &mut scratch,
            )?;
            // Update raw scores for every sample (not just the subsample).
            // Each element is touched exactly once, so the chunked
            // parallel pass equals the serial loop bit for bit.
            parkit::par_apply_chunks(self.row_pass_threads(n), &mut raw, |offset, chunk| {
                for (k, r) in chunk.iter_mut().enumerate() {
                    *r += self.learning_rate * tree.predict_row(train.x().row(offset + k));
                }
            });
            rec.incr("mlkit.gbdt.boosting_rounds", 1);
            rec.observe("mlkit.gbdt.tree_leaves", tree.n_leaves() as f64);
            self.trees.push(tree);
        }
        self.binner = Some(binner);
        Ok(())
    }
}

impl Classifier for Gbdt {
    fn fit(&mut self, train: &Dataset) -> Result<()> {
        self.fit_impl(train, &mut obskit::Recorder::null())
    }

    fn fit_observed(&mut self, train: &Dataset, rec: &mut obskit::Recorder) -> Result<()> {
        self.fit_impl(train, rec)
    }

    fn predict_proba(&self, data: &Dataset) -> Result<Vec<f32>> {
        if self.trees.is_empty() {
            return Err(MlError::NotFitted);
        }
        if data.n_features() != self.n_features {
            return Err(MlError::DimensionMismatch {
                expected: format!("{} features", self.n_features),
                found: format!("{} features", data.n_features()),
            });
        }
        let rows: Vec<usize> = (0..data.len()).collect();
        Ok(parkit::par_map(
            self.row_pass_threads(rows.len()),
            &rows,
            |&i| sigmoid(self.raw_score_row(data.x().row(i))),
        ))
    }

    fn name(&self) -> &'static str {
        "GBDT"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_dataset(n: usize) -> Dataset {
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|i| {
                let a = (i % 2) as f32;
                let b = ((i / 2) % 2) as f32;
                // jitter so bins are informative
                vec![a + (i % 7) as f32 * 0.01, b + (i % 5) as f32 * 0.01]
            })
            .collect();
        let y: Vec<f32> = rows
            .iter()
            .map(|r| {
                if (r[0] > 0.5) != (r[1] > 0.5) {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        Dataset::from_rows(&rows, &y).unwrap()
    }

    #[test]
    fn learns_xor() {
        let ds = xor_dataset(200);
        let mut model = Gbdt::new().n_trees(30).max_depth(3).min_samples_leaf(2);
        model.fit(&ds).unwrap();
        let pred = model.predict(&ds).unwrap();
        let acc = pred.iter().zip(ds.y()).filter(|(a, b)| a == b).count() as f64 / 200.0;
        assert!(acc > 0.98, "accuracy {acc}");
    }

    #[test]
    fn outperforms_linear_on_xor() {
        use crate::linear::LogisticRegression;
        let ds = xor_dataset(200);
        let mut lin = LogisticRegression::new().epochs(100);
        lin.fit(&ds).unwrap();
        let lin_acc = lin
            .predict(&ds)
            .unwrap()
            .iter()
            .zip(ds.y())
            .filter(|(a, b)| a == b)
            .count() as f64
            / 200.0;
        let mut model = Gbdt::new().n_trees(30).max_depth(3).min_samples_leaf(2);
        model.fit(&ds).unwrap();
        let gb_acc = model
            .predict(&ds)
            .unwrap()
            .iter()
            .zip(ds.y())
            .filter(|(a, b)| a == b)
            .count() as f64
            / 200.0;
        assert!(gb_acc > lin_acc + 0.2, "gbdt {gb_acc} vs linear {lin_acc}");
    }

    #[test]
    fn not_fitted_error() {
        let ds = xor_dataset(8);
        assert!(matches!(
            Gbdt::new().predict_proba(&ds),
            Err(MlError::NotFitted)
        ));
    }

    #[test]
    fn single_class_rejected() {
        let ds = Dataset::from_rows(&[vec![1.0], vec![2.0]], &[1.0, 1.0]).unwrap();
        assert!(matches!(Gbdt::new().fit(&ds), Err(MlError::SingleClass)));
    }

    #[test]
    fn invalid_hyperparameters_rejected() {
        let ds = xor_dataset(20);
        assert!(Gbdt::new().n_trees(0).fit(&ds).is_err());
        assert!(Gbdt::new().learning_rate(0.0).fit(&ds).is_err());
        assert!(Gbdt::new().subsample(0.0).fit(&ds).is_err());
        assert!(Gbdt::new().colsample(1.5).fit(&ds).is_err());
    }

    #[test]
    fn subsample_and_colsample_still_learn() {
        let ds = xor_dataset(300);
        let mut model = Gbdt::new()
            .n_trees(60)
            .max_depth(3)
            .min_samples_leaf(2)
            .subsample(0.7)
            .colsample(0.5);
        model.fit(&ds).unwrap();
        let pred = model.predict(&ds).unwrap();
        let acc = pred.iter().zip(ds.y()).filter(|(a, b)| a == b).count() as f64 / 300.0;
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn probabilities_bounded_and_base_rate_sane() {
        let ds = xor_dataset(100);
        let mut model = Gbdt::new().n_trees(10);
        model.fit(&ds).unwrap();
        for p in model.predict_proba(&ds).unwrap() {
            assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        }
    }

    #[test]
    fn fit_observed_matches_fit_and_records_training_loop() {
        let ds = xor_dataset(120);
        let mut plain = Gbdt::new().n_trees(8).max_depth(3).min_samples_leaf(2);
        plain.fit(&ds).unwrap();
        let mut observed = Gbdt::new().n_trees(8).max_depth(3).min_samples_leaf(2);
        let mut rec = obskit::Recorder::new();
        observed.fit_observed(&ds, &mut rec).unwrap();
        assert_eq!(
            plain.predict_proba(&ds).unwrap(),
            observed.predict_proba(&ds).unwrap()
        );
        assert_eq!(rec.counter("mlkit.gbdt.boosting_rounds"), 8);
        assert!(rec.counter("mlkit.tree.split_candidates") > 0);
        assert_eq!(rec.histogram("mlkit.gbdt.tree_leaves").unwrap().count(), 8);
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = xor_dataset(100);
        let mut a = Gbdt::new().n_trees(10).subsample(0.8).seed(3);
        let mut b = Gbdt::new().n_trees(10).subsample(0.8).seed(3);
        a.fit(&ds).unwrap();
        b.fit(&ds).unwrap();
        assert_eq!(a.predict_proba(&ds).unwrap(), b.predict_proba(&ds).unwrap());
    }

    #[test]
    fn feature_importances_cover_both_xor_features() {
        let ds = xor_dataset(200);
        let mut model = Gbdt::new().n_trees(20).max_depth(3).min_samples_leaf(2);
        model.fit(&ds).unwrap();
        let imp = model.feature_importances().unwrap();
        assert_eq!(imp.len(), 2);
        assert!(imp[0] > 0 && imp[1] > 0, "xor needs both features: {imp:?}");
    }

    #[test]
    fn feature_mismatch_rejected() {
        let ds = xor_dataset(50);
        let mut model = Gbdt::new().n_trees(5);
        model.fit(&ds).unwrap();
        let wrong = Dataset::from_rows(&[vec![0.0]], &[0.0]).unwrap();
        assert!(model.predict_proba(&wrong).is_err());
    }
}
