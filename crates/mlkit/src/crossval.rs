//! Cross-validation utilities: stratified k-fold splitting and scoring.

use crate::dataset::Dataset;
use crate::metrics::ConfusionMatrix;
use crate::model::Classifier;
use crate::{MlError, Result};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Index pairs for one fold: `(train_indices, test_indices)`.
pub type FoldIndices = (Vec<usize>, Vec<usize>);

/// Produces stratified k-fold index splits: every fold's class ratio
/// approximates the dataset's.
///
/// # Errors
///
/// Returns [`MlError::InvalidParameter`] when `k < 2` or `k` exceeds the
/// minority class size, and [`MlError::SingleClass`] when a class is
/// absent.
pub fn stratified_k_fold(ds: &Dataset, k: usize, seed: u64) -> Result<Vec<FoldIndices>> {
    if k < 2 {
        return Err(MlError::InvalidParameter {
            name: "k",
            reason: format!("need k >= 2, got {k}"),
        });
    }
    let (mut pos, mut neg) = ds.class_indices();
    if pos.is_empty() || neg.is_empty() {
        return Err(MlError::SingleClass);
    }
    if k > pos.len() || k > neg.len() {
        return Err(MlError::InvalidParameter {
            name: "k",
            reason: format!(
                "k = {k} exceeds a class size ({} positives, {} negatives)",
                pos.len(),
                neg.len()
            ),
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    pos.shuffle(&mut rng);
    neg.shuffle(&mut rng);

    // Round-robin both classes over the folds.
    let mut fold_members: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, &p) in pos.iter().enumerate() {
        fold_members[i % k].push(p);
    }
    for (i, &n) in neg.iter().enumerate() {
        fold_members[i % k].push(n);
    }

    let mut out = Vec::with_capacity(k);
    for f in 0..k {
        let test: Vec<usize> = fold_members[f].clone();
        let mut train: Vec<usize> = Vec::with_capacity(ds.len() - test.len());
        for (g, members) in fold_members.iter().enumerate() {
            if g != f {
                train.extend_from_slice(members);
            }
        }
        train.shuffle(&mut rng);
        out.push((train, test));
    }
    Ok(out)
}

/// Per-fold and aggregate results of a cross-validation run.
#[derive(Debug, Clone)]
pub struct CrossValScores {
    /// Confusion matrix per fold.
    pub folds: Vec<ConfusionMatrix>,
}

impl CrossValScores {
    /// Mean F1 over folds.
    pub fn mean_f1(&self) -> f64 {
        if self.folds.is_empty() {
            return 0.0;
        }
        self.folds.iter().map(|cm| cm.f1()).sum::<f64>() / self.folds.len() as f64
    }

    /// Population standard deviation of per-fold F1.
    pub fn std_f1(&self) -> f64 {
        if self.folds.len() < 2 {
            return 0.0;
        }
        let m = self.mean_f1();
        let var = self
            .folds
            .iter()
            .map(|cm| (cm.f1() - m) * (cm.f1() - m))
            .sum::<f64>()
            / self.folds.len() as f64;
        var.sqrt()
    }

    /// Pooled confusion matrix (sums counts over folds).
    pub fn pooled(&self) -> ConfusionMatrix {
        let mut total = ConfusionMatrix::default();
        for cm in &self.folds {
            total.merge(cm);
        }
        total
    }
}

/// Runs stratified k-fold cross-validation with a classifier factory
/// (a fresh model per fold).
///
/// Equivalent to [`cross_validate_with`] at [`parkit::Threads::Serial`],
/// kept for `FnMut` factories that cannot be shared across threads.
///
/// # Errors
///
/// Propagates split and classifier errors.
pub fn cross_validate<C, F>(
    ds: &Dataset,
    k: usize,
    seed: u64,
    mut factory: F,
) -> Result<CrossValScores>
where
    C: Classifier,
    F: FnMut() -> C,
{
    let folds = stratified_k_fold(ds, k, seed)?;
    let mut out = Vec::with_capacity(k);
    for (train_idx, test_idx) in folds {
        out.push(run_fold(ds, &train_idx, &test_idx, &mut factory)?);
    }
    Ok(CrossValScores { folds: out })
}

/// Runs stratified k-fold cross-validation with folds fanned out across
/// worker threads. Folds are independent (each gets a fresh model from
/// `factory` and deterministic index splits), and the per-fold confusion
/// matrices come back in fold order, so any thread policy — including
/// [`parkit::Threads::Serial`] — produces identical scores.
///
/// # Errors
///
/// Propagates split and classifier errors; on multiple fold failures the
/// error of the lowest-numbered fold is returned, matching a serial run.
pub fn cross_validate_with<C, F>(
    ds: &Dataset,
    k: usize,
    seed: u64,
    threads: parkit::Threads,
    factory: F,
) -> Result<CrossValScores>
where
    C: Classifier,
    F: Fn() -> C + Sync,
{
    let folds = stratified_k_fold(ds, k, seed)?;
    let out = parkit::try_par_map(threads, &folds, |(train_idx, test_idx)| {
        let mut factory = &factory;
        run_fold(ds, train_idx, test_idx, &mut factory)
    })?;
    Ok(CrossValScores { folds: out })
}

/// Like [`cross_validate_with`], but records per-fold training metrics.
///
/// Each fold trains against its own [`obskit::Recorder::fork`] under a
/// `"mlkit.cv.fold"` span, and the per-fold recorders are merged back in
/// fold order — so the merged metrics are byte-identical under any thread
/// policy, serial included. The scores themselves are unchanged from
/// [`cross_validate_with`].
///
/// # Errors
///
/// Same contract as [`cross_validate_with`].
pub fn cross_validate_observed<C, F>(
    ds: &Dataset,
    k: usize,
    seed: u64,
    threads: parkit::Threads,
    rec: &mut obskit::Recorder,
    factory: F,
) -> Result<CrossValScores>
where
    C: Classifier,
    F: Fn() -> C + Sync,
{
    let folds = stratified_k_fold(ds, k, seed)?;
    let parent = &*rec;
    let out = parkit::try_par_map(threads, &folds, |(train_idx, test_idx)| {
        let mut factory = &factory;
        let mut fold_rec = parent.fork();
        let span = fold_rec.span_start("mlkit.cv.fold");
        let cm = run_fold_observed(ds, train_idx, test_idx, &mut factory, &mut fold_rec);
        fold_rec.span_end(span);
        cm.map(|cm| (cm, fold_rec))
    })?;
    let mut scores = Vec::with_capacity(out.len());
    for (cm, fold_rec) in out {
        rec.incr("mlkit.cv.folds", 1);
        rec.merge(fold_rec);
        scores.push(cm);
    }
    Ok(CrossValScores { folds: scores })
}

/// Trains and scores one fold.
fn run_fold<C: Classifier>(
    ds: &Dataset,
    train_idx: &[usize],
    test_idx: &[usize],
    factory: &mut impl FnMut() -> C,
) -> Result<ConfusionMatrix> {
    run_fold_observed(
        ds,
        train_idx,
        test_idx,
        factory,
        &mut obskit::Recorder::null(),
    )
}

/// Trains and scores one fold, recording training-loop metrics.
fn run_fold_observed<C: Classifier>(
    ds: &Dataset,
    train_idx: &[usize],
    test_idx: &[usize],
    factory: &mut impl FnMut() -> C,
    rec: &mut obskit::Recorder,
) -> Result<ConfusionMatrix> {
    let train = ds.select(train_idx);
    let test = ds.select(test_idx);
    let mut model = factory();
    model.fit_observed(&train, rec)?;
    let pred = model.predict(&test)?;
    ConfusionMatrix::from_predictions(test.y(), &pred)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gbdt::Gbdt;
    use crate::linear::LogisticRegression;

    fn dataset(n: usize) -> Dataset {
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|i| vec![(i % 20) as f32 / 20.0, ((i * 13) % 7) as f32])
            .collect();
        let y: Vec<f32> = rows
            .iter()
            .map(|r| if r[0] > 0.5 { 1.0 } else { 0.0 })
            .collect();
        Dataset::from_rows(&rows, &y).unwrap()
    }

    #[test]
    fn folds_partition_the_dataset() {
        let ds = dataset(103);
        let folds = stratified_k_fold(&ds, 5, 1).unwrap();
        assert_eq!(folds.len(), 5);
        let mut seen = vec![0u32; ds.len()];
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), ds.len());
            for &i in test {
                seen[i] += 1;
            }
            // Train and test are disjoint.
            let test_set: std::collections::BTreeSet<_> = test.iter().collect();
            assert!(train.iter().all(|i| !test_set.contains(i)));
        }
        // Every sample appears in exactly one test fold.
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn folds_are_stratified() {
        let ds = dataset(200);
        let overall = ds.n_positive() as f64 / ds.len() as f64;
        let folds = stratified_k_fold(&ds, 4, 2).unwrap();
        for (_, test) in folds {
            let sub = ds.select(&test);
            let rate = sub.n_positive() as f64 / sub.len() as f64;
            assert!(
                (rate - overall).abs() < 0.1,
                "fold rate {rate} vs overall {overall}"
            );
        }
    }

    #[test]
    fn invalid_k_rejected() {
        let ds = dataset(40);
        assert!(stratified_k_fold(&ds, 1, 0).is_err());
        assert!(stratified_k_fold(&ds, 1_000, 0).is_err());
        let single = Dataset::from_rows(&[vec![1.0], vec![2.0]], &[0.0, 0.0]).unwrap();
        assert!(stratified_k_fold(&single, 2, 0).is_err());
    }

    #[test]
    fn cross_validation_scores_a_learnable_problem() {
        let ds = dataset(200);
        let scores = cross_validate(&ds, 4, 3, || {
            LogisticRegression::new().learning_rate(1.0).epochs(150)
        })
        .unwrap();
        assert_eq!(scores.folds.len(), 4);
        assert!(scores.mean_f1() > 0.8, "mean f1 {}", scores.mean_f1());
        assert!(scores.std_f1() < 0.3);
        let pooled = scores.pooled();
        assert_eq!(pooled.total() as usize, ds.len());
    }

    #[test]
    fn gbdt_cross_validates_too() {
        let ds = dataset(160);
        let scores =
            cross_validate(&ds, 4, 5, || Gbdt::new().n_trees(15).min_samples_leaf(2)).unwrap();
        assert!(scores.mean_f1() > 0.85, "mean f1 {}", scores.mean_f1());
    }

    #[test]
    fn observed_cv_matches_plain_and_is_thread_invariant() {
        let ds = dataset(160);
        let factory = || {
            Gbdt::new()
                .n_trees(6)
                .max_depth(3)
                .min_samples_leaf(2)
                .seed(7)
        };
        let plain = cross_validate_with(&ds, 4, 5, parkit::Threads::Serial, factory).unwrap();

        let mut rec_serial = obskit::Recorder::new();
        let serial =
            cross_validate_observed(&ds, 4, 5, parkit::Threads::Serial, &mut rec_serial, factory)
                .unwrap();
        let mut rec_par = obskit::Recorder::new();
        let par =
            cross_validate_observed(&ds, 4, 5, parkit::Threads::Fixed(4), &mut rec_par, factory)
                .unwrap();

        assert_eq!(serial.folds, plain.folds);
        assert_eq!(par.folds, plain.folds);
        // Metrics merged in fold order: byte-identical snapshots.
        assert_eq!(rec_serial.snapshot_json(), rec_par.snapshot_json());
        assert_eq!(rec_serial.counter("mlkit.cv.folds"), 4);
        assert_eq!(rec_serial.counter("mlkit.gbdt.boosting_rounds"), 24);
        let span = rec_serial.span("mlkit.cv.fold").unwrap();
        assert_eq!(span.count, 4);
        assert!(span.total_ticks > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = dataset(100);
        let a = stratified_k_fold(&ds, 5, 9).unwrap();
        let b = stratified_k_fold(&ds, 5, 9).unwrap();
        assert_eq!(a, b);
    }
}
