//! Support vector machines.
//!
//! [`SvmRbf`] implements the classical soft-margin kernel SVM trained with
//! a simplified SMO (sequential minimal optimisation) procedure and an RBF
//! kernel — the quadratic-cost model that made SVM the slowest entry in the
//! paper's Table III. [`LinearSvm`] is a Pegasos-style stochastic
//! sub-gradient linear SVM for cheap large-scale baselines.
//!
//! Probabilities are produced by squashing the signed decision value
//! through a logistic link (a lightweight stand-in for Platt scaling); the
//! 0.5 probability threshold coincides with the zero decision boundary.

use crate::dataset::Dataset;
use crate::linear::sigmoid;
use crate::matrix::{dot, sq_dist};
use crate::model::Classifier;
use crate::{MlError, Result};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Soft-margin SVM with an RBF kernel, trained by simplified SMO.
///
/// Training cost grows quadratically with the number of samples. When the
/// training set exceeds [`SvmRbf::max_samples`], a stratified random subset
/// of that size is used (the subsampling is recorded and deterministic).
///
/// # Example
///
/// ```
/// use mlkit::dataset::Dataset;
/// use mlkit::model::Classifier;
/// use mlkit::svm::SvmRbf;
///
/// // Concentric classes: inner disk positive, ring negative.
/// let mut rows = Vec::new();
/// let mut y = Vec::new();
/// for i in 0..60 {
///     let a = i as f32 / 60.0 * std::f32::consts::TAU;
///     let r = if i % 2 == 0 { 0.3 } else { 1.2 };
///     rows.push(vec![r * a.cos(), r * a.sin()]);
///     y.push(if i % 2 == 0 { 1.0 } else { 0.0 });
/// }
/// let ds = Dataset::from_rows(&rows, &y)?;
/// let mut svm = SvmRbf::new().gamma(2.0).c(5.0);
/// svm.fit(&ds)?;
/// let acc = svm
///     .predict(&ds)?
///     .iter()
///     .zip(ds.y())
///     .filter(|(a, b)| a == b)
///     .count();
/// assert!(acc >= 58);
/// # Ok::<(), mlkit::MlError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SvmRbf {
    c: f32,
    gamma: f32,
    tol: f32,
    max_passes: usize,
    max_iters: usize,
    max_samples: usize,
    seed: u64,
    // Fitted state: support vectors and their coefficients.
    support_x: Vec<Vec<f32>>,
    support_coef: Vec<f32>, // alpha_i * y_i (y in {-1, +1})
    bias: f32,
    n_features: usize,
    fitted: bool,
}

impl Default for SvmRbf {
    fn default() -> SvmRbf {
        SvmRbf::new()
    }
}

impl SvmRbf {
    /// Creates an SVM with defaults `C = 1`, `gamma = 0.5`,
    /// `max_samples = 4000`.
    pub fn new() -> SvmRbf {
        SvmRbf {
            c: 1.0,
            gamma: 0.5,
            tol: 1e-3,
            max_passes: 5,
            max_iters: 10_000,
            max_samples: 4000,
            seed: 42,
            support_x: Vec::new(),
            support_coef: Vec::new(),
            bias: 0.0,
            n_features: 0,
            fitted: false,
        }
    }

    /// Sets the soft-margin penalty `C`.
    pub fn c(mut self, c: f32) -> SvmRbf {
        self.c = c;
        self
    }

    /// Sets the RBF kernel width `gamma` in `exp(-gamma * ||a-b||^2)`.
    pub fn gamma(mut self, gamma: f32) -> SvmRbf {
        self.gamma = gamma;
        self
    }

    /// Sets the KKT violation tolerance.
    pub fn tol(mut self, tol: f32) -> SvmRbf {
        self.tol = tol;
        self
    }

    /// Sets the number of violation-free passes required to stop.
    pub fn max_passes(mut self, p: usize) -> SvmRbf {
        self.max_passes = p.max(1);
        self
    }

    /// Sets the hard cap on SMO outer iterations.
    pub fn max_iters(mut self, it: usize) -> SvmRbf {
        self.max_iters = it.max(1);
        self
    }

    /// Sets the training-set size cap; larger sets are stratified-subsampled.
    pub fn max_samples(mut self, n: usize) -> SvmRbf {
        self.max_samples = n.max(2);
        self
    }

    /// Sets the RNG seed (pair selection, subsampling).
    pub fn seed(mut self, seed: u64) -> SvmRbf {
        self.seed = seed;
        self
    }

    /// Number of support vectors retained after fitting.
    pub fn n_support_vectors(&self) -> usize {
        self.support_x.len()
    }

    fn kernel(&self, a: &[f32], b: &[f32]) -> f32 {
        (-self.gamma * sq_dist(a, b)).exp()
    }

    /// Signed decision value for one row.
    fn decision(&self, row: &[f32]) -> f32 {
        let mut s = self.bias;
        for (sv, &coef) in self.support_x.iter().zip(&self.support_coef) {
            s += coef * self.kernel(sv, row);
        }
        s
    }

    fn validate(&self) -> Result<()> {
        if self.c <= 0.0 {
            return Err(MlError::InvalidParameter {
                name: "c",
                reason: format!("must be positive, got {}", self.c),
            });
        }
        if self.gamma <= 0.0 {
            return Err(MlError::InvalidParameter {
                name: "gamma",
                reason: format!("must be positive, got {}", self.gamma),
            });
        }
        Ok(())
    }
}

impl Classifier for SvmRbf {
    fn fit(&mut self, train: &Dataset) -> Result<()> {
        self.validate()?;
        if train.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        if train.n_positive() == 0 || train.n_negative() == 0 {
            return Err(MlError::SingleClass);
        }
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Stratified subsample when the training set is too large for SMO.
        let indices: Vec<usize> = if train.len() > self.max_samples {
            let (mut pos, mut neg) = train.class_indices();
            pos.shuffle(&mut rng);
            neg.shuffle(&mut rng);
            let frac = self.max_samples as f64 / train.len() as f64;
            let keep_pos = ((pos.len() as f64 * frac).round() as usize).max(1);
            let keep_neg = ((neg.len() as f64 * frac).round() as usize).max(1);
            let mut idx: Vec<usize> = pos[..keep_pos.min(pos.len())]
                .iter()
                .chain(&neg[..keep_neg.min(neg.len())])
                .copied()
                .collect();
            idx.shuffle(&mut rng);
            idx
        } else {
            (0..train.len()).collect()
        };

        let n = indices.len();
        let x: Vec<&[f32]> = indices.iter().map(|&i| train.x().row(i)).collect();
        // Labels in {-1, +1}.
        let y: Vec<f32> = indices
            .iter()
            .map(|&i| if train.y()[i] == 1.0 { 1.0 } else { -1.0 })
            .collect();

        // Full kernel matrix; bounded by max_samples^2 entries.
        let mut k = vec![0.0f32; n * n];
        for i in 0..n {
            for j in i..n {
                let v = self.kernel(x[i], x[j]);
                k[i * n + j] = v;
                k[j * n + i] = v;
            }
        }

        let mut alpha = vec![0.0f32; n];
        let mut b = 0.0f32;
        let decision = |alpha: &[f32], b: f32, k: &[f32], i: usize| -> f32 {
            let mut s = b;
            for (j, &a) in alpha.iter().enumerate() {
                if a != 0.0 {
                    s += a * y[j] * k[j * n + i];
                }
            }
            s
        };

        let mut passes = 0;
        let mut iters = 0;
        while passes < self.max_passes && iters < self.max_iters {
            iters += 1;
            let mut changed = 0;
            for i in 0..n {
                let ei = decision(&alpha, b, &k, i) - y[i];
                let violates = (y[i] * ei < -self.tol && alpha[i] < self.c)
                    || (y[i] * ei > self.tol && alpha[i] > 0.0);
                if !violates {
                    continue;
                }
                // Pick a random partner j != i.
                let mut j = rng.gen_range(0..n - 1);
                if j >= i {
                    j += 1;
                }
                let ej = decision(&alpha, b, &k, j) - y[j];
                let (ai_old, aj_old) = (alpha[i], alpha[j]);
                let (lo, hi) = if y[i] != y[j] {
                    (
                        (aj_old - ai_old).max(0.0),
                        (self.c + aj_old - ai_old).min(self.c),
                    )
                } else {
                    (
                        (ai_old + aj_old - self.c).max(0.0),
                        (ai_old + aj_old).min(self.c),
                    )
                };
                if lo >= hi {
                    continue;
                }
                let eta = 2.0 * k[i * n + j] - k[i * n + i] - k[j * n + j];
                if eta >= 0.0 {
                    continue;
                }
                let mut aj = aj_old - y[j] * (ei - ej) / eta;
                aj = aj.clamp(lo, hi);
                if (aj - aj_old).abs() < 1e-5 {
                    continue;
                }
                let ai = ai_old + y[i] * y[j] * (aj_old - aj);
                alpha[i] = ai;
                alpha[j] = aj;
                let b1 = b
                    - ei
                    - y[i] * (ai - ai_old) * k[i * n + i]
                    - y[j] * (aj - aj_old) * k[i * n + j];
                let b2 = b
                    - ej
                    - y[i] * (ai - ai_old) * k[i * n + j]
                    - y[j] * (aj - aj_old) * k[j * n + j];
                b = if ai > 0.0 && ai < self.c {
                    b1
                } else if aj > 0.0 && aj < self.c {
                    b2
                } else {
                    (b1 + b2) / 2.0
                };
                changed += 1;
            }
            if changed == 0 {
                passes += 1;
            } else {
                passes = 0;
            }
        }

        // Retain only support vectors.
        self.support_x.clear();
        self.support_coef.clear();
        for i in 0..n {
            if alpha[i] > 1e-7 {
                self.support_x.push(x[i].to_vec());
                self.support_coef.push(alpha[i] * y[i]);
            }
        }
        self.bias = b;
        self.n_features = train.n_features();
        self.fitted = true;
        if self.support_x.is_empty() {
            return Err(MlError::NumericalError(
                "smo converged to zero support vectors".into(),
            ));
        }
        Ok(())
    }

    fn predict_proba(&self, data: &Dataset) -> Result<Vec<f32>> {
        if !self.fitted {
            return Err(MlError::NotFitted);
        }
        if data.n_features() != self.n_features {
            return Err(MlError::DimensionMismatch {
                expected: format!("{} features", self.n_features),
                found: format!("{} features", data.n_features()),
            });
        }
        Ok(data
            .x()
            .rows_iter()
            .map(|row| sigmoid(2.0 * self.decision(row)))
            .collect())
    }

    fn name(&self) -> &'static str {
        "SVM"
    }
}

/// Pegasos-style linear SVM (stochastic sub-gradient descent on the
/// hinge loss with L2 regularisation).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinearSvm {
    lambda: f32,
    epochs: usize,
    pos_weight: f32,
    seed: u64,
    weights: Option<Vec<f32>>,
    bias: f32,
}

impl Default for LinearSvm {
    fn default() -> LinearSvm {
        LinearSvm::new()
    }
}

impl LinearSvm {
    /// Creates a linear SVM with defaults `lambda = 1e-4`, 20 epochs.
    pub fn new() -> LinearSvm {
        LinearSvm {
            lambda: 1e-4,
            epochs: 20,
            pos_weight: 1.0,
            seed: 42,
            weights: None,
            bias: 0.0,
        }
    }

    /// Sets the regularisation strength.
    pub fn lambda(mut self, l: f32) -> LinearSvm {
        self.lambda = l;
        self
    }

    /// Sets the number of epochs.
    pub fn epochs(mut self, e: usize) -> LinearSvm {
        self.epochs = e.max(1);
        self
    }

    /// Sets the hinge-loss weight multiplier for positive samples.
    pub fn pos_weight(mut self, w: f32) -> LinearSvm {
        self.pos_weight = w;
        self
    }

    /// Sets the RNG seed used for shuffling.
    pub fn seed(mut self, seed: u64) -> LinearSvm {
        self.seed = seed;
        self
    }
}

impl Classifier for LinearSvm {
    fn fit(&mut self, train: &Dataset) -> Result<()> {
        if train.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        if train.n_positive() == 0 || train.n_negative() == 0 {
            return Err(MlError::SingleClass);
        }
        if self.lambda <= 0.0 {
            return Err(MlError::InvalidParameter {
                name: "lambda",
                reason: format!("must be positive, got {}", self.lambda),
            });
        }
        let n = train.len();
        let d = train.n_features();
        let mut w = vec![0.0f32; d];
        let mut b = 0.0f32;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut idx: Vec<usize> = (0..n).collect();
        let mut t = 0usize;
        for _ in 0..self.epochs {
            idx.shuffle(&mut rng);
            for &i in &idx {
                t += 1;
                let eta = 1.0 / (self.lambda * t as f32);
                let row = train.x().row(i);
                let y = if train.y()[i] == 1.0 { 1.0 } else { -1.0 };
                let margin = y * (dot(&w, row) + b);
                // w <- (1 - eta*lambda) w [+ eta*y*x when margin < 1]
                let shrink = 1.0 - eta * self.lambda;
                for wj in w.iter_mut() {
                    *wj *= shrink;
                }
                if margin < 1.0 {
                    let cw = if y > 0.0 { self.pos_weight } else { 1.0 };
                    for (wj, &xj) in w.iter_mut().zip(row) {
                        *wj += eta * cw * y * xj;
                    }
                    b += eta * cw * y;
                }
            }
        }
        self.weights = Some(w);
        self.bias = b;
        Ok(())
    }

    fn predict_proba(&self, data: &Dataset) -> Result<Vec<f32>> {
        let w = self.weights.as_ref().ok_or(MlError::NotFitted)?;
        if data.n_features() != w.len() {
            return Err(MlError::DimensionMismatch {
                expected: format!("{} features", w.len()),
                found: format!("{} features", data.n_features()),
            });
        }
        Ok(data
            .x()
            .rows_iter()
            .map(|row| sigmoid(2.0 * (dot(w, row) + self.bias)))
            .collect())
    }

    fn name(&self) -> &'static str {
        "LinearSVM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_dataset(n: usize) -> Dataset {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let a = i as f32 / n as f32 * std::f32::consts::TAU;
            let r = if i % 2 == 0 { 0.3 } else { 1.2 };
            rows.push(vec![r * a.cos(), r * a.sin()]);
            y.push(if i % 2 == 0 { 1.0 } else { 0.0 });
        }
        Dataset::from_rows(&rows, &y).unwrap()
    }

    fn linear_dataset(n: usize) -> Dataset {
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|i| vec![i as f32 / n as f32, ((i * 13) % 17) as f32 / 17.0])
            .collect();
        let y: Vec<f32> = rows
            .iter()
            .map(|r| if r[0] > 0.5 { 1.0 } else { 0.0 })
            .collect();
        Dataset::from_rows(&rows, &y).unwrap()
    }

    fn accuracy<C: Classifier>(m: &C, ds: &Dataset) -> f64 {
        m.predict(ds)
            .unwrap()
            .iter()
            .zip(ds.y())
            .filter(|(a, b)| a == b)
            .count() as f64
            / ds.len() as f64
    }

    #[test]
    fn rbf_separates_nonlinear_rings() {
        let ds = ring_dataset(80);
        let mut svm = SvmRbf::new().gamma(2.0).c(5.0);
        svm.fit(&ds).unwrap();
        assert!(accuracy(&svm, &ds) > 0.95);
        assert!(svm.n_support_vectors() > 0);
    }

    #[test]
    fn rbf_not_fitted_error() {
        let ds = ring_dataset(8);
        assert!(matches!(
            SvmRbf::new().predict_proba(&ds),
            Err(MlError::NotFitted)
        ));
    }

    #[test]
    fn rbf_subsamples_large_sets() {
        let ds = linear_dataset(400);
        let mut svm = SvmRbf::new().max_samples(100).gamma(1.0);
        svm.fit(&ds).unwrap();
        // Support vectors come from the subsample only.
        assert!(svm.n_support_vectors() <= 100);
        assert!(accuracy(&svm, &ds) > 0.9);
    }

    #[test]
    fn rbf_invalid_params() {
        let ds = ring_dataset(8);
        assert!(SvmRbf::new().c(0.0).fit(&ds).is_err());
        assert!(SvmRbf::new().gamma(-1.0).fit(&ds).is_err());
    }

    #[test]
    fn rbf_single_class_rejected() {
        let ds = Dataset::from_rows(&[vec![1.0], vec![2.0]], &[1.0, 1.0]).unwrap();
        assert!(matches!(SvmRbf::new().fit(&ds), Err(MlError::SingleClass)));
    }

    #[test]
    fn rbf_probability_threshold_matches_decision_sign() {
        let ds = ring_dataset(60);
        let mut svm = SvmRbf::new().gamma(2.0).c(5.0);
        svm.fit(&ds).unwrap();
        let proba = svm.predict_proba(&ds).unwrap();
        let pred = svm.predict(&ds).unwrap();
        for (p, label) in proba.iter().zip(&pred) {
            assert_eq!(*label == 1.0, *p >= 0.5);
        }
    }

    #[test]
    fn linear_svm_separates_linear_data() {
        let ds = linear_dataset(200);
        let mut svm = LinearSvm::new().epochs(50);
        svm.fit(&ds).unwrap();
        assert!(accuracy(&svm, &ds) > 0.93);
    }

    #[test]
    fn linear_svm_not_fitted() {
        let ds = linear_dataset(10);
        assert!(matches!(
            LinearSvm::new().predict_proba(&ds),
            Err(MlError::NotFitted)
        ));
    }

    #[test]
    fn linear_svm_deterministic() {
        let ds = linear_dataset(100);
        let mut a = LinearSvm::new().seed(5);
        let mut b = LinearSvm::new().seed(5);
        a.fit(&ds).unwrap();
        b.fit(&ds).unwrap();
        assert_eq!(a.predict_proba(&ds).unwrap(), b.predict_proba(&ds).unwrap());
    }

    #[test]
    fn feature_mismatch_rejected() {
        let ds = linear_dataset(50);
        let mut svm = LinearSvm::new();
        svm.fit(&ds).unwrap();
        let wrong = Dataset::from_rows(&[vec![0.0]], &[0.0]).unwrap();
        assert!(svm.predict_proba(&wrong).is_err());
    }
}
