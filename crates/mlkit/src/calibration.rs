//! Probability calibration.
//!
//! Margin-based classifiers (SVMs in particular) produce scores whose
//! scale is not a probability. [`PlattScaler`] fits the classic Platt
//! sigmoid `p = 1 / (1 + exp(a·s + b))` to held-out scores by
//! Newton-damped gradient descent on the log loss, turning any score into
//! a calibrated probability. [`CalibratedClassifier`] wraps a
//! [`Classifier`] with a scaler fitted on a validation split.

use crate::dataset::Dataset;
use crate::linear::sigmoid;
use crate::model::Classifier;
use crate::{MlError, Result};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Platt sigmoid calibration: maps raw scores to probabilities.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlattScaler {
    a: f64,
    b: f64,
}

impl PlattScaler {
    /// Fits the sigmoid on `(score, label)` pairs by gradient descent on
    /// the log loss, with the Platt prior-corrected targets
    /// (`(n+ + 1)/(n+ + 2)` and `1/(n- + 2)`).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] for unequal lengths,
    /// [`MlError::SingleClass`] when only one class is present.
    pub fn fit(scores: &[f32], labels: &[f32]) -> Result<PlattScaler> {
        if scores.len() != labels.len() {
            return Err(MlError::DimensionMismatch {
                expected: format!("{} labels", scores.len()),
                found: format!("{} labels", labels.len()),
            });
        }
        let n_pos = labels.iter().filter(|&&l| l == 1.0).count();
        let n_neg = labels.len() - n_pos;
        if n_pos == 0 || n_neg == 0 {
            return Err(MlError::SingleClass);
        }
        // Prior-corrected targets avoid overconfident saturation.
        let t_pos = (n_pos as f64 + 1.0) / (n_pos as f64 + 2.0);
        let t_neg = 1.0 / (n_neg as f64 + 2.0);
        let targets: Vec<f64> = labels
            .iter()
            .map(|&l| if l == 1.0 { t_pos } else { t_neg })
            .collect();

        // Gradient descent with decaying step on (a, b);
        // p_i = sigmoid(-(a s_i + b)) per Platt's sign convention folded
        // into a direct parameterisation p_i = sigmoid(a s_i + b).
        let mut a = 1.0f64;
        let mut b = ((n_pos as f64 + 1.0) / (n_neg as f64 + 1.0)).ln();
        let n = scores.len() as f64;
        for iter in 0..500 {
            let mut ga = 0.0f64;
            let mut gb = 0.0f64;
            for (&s, &t) in scores.iter().zip(&targets) {
                let p = sigmoid((a * s as f64 + b) as f32) as f64;
                let err = p - t;
                ga += err * s as f64;
                gb += err;
            }
            let lr = 2.0 / (1.0 + 0.02 * iter as f64);
            a -= lr * ga / n;
            b -= lr * gb / n;
        }
        if !a.is_finite() || !b.is_finite() {
            return Err(MlError::NumericalError("platt calibration diverged".into()));
        }
        Ok(PlattScaler { a, b })
    }

    /// The fitted `(a, b)` parameters.
    pub fn parameters(&self) -> (f64, f64) {
        (self.a, self.b)
    }

    /// Calibrated probability for one score.
    pub fn calibrate(&self, score: f32) -> f32 {
        sigmoid((self.a * score as f64 + self.b) as f32)
    }

    /// Calibrates a slice of scores.
    pub fn calibrate_all(&self, scores: &[f32]) -> Vec<f32> {
        scores.iter().map(|&s| self.calibrate(s)).collect()
    }
}

/// A classifier whose probability output is recalibrated with a Platt
/// sigmoid fitted on an internal validation split.
#[derive(Debug, Clone)]
pub struct CalibratedClassifier<C> {
    inner: C,
    holdout_fraction: f64,
    seed: u64,
    scaler: Option<PlattScaler>,
}

impl<C: Classifier> CalibratedClassifier<C> {
    /// Wraps `inner`; `holdout_fraction` of the training data is held out
    /// for calibration (default-style: pass 0.2).
    pub fn new(inner: C, holdout_fraction: f64, seed: u64) -> CalibratedClassifier<C> {
        CalibratedClassifier {
            inner,
            holdout_fraction,
            seed,
            scaler: None,
        }
    }

    /// The wrapped classifier.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// The fitted scaler, if any.
    pub fn scaler(&self) -> Option<&PlattScaler> {
        self.scaler.as_ref()
    }
}

impl<C: Classifier> Classifier for CalibratedClassifier<C> {
    fn fit(&mut self, train: &Dataset) -> Result<()> {
        if !(self.holdout_fraction > 0.0 && self.holdout_fraction < 1.0) {
            return Err(MlError::InvalidParameter {
                name: "holdout_fraction",
                reason: format!("must be in (0, 1), got {}", self.holdout_fraction),
            });
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let (fit_set, holdout) = train.train_test_split(self.holdout_fraction, &mut rng)?;
        if holdout.n_positive() == 0 || holdout.n_negative() == 0 {
            // Fall back: train on everything, no calibration.
            self.inner.fit(train)?;
            self.scaler = None;
            return Ok(());
        }
        self.inner.fit(&fit_set)?;
        let scores = self.inner.predict_proba(&holdout)?;
        self.scaler = Some(PlattScaler::fit(&scores, holdout.y())?);
        Ok(())
    }

    fn predict_proba(&self, data: &Dataset) -> Result<Vec<f32>> {
        let raw = self.inner.predict_proba(data)?;
        Ok(match &self.scaler {
            Some(s) => s.calibrate_all(&raw),
            None => raw,
        })
    }

    fn name(&self) -> &'static str {
        "Calibrated"
    }
}

/// Expected calibration error over `n_bins` equal-width probability bins:
/// the weighted mean |empirical positive rate − mean predicted
/// probability| per bin.
///
/// # Errors
///
/// Returns [`MlError::DimensionMismatch`] for unequal lengths and
/// [`MlError::InvalidParameter`] for zero bins or empty input.
pub fn expected_calibration_error(proba: &[f32], labels: &[f32], n_bins: usize) -> Result<f64> {
    if proba.len() != labels.len() {
        return Err(MlError::DimensionMismatch {
            expected: format!("{} labels", proba.len()),
            found: format!("{} labels", labels.len()),
        });
    }
    if n_bins == 0 || proba.is_empty() {
        return Err(MlError::InvalidParameter {
            name: "n_bins",
            reason: "need non-empty input and n_bins > 0".into(),
        });
    }
    let mut bin_pos = vec![0.0f64; n_bins];
    let mut bin_sum = vec![0.0f64; n_bins];
    let mut bin_n = vec![0usize; n_bins];
    for (&p, &l) in proba.iter().zip(labels) {
        let b = ((p as f64 * n_bins as f64) as usize).min(n_bins - 1);
        bin_pos[b] += l as f64;
        bin_sum[b] += p as f64;
        bin_n[b] += 1;
    }
    let total = proba.len() as f64;
    let mut ece = 0.0;
    for b in 0..n_bins {
        if bin_n[b] == 0 {
            continue;
        }
        let rate = bin_pos[b] / bin_n[b] as f64;
        let conf = bin_sum[b] / bin_n[b] as f64;
        ece += (bin_n[b] as f64 / total) * (rate - conf).abs();
    }
    Ok(ece)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::svm::LinearSvm;

    fn scores_and_labels(n: usize) -> (Vec<f32>, Vec<f32>) {
        // Scores correlated with labels but badly scaled.
        let mut scores = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let pos = i % 3 == 0;
            let noise = ((i * 7) % 13) as f32 / 13.0 * 0.2;
            scores.push(if pos { 0.62 + noise } else { 0.48 + noise });
            labels.push(if pos { 1.0 } else { 0.0 });
        }
        (scores, labels)
    }

    #[test]
    fn platt_improves_calibration_error() {
        let (scores, labels) = scores_and_labels(600);
        let before = expected_calibration_error(&scores, &labels, 10).unwrap();
        let scaler = PlattScaler::fit(&scores, &labels).unwrap();
        let calibrated = scaler.calibrate_all(&scores);
        let after = expected_calibration_error(&calibrated, &labels, 10).unwrap();
        assert!(after < before, "ece {after} not below {before}");
    }

    #[test]
    fn platt_is_monotone_in_score_direction() {
        let (scores, labels) = scores_and_labels(600);
        let scaler = PlattScaler::fit(&scores, &labels).unwrap();
        let (a, _) = scaler.parameters();
        // Higher score -> higher probability when a > 0.
        assert!(a > 0.0);
        assert!(scaler.calibrate(0.9) > scaler.calibrate(0.1));
    }

    #[test]
    fn platt_rejects_degenerate_input() {
        assert!(PlattScaler::fit(&[0.5, 0.6], &[1.0, 1.0]).is_err());
        assert!(PlattScaler::fit(&[0.5], &[1.0, 0.0]).is_err());
    }

    #[test]
    fn calibrated_classifier_wraps_and_calibrates() {
        // Linearly separable data with margin-y scores from a linear SVM.
        let rows: Vec<Vec<f32>> = (0..300)
            .map(|i| vec![i as f32 / 300.0, ((i * 11) % 17) as f32 / 17.0])
            .collect();
        let y: Vec<f32> = rows
            .iter()
            .map(|r| if r[0] > 0.5 { 1.0 } else { 0.0 })
            .collect();
        let ds = Dataset::from_rows(&rows, &y).unwrap();
        let mut model = CalibratedClassifier::new(LinearSvm::new().epochs(30), 0.25, 3);
        model.fit(&ds).unwrap();
        assert!(model.scaler().is_some());
        let proba = model.predict_proba(&ds).unwrap();
        for p in &proba {
            assert!((0.0..=1.0).contains(p));
        }
        // Still a decent classifier after calibration.
        let pred = model.predict(&ds).unwrap();
        let acc = pred.iter().zip(ds.y()).filter(|(a, b)| a == b).count() as f64 / 300.0;
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn ece_zero_for_perfectly_calibrated() {
        // Probability 0.5 samples with exactly half positive.
        let proba = vec![0.5f32; 100];
        let labels: Vec<f32> = (0..100).map(|i| (i % 2) as f32).collect();
        let ece = expected_calibration_error(&proba, &labels, 10).unwrap();
        assert!(ece < 1e-9);
    }

    #[test]
    fn ece_validates() {
        assert!(expected_calibration_error(&[0.5], &[1.0, 0.0], 10).is_err());
        assert!(expected_calibration_error(&[], &[], 10).is_err());
        assert!(expected_calibration_error(&[0.5], &[1.0], 0).is_err());
    }
}
