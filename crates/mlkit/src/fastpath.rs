//! Compiled inference: flat, branch-free scoring for fitted models.
//!
//! The interpreted predictors walk per-tree [`enum@crate::tree`] node
//! arenas — a pointer-chasing, match-per-node loop whose cost is
//! dominated by branch mispredictions and cache misses. This module
//! *compiles* a fitted model into a contiguous struct-of-arrays form and
//! scores batches out of a reusable column-major [`FeatureFrame`], so the
//! hot loop is a fixed-count, predicated walk over five flat arrays with
//! zero allocation per batch.
//!
//! Layout ([`CompiledGbdt`]): every tree's nodes are appended to one
//! shared table in breadth-first order (hot upper levels stay adjacent),
//! children numbered *right first* so every split satisfies
//! `left == right + 1`, and a leaf is encoded as a *self-loop*
//! (`left == right == self`). From that flattening the compiler derives
//! a packed traversal form — normally one 64-bit word per node holding
//! the threshold bits, feature index, and child pointer (the *narrow*
//! form; a *wide* fallback with a separate child array covers ensembles
//! past 2^16 nodes or features) — so a step is one node load, one
//! feature gather, and pure arithmetic:
//!
//! ```text
//! next = kid[n] + (row[feature[n]] < threshold[n])   // 0 → right, 1 → left
//! ```
//!
//! `v < t` is false for NaN, which lands on `kid` — the right child,
//! exactly like the interpreted `row[f] < t` comparison. Leaves store a
//! NaN threshold and `kid == self`, so the predicate is false for
//! *every* value (NaN included) and the walk parks. A tree's walk runs
//! exactly `depth` iterations regardless of where the row lands, so
//! there is no data-dependent control flow at all.
//!
//! Batch scoring tiles the rows ([`CompiledGbdt::predict_proba_into`])
//! and walks eight rows in lockstep per tree. The lockstep lanes are
//! the decisive structure for production-sized ensembles: once the node
//! tables outgrow the upper cache levels, the interpreted walk eats one
//! serialized miss per step while the eight independent lane chains
//! keep eight misses in flight. Tiling bounds the feature working set
//! per ensemble sweep, and the [`FeatureFrame`] pads its column stride
//! away from 4 KiB multiples so tiled columns do not alias onto the
//! same cache sets.
//!
//! Bit-exactness is a hard contract, not an aspiration: compilation
//! stores the same `f32` thresholds and leaf values the interpreted
//! trees hold, accumulation runs in the same order with the same
//! operations (`score += learning_rate * leaf` per tree, then
//! [`sigmoid`]), and `tests/fastpath_equivalence.rs` holds the two paths
//! to identical bits across randomly generated ensembles.

use crate::gbdt::Gbdt;
use crate::linear::sigmoid;
use crate::{MlError, Result};

/// Struct-of-arrays node storage shared by every tree of a compiled
/// ensemble — the flattening artifact the packed traversal arrays are
/// derived from. Parallel arrays, indexed by node id:
///
/// * `feature[n]` / `threshold[n]` — the split predicate (`+∞`
///   threshold on leaves),
/// * `left[n]` / `right[n]` — child ids (`n` itself on leaves; splits
///   always satisfy `left == right + 1` per the right-first BFS), and
/// * `value[n]` — the leaf value (`0.0` on internal nodes).
#[derive(Debug, Clone, Default)]
pub(crate) struct NodeTables {
    pub(crate) feature: Vec<u32>,
    pub(crate) threshold: Vec<f32>,
    pub(crate) left: Vec<u32>,
    pub(crate) right: Vec<u32>,
    pub(crate) value: Vec<f32>,
}

impl NodeTables {
    pub(crate) fn len(&self) -> usize {
        self.feature.len()
    }

    pub(crate) fn push(&mut self, feature: u32, threshold: f32, left: u32, right: u32, value: f32) {
        self.feature.push(feature);
        self.threshold.push(threshold);
        self.left.push(left);
        self.right.push(right);
        self.value.push(value);
    }
}

/// A fitted [`Gbdt`] flattened for branch-free batch scoring.
///
/// Built with [`Gbdt::compile`]; scores with [`CompiledGbdt::proba_row`]
/// (one row) or [`CompiledGbdt::predict_proba_into`] (a whole
/// [`FeatureFrame`], no allocation). Produces bit-identical
/// probabilities to the interpreted
/// [`Classifier::predict_proba`](crate::model::Classifier::predict_proba).
#[derive(Debug, Clone)]
pub struct CompiledGbdt {
    tables: NodeTables,
    /// Packed traversal mirror of `tables`, one 64-bit word per node
    /// with the threshold bits in the high half. Leaves carry NaN
    /// threshold bits so `v < t` is false for every `v`. In the narrow
    /// form the low half is `feature << 16 | kid`, so a step is a
    /// single node load; the wide form stores the feature alone and
    /// reads `kid` from its own array.
    packed: Vec<u64>,
    /// Wide form only: right-child id for splits (`left` is `kid + 1`),
    /// self for leaves. Empty in the narrow form.
    kid: Vec<u32>,
    /// Whether `packed` uses the narrow (single-load) encoding. True
    /// whenever node ids and feature indices fit in 16 bits — every
    /// realistically sized ensemble.
    narrow: bool,
    /// Node id of each tree's root, in boosting order.
    roots: Vec<u32>,
    /// Per-tree walk length: the tree's maximum leaf depth.
    tree_steps: Vec<u32>,
    base_score: f32,
    learning_rate: f32,
    n_features: usize,
    threshold: f32,
}

/// Rows per scoring tile: bounds the feature working set (tile rows ×
/// all columns) while every tree of the ensemble walks it, so huge
/// batches do not stream the whole frame from memory once per tree.
const TILE: usize = 1024;
/// Rows walked in lockstep. Their independent gathers and node loads
/// overlap, which is where large ensembles win big: eight cache misses
/// in flight instead of the interpreted walk's one.
const LANES: usize = 8;

/// Builds the packed traversal arrays from flattened node tables.
///
/// Narrow form: `threshold_bits << 32 | feature << 16 | kid` in one
/// word, empty `kid` array. Wide form: `threshold_bits << 32 | feature`
/// with `kid` alongside. Leaves get NaN threshold bits and a self `kid`
/// in both forms so the walk parks on them.
fn pack_tables(tables: &NodeTables, narrow: bool) -> (Vec<u64>, Vec<u32>) {
    let mut packed = Vec::with_capacity(tables.len());
    let mut kid = Vec::with_capacity(if narrow { 0 } else { tables.len() });
    for n in 0..tables.len() {
        let leaf = tables.left[n] == tables.right[n];
        let t_bits = if leaf {
            f32::NAN.to_bits()
        } else {
            debug_assert_eq!(tables.left[n], tables.right[n] + 1, "right-first BFS");
            tables.threshold[n].to_bits()
        };
        if narrow {
            packed.push(
                u64::from(t_bits) << 32
                    | u64::from(tables.feature[n]) << 16
                    | u64::from(tables.right[n]),
            );
        } else {
            packed.push(u64::from(t_bits) << 32 | u64::from(tables.feature[n]));
            kid.push(tables.right[n]);
        }
    }
    (packed, kid)
}

impl CompiledGbdt {
    /// Flattens a fitted ensemble.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::NotFitted`] when the model holds no trees —
    /// the same error the interpreted `predict_proba` raises.
    pub(crate) fn from_gbdt(model: &Gbdt) -> Result<CompiledGbdt> {
        use crate::model::Classifier;
        let trees = model.fitted_trees();
        if trees.is_empty() {
            return Err(MlError::NotFitted);
        }
        let mut tables = NodeTables::default();
        let mut roots = Vec::with_capacity(trees.len());
        let mut tree_steps = Vec::with_capacity(trees.len());
        for tree in trees {
            roots.push(tables.len() as u32);
            tree_steps.push(tree.flatten_into(&mut tables));
        }
        if tables.len() > u32::MAX as usize {
            return Err(MlError::InvalidParameter {
                name: "n_nodes",
                reason: format!("ensemble has {} nodes; node ids are u32", tables.len()),
            });
        }
        let narrow = tables.len() <= 1 << 16 && model.fitted_n_features() <= 1 << 16;
        let (packed, kid) = pack_tables(&tables, narrow);
        Ok(CompiledGbdt {
            tables,
            packed,
            kid,
            narrow,
            roots,
            tree_steps,
            base_score: model.fitted_base_score(),
            learning_rate: model.shrinkage(),
            n_features: model.fitted_n_features(),
            threshold: model.threshold(),
        })
    }

    /// Number of features the model was fitted on.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of trees in the compiled ensemble.
    pub fn n_trees(&self) -> usize {
        self.roots.len()
    }

    /// Total nodes across all flattened trees.
    pub fn n_nodes(&self) -> usize {
        self.tables.len()
    }

    /// The longest predicated walk any tree performs (max leaf depth).
    pub fn max_steps(&self) -> u32 {
        self.tree_steps.iter().copied().max().unwrap_or(0)
    }

    /// The decision threshold carried over from the interpreted model.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// Decoded traversal fields of node `n`: `(threshold_bits, feature,
    /// kid)`, independent of the packed form.
    #[inline]
    fn node_parts(&self, n: usize) -> (u32, u32, u32) {
        let w = self.packed[n];
        if self.narrow {
            (
                (w >> 32) as u32,
                (w >> 16) as u32 & 0xFFFF,
                w as u32 & 0xFFFF,
            )
        } else {
            ((w >> 32) as u32, w as u32, self.kid[n])
        }
    }

    /// Adds one tree's shrunk leaf values into the tile `out`, which
    /// covers frame rows `row0 .. row0 + out.len()`. Walks [`LANES`]
    /// rows in lockstep so their independent gathers overlap; narrow
    /// ensembles take the single-load-per-step kernel.
    fn score_tree_tile(
        &self,
        root: u32,
        steps: u32,
        frame: &FeatureFrame,
        row0: usize,
        out: &mut [f32],
    ) {
        if self.narrow {
            self.score_tree_tile_narrow(root, steps, frame, row0, out);
        } else {
            self.score_tree_tile_wide(root, steps, frame, row0, out);
        }
    }

    /// Narrow kernel: the whole node — threshold, feature, child — comes
    /// from one 64-bit load, so a step is one node load, one feature
    /// gather, and arithmetic.
    fn score_tree_tile_narrow(
        &self,
        root: u32,
        steps: u32,
        frame: &FeatureFrame,
        row0: usize,
        out: &mut [f32],
    ) {
        let packed = &self.packed;
        let data = &frame.data;
        let stride = frame.cap_rows;
        let n = out.len();
        let mut i = 0;
        while i + LANES <= n {
            let mut cur = [root; LANES];
            for _ in 0..steps {
                for (lane, c) in cur.iter_mut().enumerate() {
                    let w = packed[*c as usize];
                    let t = f32::from_bits((w >> 32) as u32);
                    let v = data[((w >> 16) as u32 & 0xFFFF) as usize * stride + row0 + i + lane];
                    *c = (w as u32 & 0xFFFF) + u32::from(v < t);
                }
            }
            for (lane, c) in cur.iter().enumerate() {
                out[i + lane] += self.learning_rate * self.tables.value[*c as usize];
            }
            i += LANES;
        }
        while i < n {
            let mut node = root as usize;
            for _ in 0..steps {
                let w = packed[node];
                let t = f32::from_bits((w >> 32) as u32);
                let v = data[((w >> 16) as u32 & 0xFFFF) as usize * stride + row0 + i];
                node = ((w as u32 & 0xFFFF) + u32::from(v < t)) as usize;
            }
            out[i] += self.learning_rate * self.tables.value[node];
            i += 1;
        }
    }

    /// Wide kernel (fallback for ensembles whose node ids or feature
    /// indices exceed 16 bits): the child pointer lives in its own
    /// array, so a step is two node loads plus the gather.
    fn score_tree_tile_wide(
        &self,
        root: u32,
        steps: u32,
        frame: &FeatureFrame,
        row0: usize,
        out: &mut [f32],
    ) {
        let packed = &self.packed;
        let kid = &self.kid;
        let data = &frame.data;
        let stride = frame.cap_rows;
        let n = out.len();
        let mut i = 0;
        while i + LANES <= n {
            let mut cur = [root; LANES];
            for _ in 0..steps {
                for (lane, c) in cur.iter_mut().enumerate() {
                    let node = *c as usize;
                    let w = packed[node];
                    let t = f32::from_bits((w >> 32) as u32);
                    let v = data[(w as u32) as usize * stride + row0 + i + lane];
                    *c = kid[node] + u32::from(v < t);
                }
            }
            for (lane, c) in cur.iter().enumerate() {
                out[i + lane] += self.learning_rate * self.tables.value[*c as usize];
            }
            i += LANES;
        }
        while i < n {
            let mut node = root as usize;
            for _ in 0..steps {
                let w = packed[node];
                let t = f32::from_bits((w >> 32) as u32);
                let v = data[(w as u32) as usize * stride + row0 + i];
                node = (kid[node] + u32::from(v < t)) as usize;
            }
            out[i] += self.learning_rate * self.tables.value[node];
            i += 1;
        }
    }

    /// Raw additive score (log-odds) for one feature row. Bit-identical
    /// to the interpreted accumulation.
    ///
    /// # Panics
    ///
    /// Panics if `row` has fewer features than the model expects.
    pub fn raw_score_row(&self, row: &[f32]) -> f32 {
        assert!(row.len() >= self.n_features, "feature row too short");
        let mut s = self.base_score;
        for (k, &root) in self.roots.iter().enumerate() {
            let mut node = root as usize;
            for _ in 0..self.tree_steps[k] {
                let (t_bits, f, kid) = self.node_parts(node);
                let t = f32::from_bits(t_bits);
                let v = row[f as usize];
                node = (kid + u32::from(v < t)) as usize;
            }
            s += self.learning_rate * self.tables.value[node];
        }
        s
    }

    /// Positive-class probability for one feature row.
    ///
    /// # Panics
    ///
    /// Panics if `row` has fewer features than the model expects.
    pub fn proba_row(&self, row: &[f32]) -> f32 {
        sigmoid(self.raw_score_row(row))
    }

    /// Scores every row of `frame` into `out` without allocating.
    ///
    /// `out` doubles as the raw-score accumulator: it is filled with the
    /// base score, the rows are processed in [`TILE`]-sized tiles whose
    /// feature columns stay cache-resident while every tree adds its
    /// shrunk leaf value in boosting order, and a final pass applies
    /// [`sigmoid`]. Per row that is the exact operation sequence of the
    /// interpreted path, so the result is bit-identical.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] when the frame width
    /// differs from the fitted feature count or `out.len()` differs from
    /// the frame's row count.
    pub fn predict_proba_into(&self, frame: &FeatureFrame, out: &mut [f32]) -> Result<()> {
        if frame.n_cols() != self.n_features {
            return Err(MlError::DimensionMismatch {
                expected: format!("{} features", self.n_features),
                found: format!("{} features", frame.n_cols()),
            });
        }
        if out.len() != frame.n_rows() {
            return Err(MlError::DimensionMismatch {
                expected: format!("{} output slots", frame.n_rows()),
                found: format!("{} output slots", out.len()),
            });
        }
        out.fill(self.base_score);
        let n_rows = out.len();
        let mut row0 = 0;
        while row0 < n_rows {
            let end = (row0 + TILE).min(n_rows);
            for (k, &root) in self.roots.iter().enumerate() {
                self.score_tree_tile(root, self.tree_steps[k], frame, row0, &mut out[row0..end]);
            }
            row0 = end;
        }
        for o in out.iter_mut() {
            *o = sigmoid(*o);
        }
        Ok(())
    }

    /// Allocating convenience wrapper around
    /// [`CompiledGbdt::predict_proba_into`].
    ///
    /// # Errors
    ///
    /// See [`CompiledGbdt::predict_proba_into`].
    pub fn predict_proba(&self, frame: &FeatureFrame) -> Result<Vec<f32>> {
        let mut out = vec![0.0f32; frame.n_rows()];
        self.predict_proba_into(frame, &mut out)?;
        Ok(out)
    }
}

/// A fitted [`LogisticRegression`](crate::linear::LogisticRegression)
/// reduced to its weight vector, scoring out of a [`FeatureFrame`] with
/// the same multiply-accumulate order as the interpreted
/// [`dot`](crate::matrix::dot)-based path.
#[derive(Debug, Clone)]
pub struct CompiledLinear {
    weights: Vec<f32>,
    bias: f32,
    threshold: f32,
}

impl CompiledLinear {
    /// Wraps fitted weights. `threshold` is the decision threshold the
    /// interpreted model reports.
    pub fn new(weights: Vec<f32>, bias: f32, threshold: f32) -> CompiledLinear {
        CompiledLinear {
            weights,
            bias,
            threshold,
        }
    }

    /// Number of features the model was fitted on.
    pub fn n_features(&self) -> usize {
        self.weights.len()
    }

    /// The decision threshold carried over from the interpreted model.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// Positive-class probability for one feature row.
    ///
    /// # Panics
    ///
    /// Panics if `row` is shorter than the weight vector.
    pub fn proba_row(&self, row: &[f32]) -> f32 {
        sigmoid(crate::matrix::dot(&self.weights, &row[..self.weights.len()]) + self.bias)
    }

    /// Scores every row of `frame` into `out` without allocating.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] on frame-width or
    /// output-length mismatch.
    pub fn predict_proba_into(&self, frame: &FeatureFrame, out: &mut [f32]) -> Result<()> {
        if frame.n_cols() != self.weights.len() {
            return Err(MlError::DimensionMismatch {
                expected: format!("{} features", self.weights.len()),
                found: format!("{} features", frame.n_cols()),
            });
        }
        if out.len() != frame.n_rows() {
            return Err(MlError::DimensionMismatch {
                expected: format!("{} output slots", frame.n_rows()),
                found: format!("{} output slots", out.len()),
            });
        }
        for (i, o) in out.iter_mut().enumerate() {
            // Same left-to-right multiply-accumulate as `matrix::dot`.
            let mut acc = 0.0f32;
            for (j, &w) in self.weights.iter().enumerate() {
                acc += w * frame.get(i, j);
            }
            *o = sigmoid(acc + self.bias);
        }
        Ok(())
    }
}

/// A reusable column-major (struct-of-arrays) feature buffer.
///
/// Rows are pushed row-wise ([`FeatureFrame::push_row`]) but stored
/// column-contiguously with a fixed row capacity as the stride, so the
/// tree walk's per-feature gathers of neighbouring rows land in the same
/// cache lines. [`FeatureFrame::reset`] rewinds the frame without
/// releasing its allocation: a serve loop that resets and refills each
/// batch stops allocating once the largest batch has been seen.
#[derive(Debug, Clone, Default)]
pub struct FeatureFrame {
    /// Column-major storage: feature `j` occupies
    /// `data[j * cap_rows ..][.. n_rows]`.
    data: Vec<f32>,
    n_cols: usize,
    n_rows: usize,
    cap_rows: usize,
}

/// Nudges a row capacity so the column stride in bytes is not a
/// multiple of 4 KiB: power-of-two strides map every column of a row
/// tile onto the same cache sets, serialising the tree walk's gathers.
fn pad_stride(rows: usize) -> usize {
    if (rows * 4).is_multiple_of(4096) {
        rows + 8
    } else {
        rows
    }
}

impl FeatureFrame {
    /// An empty frame pre-sized for `n_cols` features × `rows` rows.
    pub fn with_capacity(n_cols: usize, rows: usize) -> FeatureFrame {
        let cap_rows = pad_stride(rows.max(1));
        FeatureFrame {
            data: vec![0.0; n_cols * cap_rows],
            n_cols,
            n_rows: 0,
            cap_rows,
        }
    }

    /// Rewinds to zero rows and `n_cols` features, keeping the
    /// allocation when it is already large enough.
    pub fn reset(&mut self, n_cols: usize) {
        self.n_cols = n_cols;
        self.n_rows = 0;
        let need = n_cols * self.cap_rows;
        if self.data.len() < need {
            self.data.resize(need, 0.0);
        }
    }

    /// Number of rows currently held.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of feature columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Whether the frame holds no rows.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// Appends one feature row, scattering it across the columns.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] when `row` is not exactly
    /// `n_cols` wide.
    pub fn push_row(&mut self, row: &[f32]) -> Result<()> {
        if row.len() != self.n_cols {
            return Err(MlError::DimensionMismatch {
                expected: format!("{} features", self.n_cols),
                found: format!("{} features", row.len()),
            });
        }
        if self.n_rows == self.cap_rows {
            self.grow();
        }
        for (j, &v) in row.iter().enumerate() {
            self.data[j * self.cap_rows + self.n_rows] = v;
        }
        self.n_rows += 1;
        Ok(())
    }

    /// Doubles the row capacity, re-laying the columns out under the new
    /// stride.
    fn grow(&mut self) {
        let new_cap = pad_stride((self.cap_rows * 2).max(64));
        let mut data = vec![0.0f32; self.n_cols * new_cap];
        for j in 0..self.n_cols {
            let src = &self.data[j * self.cap_rows..j * self.cap_rows + self.n_rows];
            data[j * new_cap..j * new_cap + self.n_rows].copy_from_slice(src);
        }
        self.data = data;
        self.cap_rows = new_cap;
    }

    /// Value at row `i`, feature `j`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range (out-of-range `i` below the
    /// capacity reads stale storage and is a logic error; the scoring
    /// entry points validate row counts up front).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        self.data[j * self.cap_rows + i]
    }

    /// Builds a frame from row-major rows (test/bench convenience).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] on ragged rows.
    pub fn from_rows(rows: &[Vec<f32>]) -> Result<FeatureFrame> {
        let n_cols = rows.first().map_or(0, Vec::len);
        let mut frame = FeatureFrame::with_capacity(n_cols, rows.len());
        for row in rows {
            frame.push_row(row)?;
        }
        Ok(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::linear::LogisticRegression;
    use crate::model::Classifier;

    /// A dataset whose single feature takes the values {0, 1, 2}, so a
    /// 2-bin quantile binner puts its only cut exactly at 1.5.
    fn three_level_dataset(n: usize) -> Dataset {
        let rows: Vec<Vec<f32>> = (0..n).map(|i| vec![(i % 3) as f32]).collect();
        let y: Vec<f32> = rows
            .iter()
            .map(|r| if r[0] >= 1.5 { 1.0 } else { 0.0 })
            .collect();
        Dataset::from_rows(&rows, &y).unwrap()
    }

    fn xor_dataset(n: usize) -> Dataset {
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|i| {
                let a = (i % 2) as f32 + (i % 7) as f32 * 0.01;
                let b = ((i / 2) % 2) as f32 + (i % 5) as f32 * 0.01;
                vec![a, b]
            })
            .collect();
        let y: Vec<f32> = rows
            .iter()
            .map(|r| {
                if (r[0] > 0.5) != (r[1] > 0.5) {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        Dataset::from_rows(&rows, &y).unwrap()
    }

    fn assert_bitwise_parity(model: &Gbdt, compiled: &CompiledGbdt, ds: &Dataset) {
        let interpreted = model.predict_proba(ds).unwrap();
        let frame = FeatureFrame::from_rows(
            &(0..ds.len())
                .map(|i| ds.x().row(i).to_vec())
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let fast = compiled.predict_proba(&frame).unwrap();
        for (i, (a, b)) in interpreted.iter().zip(&fast).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "row {i}: {a} vs {b}");
        }
        // Single-row entry point agrees with the batch one.
        for (i, f) in fast.iter().enumerate() {
            let p = compiled.proba_row(ds.x().row(i));
            assert_eq!(p.to_bits(), f.to_bits(), "proba_row at {i}");
        }
    }

    #[test]
    fn empty_ensemble_is_not_fitted() {
        assert!(matches!(Gbdt::new().compile(), Err(MlError::NotFitted)));
    }

    #[test]
    fn stump_trees_have_zero_steps_and_match() {
        let ds = xor_dataset(60);
        // min_samples_leaf too large to ever split: every tree is a
        // single leaf.
        let mut model = Gbdt::new().n_trees(5).min_samples_leaf(100);
        model.fit(&ds).unwrap();
        let compiled = model.compile().unwrap();
        assert_eq!(compiled.n_trees(), 5);
        assert_eq!(compiled.n_nodes(), 5);
        assert_eq!(compiled.max_steps(), 0);
        assert_bitwise_parity(&model, &compiled, &ds);
    }

    #[test]
    fn deep_trees_walk_their_full_depth_and_match() {
        // Pseudo-random labels force deep, unbalanced trees.
        let rows: Vec<Vec<f32>> = (0..256).map(|i| vec![i as f32]).collect();
        let y: Vec<f32> = (0..256u64)
            .map(|i| ((i.wrapping_mul(2654435761) >> 7) % 2) as f32)
            .collect();
        let ds = Dataset::from_rows(&rows, &y).unwrap();
        let mut model = Gbdt::new()
            .n_trees(4)
            .max_depth(7)
            .min_samples_leaf(1)
            .n_bins(256);
        model.fit(&ds).unwrap();
        let compiled = model.compile().unwrap();
        assert!(
            compiled.max_steps() >= 3 && compiled.max_steps() <= 7,
            "expected a deep walk, got {} steps",
            compiled.max_steps()
        );
        assert_bitwise_parity(&model, &compiled, &ds);
    }

    #[test]
    fn threshold_boundary_routes_like_interpreted() {
        let ds = three_level_dataset(90);
        let mut model = Gbdt::new().n_trees(8).n_bins(2).min_samples_leaf(2);
        model.fit(&ds).unwrap();
        let compiled = model.compile().unwrap();
        assert_bitwise_parity(&model, &compiled, &ds);
        // The binner's only cut is (1 + 2) / 2 = 1.5. A value exactly on
        // the threshold must take the right branch (`v < t` is false) on
        // both paths.
        let queries = vec![vec![1.5f32], vec![1.5 - 1e-4], vec![2.0], vec![1.0]];
        let qds = Dataset::from_rows(&queries, &[0.0; 4]).unwrap();
        let interp = model.predict_proba(&qds).unwrap();
        for (q, want) in queries.iter().zip(&interp) {
            let got = compiled.proba_row(q);
            assert_eq!(got.to_bits(), want.to_bits(), "query {q:?}");
        }
        // Tie goes right: exactly-on-threshold scores like the right
        // plateau, not the left one.
        assert_eq!(interp[0].to_bits(), interp[2].to_bits());
        assert_ne!(interp[0].to_bits(), interp[3].to_bits());
    }

    #[test]
    fn nan_features_take_the_right_branch_on_both_paths() {
        let ds = three_level_dataset(90);
        let mut model = Gbdt::new().n_trees(6).n_bins(2).min_samples_leaf(2);
        model.fit(&ds).unwrap();
        let compiled = model.compile().unwrap();
        // `NaN < t` is false on both paths, so a NaN row must score
        // exactly like an always-right row.
        let nan = compiled.proba_row(&[f32::NAN]);
        let right = compiled.proba_row(&[f32::INFINITY]);
        assert_eq!(nan.to_bits(), right.to_bits());
        let frame = FeatureFrame::from_rows(&[vec![f32::NAN], vec![f32::INFINITY]]).unwrap();
        let out = compiled.predict_proba(&frame).unwrap();
        assert_eq!(out[0].to_bits(), out[1].to_bits());
    }

    #[test]
    fn flattening_numbers_children_right_first() {
        let ds = xor_dataset(120);
        let mut model = Gbdt::new().n_trees(6).min_samples_leaf(2);
        model.fit(&ds).unwrap();
        let compiled = model.compile().unwrap();
        assert!(compiled.narrow, "small ensembles take the narrow form");
        let t = &compiled.tables;
        for n in 0..t.len() {
            let (t_bits, feature, kid) = compiled.node_parts(n);
            assert_eq!(feature, t.feature[n]);
            if t.left[n] == t.right[n] {
                // Leaf: self-loop in the tables; the packed form parks
                // on it via a NaN threshold (`v < NaN` is false for
                // every v) and a self kid.
                assert_eq!(t.left[n] as usize, n);
                assert_eq!(kid as usize, n);
                assert!(f32::from_bits(t_bits).is_nan());
            } else {
                assert_eq!(t.left[n], t.right[n] + 1, "split children right-first");
                assert_eq!(kid, t.right[n]);
                assert_eq!(t_bits, t.threshold[n].to_bits());
            }
        }
    }

    #[test]
    fn wide_fallback_kernel_matches_narrow() {
        // Repack a (small) compiled ensemble in the wide form the huge
        // ensembles would take, and hold both kernels to the same bits.
        let ds = xor_dataset(TILE + 29);
        let mut model = Gbdt::new().n_trees(9).min_samples_leaf(2).seed(5);
        model.fit(&ds).unwrap();
        let compiled = model.compile().unwrap();
        assert!(compiled.narrow);
        let mut wide = compiled.clone();
        let (packed, kid) = pack_tables(&wide.tables, false);
        wide.packed = packed;
        wide.kid = kid;
        wide.narrow = false;
        for n in 0..compiled.tables.len() {
            assert_eq!(compiled.node_parts(n), wide.node_parts(n), "node {n}");
        }
        assert_bitwise_parity(&model, &wide, &ds);
    }

    #[test]
    fn tiled_batches_cross_tile_boundaries_bit_exactly() {
        // More rows than two tiles plus a ragged lane tail, so the
        // batch kernel exercises tile and lane boundaries.
        let ds = xor_dataset(TILE * 2 + 17);
        let mut model = Gbdt::new().n_trees(12).min_samples_leaf(2).seed(3);
        model.fit(&ds).unwrap();
        let compiled = model.compile().unwrap();
        assert_bitwise_parity(&model, &compiled, &ds);
    }

    #[test]
    fn compiled_metadata_matches_model() {
        let ds = xor_dataset(120);
        let mut model = Gbdt::new().n_trees(10).min_samples_leaf(2);
        model.fit(&ds).unwrap();
        let compiled = model.compile().unwrap();
        assert_eq!(compiled.n_trees(), 10);
        assert_eq!(compiled.n_features(), 2);
        assert_eq!(compiled.threshold(), model.threshold());
        assert!(compiled.n_nodes() >= 10);
        assert_bitwise_parity(&model, &compiled, &ds);
    }

    #[test]
    fn dimension_mismatches_are_rejected() {
        let ds = xor_dataset(60);
        let mut model = Gbdt::new().n_trees(3).min_samples_leaf(2);
        model.fit(&ds).unwrap();
        let compiled = model.compile().unwrap();
        let narrow = FeatureFrame::from_rows(&[vec![0.0]]).unwrap();
        assert!(matches!(
            compiled.predict_proba(&narrow),
            Err(MlError::DimensionMismatch { .. })
        ));
        let frame = FeatureFrame::from_rows(&[vec![0.0, 1.0]]).unwrap();
        let mut short_out = [0.0f32; 2];
        assert!(matches!(
            compiled.predict_proba_into(&frame, &mut short_out),
            Err(MlError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn compiled_linear_matches_interpreted() {
        let rows: Vec<Vec<f32>> = (0..40)
            .map(|i| vec![i as f32 / 40.0, ((i * 7) % 13) as f32 / 13.0])
            .collect();
        let y: Vec<f32> = rows
            .iter()
            .map(|r| if r[0] > 0.5 { 1.0 } else { 0.0 })
            .collect();
        let ds = Dataset::from_rows(&rows, &y).unwrap();
        let mut lr = LogisticRegression::new().epochs(80);
        lr.fit(&ds).unwrap();
        let compiled = lr.compile().unwrap();
        assert_eq!(compiled.n_features(), 2);
        assert_eq!(compiled.threshold(), lr.threshold());
        let interp = lr.predict_proba(&ds).unwrap();
        let frame = FeatureFrame::from_rows(&rows).unwrap();
        let mut out = vec![0.0f32; rows.len()];
        compiled.predict_proba_into(&frame, &mut out).unwrap();
        for (i, (a, b)) in interp.iter().zip(&out).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "row {i}");
            let single = compiled.proba_row(&rows[i]);
            assert_eq!(single.to_bits(), a.to_bits(), "proba_row at {i}");
        }
    }

    #[test]
    fn unfitted_linear_does_not_compile() {
        assert!(matches!(
            LogisticRegression::new().compile(),
            Err(MlError::NotFitted)
        ));
    }

    #[test]
    fn frame_reset_reuses_allocation_and_grow_preserves_rows() {
        let mut frame = FeatureFrame::with_capacity(2, 2);
        for i in 0..5 {
            // Forces one grow at the third push.
            frame.push_row(&[i as f32, -(i as f32)]).unwrap();
        }
        assert_eq!(frame.n_rows(), 5);
        for i in 0..5 {
            assert_eq!(frame.get(i, 0), i as f32);
            assert_eq!(frame.get(i, 1), -(i as f32));
        }
        frame.reset(2);
        assert!(frame.is_empty());
        frame.push_row(&[9.0, 8.0]).unwrap();
        assert_eq!(frame.get(0, 0), 9.0);
        assert_eq!(frame.get(0, 1), 8.0);
        assert!(frame.push_row(&[1.0]).is_err());
    }

    #[test]
    fn empty_frame_scores_empty() {
        let ds = xor_dataset(60);
        let mut model = Gbdt::new().n_trees(3).min_samples_leaf(2);
        model.fit(&ds).unwrap();
        let compiled = model.compile().unwrap();
        let mut frame = FeatureFrame::default();
        frame.reset(2);
        assert_eq!(compiled.predict_proba(&frame).unwrap(), Vec::<f32>::new());
    }
}
