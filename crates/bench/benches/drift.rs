//! Continual-learning overhead — what the drift monitor costs on the
//! streaming path, and how long a hot swap stalls the stream.
//!
//! Two measurements feed `BENCH_drift.json` (schema `sbe-bench/drift/1`,
//! gated by `repro check-bench`):
//!
//! * **Monitor overhead** — the same trace replayed through plain
//!   `serve_observed` and through `run_adapt` with the pinned
//!   (quiet) monitor config; the adaptive pass does everything the
//!   plain pass does plus PSI/calibration folding and window
//!   bookkeeping, so the events/sec ratio is the monitor's true
//!   streaming cost. Passivity is asserted before anything is timed:
//!   both passes must score identically, byte for byte.
//!
//! * **Swap pause** — a `StepScorer` is replayed to the middle of the
//!   trace with a batch pending, then `swap_artifact` (flush the
//!   outgoing generation's batch, commit the exchange) is timed; the
//!   worst observed pause across reps is reported. `prepare_swap`
//!   (validation + fastpath compilation) runs off the boundary by
//!   design and stays off the clock.
//!
//! Set `DRIFT_BENCH_OUT` to redirect the JSON artifact.

use criterion::{criterion_group, criterion_main, Criterion};
use driftd::adapt::{run_adapt, AdaptConfig};
use driftd::monitor::{DriftMonitor, MonitorConfig};
use mlkit::gbdt::Gbdt;
use mlkit::model::Classifier;
use sbe_bench::{DriftReport, DriftWorkload};
use sbepred::datasets::DsSplit;
use sbepred::features::{FeatureExtractor, FeatureSpec};
use sbepred::samples::build_samples;
use sbepred::twostage::prepare_with_extractor;
use std::sync::Arc;
use streamd::artifact::{PipelineArtifact, PipelineModel};
use streamd::serve::{serve_observed, LaunchFacts, NullSink, ServeConfig, StepScorer};
use titan_sim::config::SimConfig;
use titan_sim::trace::TraceSet;

const REPS: u32 = 3;

fn fixture() -> (TraceSet, PipelineArtifact, (u64, u64)) {
    let trace = titan_sim::engine::generate(&SimConfig::tiny(13)).expect("trace");
    let samples = build_samples(&trace).expect("samples");
    let fx = FeatureExtractor::new(&trace, &samples).expect("extractor");
    let split = DsSplit::ds1(&trace).expect("split");
    let spec = FeatureSpec::no_telemetry();
    let prepared = prepare_with_extractor(&fx, &samples, &split, &spec).expect("prepare");
    let mut model = Gbdt::new().n_trees(20).min_samples_leaf(2).seed(7);
    model.fit(&prepared.train).expect("fit");
    let offenders: Vec<u32> = fx
        .history()
        .offender_nodes_before(split.train_end_min())
        .into_iter()
        .map(|n| n.0)
        .collect();
    let artifact = PipelineArtifact::new(
        spec,
        offenders,
        prepared.scaler.clone(),
        PipelineModel::Gbdt(model),
        split.train_end_min(),
        split.name(),
    );
    let window = (split.train_end_min(), trace.config().total_minutes());
    (trace, artifact, window)
}

fn plain_pass(trace: &TraceSet, artifact: &PipelineArtifact, cfg: &ServeConfig) -> Vec<u64> {
    let mut sink = NullSink;
    let mut rec = obskit::Recorder::null();
    let report = serve_observed(trace, artifact, cfg, &mut sink, &mut rec).expect("serve");
    report
        .scored
        .iter()
        .map(|s| u64::from(s.probability.to_bits()) ^ (s.minute << 32))
        .collect()
}

/// Replays the stream to `stall_min` with scoring live, then times one
/// `swap_artifact` call — the only work that happens *on* the swap
/// boundary.
fn measure_swap_pause(
    trace: &TraceSet,
    artifact: &PipelineArtifact,
    cfg: &ServeConfig,
    stall_min: u64,
) -> u64 {
    let topology = trace.config().topology;
    let mut step = StepScorer::new(artifact, cfg, topology, Some(trace)).expect("scorer");
    let mut sink = NullSink;
    let mut rec = obskit::Recorder::null();
    let mut scored = Vec::new();
    let catalog = trace.catalog();
    let stream = titan_sim::events::EventStream::new(trace).expect("stream");
    for event in stream {
        match event {
            titan_sim::events::TraceEvent::Tick { minute } => {
                if minute >= stall_min {
                    break;
                }
                step.step_tick(minute, &mut scored, &mut sink, &mut rec)
                    .expect("tick");
            }
            titan_sim::events::TraceEvent::Launch { minute, aprun } => {
                let run = trace.aprun(aprun).expect("aprun");
                let profile = catalog.profile(run.app_id).expect("profile");
                step.step_launch(
                    &LaunchFacts {
                        minute,
                        aprun: aprun.0,
                        app: run.app_id.0,
                        runtime_min: run.runtime_min(),
                        core_util: profile.core_util,
                        mem_util: profile.mem_util,
                        nodes: &run.nodes,
                    },
                    &mut scored,
                    &mut sink,
                    &mut rec,
                )
                .expect("launch");
            }
            titan_sim::events::TraceEvent::SbeVisible {
                minute,
                node,
                app,
                count,
                ..
            } => {
                step.step_sbe(minute, node, app, count, &mut rec)
                    .expect("sbe");
            }
        }
    }
    // Validation and fastpath compilation run off the boundary.
    let prepared = step
        .prepare_swap(Arc::new(artifact.clone()), step.generation() + 1)
        .expect("prepare");
    let t0 = std::time::Instant::now();
    step.swap_artifact(stall_min, prepared, &mut scored, &mut sink, &mut rec)
        .expect("swap");
    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

fn write_report(report: &DriftReport) {
    let path = std::env::var("DRIFT_BENCH_OUT").unwrap_or_else(|_| "BENCH_drift.json".into());
    let json = serde_json::to_string_pretty(report).expect("serialises");
    match std::fs::write(&path, json) {
        Ok(()) => eprintln!("drift report written to {path}"),
        Err(e) => eprintln!("could not write drift report to {path}: {e}"),
    }
}

fn bench_drift(c: &mut Criterion) {
    let (trace, artifact, (from, until)) = fixture();
    let serve_cfg = ServeConfig::window(from, until);
    let adapt_cfg = AdaptConfig {
        serve: serve_cfg,
        ..AdaptConfig::window(from, until)
    };
    let adapt_pass = |trace: &TraceSet, artifact: &PipelineArtifact| {
        let mut sink = NullSink;
        let mut rec = obskit::Recorder::null();
        run_adapt(trace, artifact, &adapt_cfg, &mut sink, &mut rec).expect("adapt")
    };

    // Passivity gate: the monitored pass must score byte-identically to
    // the plain pass before any timing is published.
    let plain_scores = plain_pass(&trace, &artifact, &serve_cfg);
    let probe = adapt_pass(&trace, &artifact);
    assert_eq!(probe.final_generation, 0, "quiet monitor must not fire");
    let adapt_scores: Vec<u64> = probe
        .scored
        .iter()
        .map(|s| u64::from(s.probability.to_bits()) ^ (s.minute << 32))
        .collect();
    assert_eq!(plain_scores, adapt_scores, "monitored pass changed scores");

    // Throughputs: fastest of REPS (min-time capability estimator).
    let n_events = probe.n_events;
    let mut best_plain = f64::INFINITY;
    let mut best_adapt = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = std::time::Instant::now();
        std::hint::black_box(plain_pass(&trace, &artifact, &serve_cfg));
        best_plain = best_plain.min(t0.elapsed().as_secs_f64());
        let t0 = std::time::Instant::now();
        std::hint::black_box(adapt_pass(&trace, &artifact));
        best_adapt = best_adapt.min(t0.elapsed().as_secs_f64());
    }
    let plain_eps = n_events as f64 / best_plain.max(1e-9);
    let adapt_eps = n_events as f64 / best_adapt.max(1e-9);

    // Swap pause: worst of REPS mid-stream swaps.
    let stall_min = from + (until - from) / 2;
    let swap_pause_ns = (0..REPS)
        .map(|_| measure_swap_pause(&trace, &artifact, &serve_cfg, stall_min))
        .max()
        .unwrap_or(0);

    let report = DriftReport::from_rates(
        DriftWorkload {
            events: n_events,
            requests: probe.n_requests,
            pairs: probe.n_pairs,
            swaps: u64::from(REPS),
        },
        plain_eps,
        adapt_eps,
        swap_pause_ns,
    );
    eprintln!(
        "plain {plain_eps:.0} events/s, adaptive {adapt_eps:.0} events/s \
         ({:.2}x), swap pause {:.3} ms",
        report.adapt_ratio,
        swap_pause_ns as f64 / 1e6
    );
    write_report(&report);

    let mut group = c.benchmark_group("drift");
    group.sample_size(10);
    group.bench_function("monitor_fold", |b| {
        // The D006-D008 hot path in isolation: fold one armed row.
        let n = 16;
        let mut monitor = DriftMonitor::new(
            n,
            MonitorConfig {
                baseline_rows: 32,
                ..MonitorConfig::pinned()
            },
        )
        .expect("monitor");
        let rows: Vec<Vec<f32>> = (0..64)
            .map(|i| {
                (0..n)
                    .map(|j| ((i * 31 + j * 7) % 100) as f32 / 50.0)
                    .collect()
            })
            .collect();
        for r in &rows {
            monitor.observe_row(r);
        }
        assert!(monitor.armed());
        let mut i = 0usize;
        b.iter(|| {
            monitor.observe_row(std::hint::black_box(&rows[i % rows.len()]));
            i = i.wrapping_add(1);
        })
    });
    group.bench_function("adapt_replay", |b| {
        b.iter(|| std::hint::black_box(adapt_pass(&trace, &artifact)))
    });
    group.finish();
}

criterion_group!(benches, bench_drift);
criterion_main!(benches);
