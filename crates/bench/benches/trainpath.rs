//! Training-engine throughput — the trainpath trajectory.
//!
//! Times `Gbdt::fit` on the production-sized workload (the same shape
//! the fastpath bench scores: 12k rows x 64 features, 150 trees of
//! depth 10) under all three `TrainMode` engines:
//!
//! * `Reference` — the pre-engine per-feature split finder, kept
//!   verbatim as the baseline every speedup is measured against;
//! * `Exact` — gathered single-pass histogram build, bit-identical to
//!   `Reference` (the default training path);
//! * `Fast` — sibling subtraction + row-block parallelism.
//!
//! Each engine is timed serial and parallel (`Threads::Auto`); the
//! throughput unit is row-visits/sec (`rows x trees / elapsed`), which
//! is invariant across engines on a fixed workload. Results go to the
//! machine-readable `BENCH_train.json` report (schema
//! `sbe-bench/train/1`) that `repro check-bench` gates on in CI; set
//! `TRAINPATH_BENCH_OUT` to redirect the path. Parity is asserted
//! before anything is timed: a fast wrong answer is not a result.

use criterion::{criterion_group, criterion_main, Criterion};
use mlkit::dataset::Dataset;
use mlkit::gbdt::Gbdt;
use mlkit::hist::TrainMode;
use mlkit::model::Classifier;
use parkit::Threads;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use sbe_bench::{TrainEngineRates, TrainReport, TrainWorkload};

/// Same workload shape as the fastpath bench fixture, so the two
/// trajectories (training cost, inference cost) describe one model.
const TRAIN_ROWS: usize = 12_000;
const N_FEATURES: usize = 64;
const N_TREES: usize = 150;
const MAX_DEPTH: usize = 10;
const N_BINS: usize = 64;
const SEED: u64 = 7;

/// Smaller configuration for the Criterion curves: full-scale fits are
/// hand-timed once per engine for the report; Criterion's repeated
/// sampling runs on a workload it can afford.
const CURVE_ROWS: usize = 4_000;
const CURVE_TREES: usize = 40;
const CURVE_DEPTH: usize = 6;

fn synthetic_train(rows: usize) -> Dataset {
    let mut rng = StdRng::seed_from_u64(13);
    let x: Vec<Vec<f32>> = (0..rows)
        .map(|_| {
            (0..N_FEATURES)
                .map(|_| rng.gen::<f32>() * 4.0 - 2.0)
                .collect()
        })
        .collect();
    let y: Vec<f32> = x
        .iter()
        .map(|r| {
            if r.iter().take(8).sum::<f32>() > 0.0 {
                1.0
            } else {
                0.0
            }
        })
        .collect();
    Dataset::from_rows(&x, &y).expect("train dataset")
}

fn fit(train: &Dataset, trees: usize, depth: usize, mode: TrainMode, threads: Threads) -> Gbdt {
    let mut model = Gbdt::new()
        .n_trees(trees)
        .max_depth(depth)
        .min_samples_leaf(1)
        .n_bins(N_BINS)
        .seed(SEED)
        .threads(threads)
        .train_mode(mode);
    model.fit(train).expect("gbdt fits");
    model
}

/// Bit-for-bit / split-level parity gate before any timing: `Exact`
/// must reproduce `Reference` exactly; `Fast` must stay within
/// rounding of it (its summation trees differ, so bit identity is not
/// contractual at this scale — see the trainpath differential suite).
fn assert_parity(train: &Dataset, probe: &Dataset) {
    let score = |mode: TrainMode| -> Vec<f32> {
        let model = fit(train, CURVE_TREES, CURVE_DEPTH, mode, Threads::Serial);
        model.predict_proba(probe).expect("predicts")
    };
    let reference = score(TrainMode::Reference);
    let exact = score(TrainMode::Exact);
    for (i, (a, b)) in reference.iter().zip(&exact).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "exact-engine parity violation at row {i}: reference {a} vs exact {b}"
        );
    }
    let fast = score(TrainMode::Fast);
    for (i, (a, b)) in reference.iter().zip(&fast).enumerate() {
        assert!(
            (a - b).abs() <= 1e-3,
            "fast-engine drift at row {i}: reference {a} vs fast {b}"
        );
    }
}

/// Hand-times one full-scale fit and returns row-visits/sec.
fn train_rate(train: &Dataset, mode: TrainMode, threads: Threads) -> f64 {
    let t0 = std::time::Instant::now();
    std::hint::black_box(fit(train, N_TREES, MAX_DEPTH, mode, threads));
    (TRAIN_ROWS * N_TREES) as f64 / t0.elapsed().as_secs_f64().max(1e-9)
}

fn engine_rates(train: &Dataset, mode: TrainMode) -> TrainEngineRates {
    TrainEngineRates {
        serial_rps: train_rate(train, mode, Threads::Serial),
        parallel_rps: train_rate(train, mode, Threads::Auto),
    }
}

fn write_report(report: &TrainReport) {
    let path = std::env::var("TRAINPATH_BENCH_OUT").unwrap_or_else(|_| "BENCH_train.json".into());
    let json = serde_json::to_string_pretty(report).expect("serialises");
    match std::fs::write(&path, json) {
        Ok(()) => eprintln!("trainpath report written to {path}"),
        Err(e) => eprintln!("could not write trainpath report to {path}: {e}"),
    }
}

fn bench_trainpath(c: &mut Criterion) {
    let full = synthetic_train(TRAIN_ROWS);
    let curve = synthetic_train(CURVE_ROWS);
    let probe = synthetic_train(1_000);
    assert_parity(&curve, &probe);

    let reference = engine_rates(&full, TrainMode::Reference);
    let exact = engine_rates(&full, TrainMode::Exact);
    let fast = engine_rates(&full, TrainMode::Fast);
    let report = TrainReport::from_rates(
        TrainWorkload {
            rows: TRAIN_ROWS,
            n_features: N_FEATURES,
            n_trees: N_TREES,
            max_depth: MAX_DEPTH,
            n_bins: N_BINS,
        },
        reference,
        exact,
        fast,
    );
    eprintln!(
        "train ({TRAIN_ROWS} rows x {N_FEATURES} features, {N_TREES} trees, depth {MAX_DEPTH}): \
         reference {:.0} rvps serial / {:.0} parallel; exact {:.0} / {:.0} ({:.2}x); \
         fast {:.0} / {:.0} ({:.2}x)",
        report.reference.serial_rps,
        report.reference.parallel_rps,
        report.exact.serial_rps,
        report.exact.parallel_rps,
        report.exact_speedup,
        report.fast.serial_rps,
        report.fast.parallel_rps,
        report.fast_speedup
    );
    write_report(&report);

    let mut group = c.benchmark_group("trainpath");
    group.sample_size(10);
    for (name, mode) in [
        ("reference_serial", TrainMode::Reference),
        ("exact_serial", TrainMode::Exact),
        ("fast_serial", TrainMode::Fast),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                fit(
                    std::hint::black_box(&curve),
                    CURVE_TREES,
                    CURVE_DEPTH,
                    mode,
                    Threads::Serial,
                )
            })
        });
    }
    group.bench_function("fast_parallel", |b| {
        b.iter(|| {
            fit(
                std::hint::black_box(&curve),
                CURVE_TREES,
                CURVE_DEPTH,
                TrainMode::Fast,
                Threads::Auto,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_trainpath);
criterion_main!(benches);
