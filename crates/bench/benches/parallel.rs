//! Serial-vs-parallel benchmark pairs for every parkit wiring site.
//!
//! Each pair runs the same workload at `Threads::Serial` and at
//! `Threads::Fixed(4)`; the ratio of the reported times is the speedup.
//! The outputs are bit-identical by construction (see
//! `tests/parallel_equivalence.rs`), so the pairs measure pure
//! scheduling overhead vs fan-out win.
//!
//! The observed ratio is bounded by `std::thread::available_parallelism`:
//! on a ≥4-core host the GBDT-train and trace-generate pairs show the
//! fan-out win; on a single-core host the pairs instead bound the
//! oversubscription overhead (and `Threads::Auto` — the library default —
//! resolves to 1 there, so real runs never pay it).

use criterion::{criterion_group, criterion_main, Criterion};
use mlkit::crossval::cross_validate_with;
use mlkit::dataset::Dataset;
use mlkit::gbdt::Gbdt;
use mlkit::model::Classifier;
use parkit::Threads;
use sbepred::tuning::threshold_sweep_with;
use titan_sim::config::SimConfig;
use titan_sim::engine::generate;

const PAR: Threads = Threads::Fixed(4);

/// A deterministic learnable dataset, large enough to clear every parkit
/// work-size gate (rows × features and the row-pass minimum).
fn synthetic_dataset(n: usize, d: usize) -> Dataset {
    let rows: Vec<Vec<f32>> = (0..n)
        .map(|i| {
            (0..d)
                .map(|j| (((i * 31 + j * 17) % 97) as f32) / 97.0)
                .collect()
        })
        .collect();
    let y: Vec<f32> = rows
        .iter()
        .map(|r| if r[0] + r[1] > r[2] + 0.5 { 1.0 } else { 0.0 })
        .collect();
    Dataset::from_rows(&rows, &y).expect("dataset builds")
}

fn bench_gbdt_train(c: &mut Criterion) {
    let train = synthetic_dataset(6_000, 40);
    let mut group = c.benchmark_group("par_gbdt_train");
    group.sample_size(10);
    for (id, threads) in [("serial", Threads::Serial), ("threads4", PAR)] {
        group.bench_function(id, |b| {
            b.iter(|| {
                let mut model = Gbdt::new()
                    .n_trees(20)
                    .max_depth(5)
                    .min_samples_leaf(5)
                    .seed(3)
                    .threads(threads);
                model.fit(std::hint::black_box(&train)).expect("fits");
                model
            })
        });
    }
    group.finish();
}

fn bench_trace_generate(c: &mut Criterion) {
    let mut group = c.benchmark_group("par_trace_generate");
    group.sample_size(10);
    for (id, threads) in [("serial", Threads::Serial), ("threads4", PAR)] {
        let cfg = SimConfig::tiny(3).with_threads(threads);
        group.bench_function(id, |b| {
            b.iter(|| generate(std::hint::black_box(&cfg)).expect("generates"))
        });
    }
    group.finish();
}

fn bench_crossval(c: &mut Criterion) {
    let ds = synthetic_dataset(4_000, 20);
    let mut group = c.benchmark_group("par_crossval");
    group.sample_size(10);
    for (id, threads) in [("serial", Threads::Serial), ("threads4", PAR)] {
        group.bench_function(id, |b| {
            b.iter(|| {
                cross_validate_with(std::hint::black_box(&ds), 4, 7, threads, || {
                    Gbdt::new()
                        .n_trees(8)
                        .max_depth(4)
                        .min_samples_leaf(5)
                        .seed(3)
                })
                .expect("cv runs")
            })
        });
    }
    group.finish();
}

fn bench_threshold_sweep(c: &mut Criterion) {
    // Many distinct scores → many tie groups, well past the sweep's
    // serial-inline gate.
    let n = 200_000usize;
    let truth: Vec<f32> = (0..n)
        .map(|i| if i % 11 == 0 { 1.0 } else { 0.0 })
        .collect();
    let scores: Vec<f32> = (0..n)
        .map(|i| ((i * 2_654_435_761) % n) as f32 / n as f32)
        .collect();
    let mut group = c.benchmark_group("par_threshold_sweep");
    group.sample_size(10);
    for (id, threads) in [("serial", Threads::Serial), ("threads4", PAR)] {
        group.bench_function(id, |b| {
            b.iter(|| {
                threshold_sweep_with(
                    std::hint::black_box(&truth),
                    std::hint::black_box(&scores),
                    threads,
                )
                .expect("sweeps")
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_gbdt_train,
    bench_trace_generate,
    bench_crossval,
    bench_threshold_sweep
);
criterion_main!(benches);
