//! Time-series forecasting costs: AR fitting (with order selection) and
//! multi-step forecasting — the per-sample cost of the paper's "second
//! approach" feature forecasting.

use criterion::{criterion_group, criterion_main, Criterion};
use tscast::ar::{fit_best_order, ArModel};
use tscast::smooth::{Ewma, HoltLinear};
use tscast::Forecaster;

fn series(n: usize) -> Vec<f64> {
    // AR(2)-ish synthetic telemetry with deterministic pseudo-noise.
    let mut out = Vec::with_capacity(n);
    let (mut a, mut b) = (0.0f64, 0.0f64);
    let mut state = 0x1234_5678_9abc_def0u64;
    for _ in 0..n {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let noise = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
        let x = 0.6 * a - 0.2 * b + noise;
        b = a;
        a = x;
        out.push(50.0 + x);
    }
    out
}

fn bench_ar(c: &mut Criterion) {
    let hist = series(120);
    let mut group = c.benchmark_group("ar");
    group.bench_function("fit_order4_120pts", |b| {
        b.iter(|| ArModel::fit(std::hint::black_box(&hist), 4).expect("fits"))
    });
    group.bench_function("fit_best_order_120pts", |b| {
        b.iter(|| fit_best_order(std::hint::black_box(&hist), 8).expect("fits"))
    });
    let model = ArModel::fit(&hist, 4).expect("fits");
    group.bench_function("forecast_120steps", |b| {
        b.iter(|| {
            model
                .forecast(std::hint::black_box(&hist), 120)
                .expect("forecasts")
        })
    });
    group.finish();
}

fn bench_smoothers(c: &mut Criterion) {
    let hist = series(500);
    let ewma = Ewma::new(0.3).expect("valid alpha");
    let holt = HoltLinear::new(0.5, 0.3).expect("valid weights");
    let mut group = c.benchmark_group("smooth");
    group.bench_function("ewma_500pts", |b| {
        b.iter(|| {
            ewma.forecast(std::hint::black_box(&hist), 10)
                .expect("forecasts")
        })
    });
    group.bench_function("holt_500pts", |b| {
        b.iter(|| {
            holt.forecast(std::hint::black_box(&hist), 10)
                .expect("forecasts")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ar, bench_smoothers);
criterion_main!(benches);
