//! Interpreted vs compiled inference throughput — the fastpath trajectory.
//!
//! Two comparisons on the same fitted models:
//!
//! * **batch** — raw model inference over a pre-built feature buffer:
//!   interpreted `Gbdt::predict_proba` vs the compiled struct-of-arrays
//!   scorer's `predict_proba_into`, on a production-sized ensemble
//!   (deep trees whose node tables outgrow the upper cache levels —
//!   the regime the lockstep-lane kernel is built for). The batch is
//!   kept below the interpreted path's parallel-row threshold so both
//!   sides run serial and the numbers are per-core predictions/sec.
//! * **stream** — the end-to-end `streamd::serve` replay with the
//!   interpreted vs compiled backend, which dilutes the model speedup
//!   with event replay and feature assembly.
//!
//! Besides the Criterion timings, the bench hand-times both sides and
//! writes the machine-readable `BENCH_fastpath.json` report (schema
//! `sbe-bench/fastpath/1`) that `repro check-bench` gates on in CI. Set
//! `FASTPATH_BENCH_OUT` to redirect the report path. Parity is asserted
//! bit-for-bit before anything is timed: a fast wrong answer is not a
//! result.

use criterion::{criterion_group, criterion_main, Criterion};
use mlkit::dataset::Dataset;
use mlkit::fastpath::{CompiledGbdt, FeatureFrame};
use mlkit::gbdt::Gbdt;
use mlkit::model::Classifier;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use sbe_bench::{FastpathReport, FastpathSection, FastpathWorkload, FASTPATH_SCHEMA};
use sbepred::datasets::DsSplit;
use sbepred::features::{FeatureExtractor, FeatureSpec};
use sbepred::samples::build_samples;
use sbepred::twostage::{prepare_with_extractor, run_classifier};
use streamd::artifact::{PipelineArtifact, PipelineModel};
use streamd::serve::{serve, NullSink, ScorerBackend, ServeConfig};
use titan_sim::config::SimConfig;
use titan_sim::engine::generate;
use titan_sim::trace::TraceSet;

/// Below `Gbdt`'s parallel-row threshold (4096): keeps the interpreted
/// side serial so batch numbers compare one core against one core.
const BATCH_ROWS: usize = 4_000;
const N_FEATURES: usize = 64;
/// A production-scale ensemble: ~170k nodes, well past what fits in the
/// upper cache levels, so scoring cost is dominated by per-step memory
/// latency — serialized on the interpreted walk, overlapped eight-wide
/// on the compiled one.
const N_TREES: usize = 150;
const MAX_DEPTH: usize = 10;
const TRAIN_ROWS: usize = 12_000;

struct BatchFixture {
    model: Gbdt,
    compiled: CompiledGbdt,
    ds: Dataset,
    frame: FeatureFrame,
    out: Vec<f32>,
}

fn batch_fixture() -> BatchFixture {
    let mut rng = StdRng::seed_from_u64(13);
    let mut gen_rows = |n: usize| -> Vec<Vec<f32>> {
        (0..n)
            .map(|_| {
                (0..N_FEATURES)
                    .map(|_| rng.gen::<f32>() * 4.0 - 2.0)
                    .collect()
            })
            .collect()
    };
    let train_rows = gen_rows(TRAIN_ROWS);
    let y: Vec<f32> = train_rows
        .iter()
        .map(|r| {
            if r.iter().take(8).sum::<f32>() > 0.0 {
                1.0
            } else {
                0.0
            }
        })
        .collect();
    let train = Dataset::from_rows(&train_rows, &y).expect("train dataset");
    let mut model = Gbdt::new()
        .n_trees(N_TREES)
        .max_depth(MAX_DEPTH)
        .min_samples_leaf(1)
        .seed(7);
    model.fit(&train).expect("fits");
    let compiled = model.compile().expect("compiles");

    let score_rows = gen_rows(BATCH_ROWS);
    let ds = Dataset::from_rows(&score_rows, &vec![0.0; BATCH_ROWS]).expect("score dataset");
    let frame = FeatureFrame::from_rows(&score_rows).expect("frame");
    let out = vec![0.0f32; BATCH_ROWS];
    let f = BatchFixture {
        model,
        compiled,
        ds,
        frame,
        out,
    };
    assert_batch_parity(&f);
    f
}

/// Bit-for-bit parity gate: refuse to publish a speedup for a scorer
/// that disagrees with the reference.
fn assert_batch_parity(f: &BatchFixture) {
    let interpreted = f.model.predict_proba(&f.ds).expect("predicts");
    let mut out = vec![0.0f32; BATCH_ROWS];
    f.compiled
        .predict_proba_into(&f.frame, &mut out)
        .expect("compiled predicts");
    for (i, (a, b)) in interpreted.iter().zip(&out).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "parity violation at row {i}: interpreted {a} vs compiled {b}"
        );
    }
}

struct StreamFixture {
    trace: TraceSet,
    artifact: PipelineArtifact,
    window: (u64, u64),
    n_test: usize,
}

fn stream_fixture() -> StreamFixture {
    let trace = generate(&SimConfig::tiny(13)).expect("generates");
    let samples = build_samples(&trace).expect("samples build");
    let fx = FeatureExtractor::new(&trace, &samples).expect("extractor builds");
    let split = DsSplit::ds1(&trace).expect("split");
    let spec = FeatureSpec::all();
    let prepared = prepare_with_extractor(&fx, &samples, &split, &spec).expect("prepares");
    // The production pipeline's ensemble size (`ModelKind::build`: 120
    // trees, depth 5): stream speedup should reflect serving the model
    // the deployment loop actually ships, not a toy.
    let mut model = Gbdt::new()
        .n_trees(120)
        .max_depth(5)
        .min_samples_leaf(2)
        .seed(7);
    run_classifier(&prepared, &mut model).expect("fits");
    let offenders: Vec<u32> = fx
        .history()
        .offender_nodes_before(split.train_end_min())
        .into_iter()
        .map(|n| n.0)
        .collect();
    let artifact = PipelineArtifact::new(
        spec,
        offenders,
        prepared.scaler.clone(),
        PipelineModel::Gbdt(model),
        split.train_end_min(),
        split.name(),
    );
    StreamFixture {
        trace,
        artifact,
        window: split.test_window(),
        n_test: prepared.test_samples.len(),
    }
}

fn serve_pass(f: &StreamFixture, backend: ScorerBackend) -> usize {
    let cfg = ServeConfig {
        backend,
        ..ServeConfig::window(f.window.0, f.window.1)
    };
    let mut sink = NullSink;
    let report = serve(&f.trace, &f.artifact, &cfg, &mut sink).expect("serves");
    report.scored.len()
}

/// Hand-times `reps` runs of `pass` and returns events-per-second for
/// the *fastest* run (`per_rep` events each). Min-time is the standard
/// capability estimator: scheduler noise only ever slows a run down, so
/// the best rep is the least-contaminated one — which is what a floor
/// gate comparing two sides of the same machine should consume.
fn rate_of(reps: u32, per_rep: usize, mut pass: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        pass();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    per_rep as f64 / best.max(1e-9)
}

fn write_report(report: &FastpathReport) {
    let path = std::env::var("FASTPATH_BENCH_OUT").unwrap_or_else(|_| "BENCH_fastpath.json".into());
    let json = serde_json::to_string_pretty(report).expect("serialises");
    match std::fs::write(&path, json) {
        Ok(()) => eprintln!("fastpath report written to {path}"),
        Err(e) => eprintln!("could not write fastpath report to {path}: {e}"),
    }
}

fn bench_fastpath(c: &mut Criterion) {
    let bf = batch_fixture();
    let sf = stream_fixture();

    // Hand-timed predictions/sec for the JSON report; the vendored
    // criterion cannot report throughput units.
    const BATCH_REPS: u32 = 20;
    const STREAM_REPS: u32 = 5;
    let batch_interpreted = rate_of(BATCH_REPS, BATCH_ROWS, || {
        std::hint::black_box(bf.model.predict_proba(&bf.ds).expect("predicts"));
    });
    let mut out = bf.out.clone();
    let batch_compiled = rate_of(BATCH_REPS, BATCH_ROWS, || {
        bf.compiled
            .predict_proba_into(&bf.frame, &mut out)
            .expect("compiled predicts");
        std::hint::black_box(&out);
    });
    let stream_interpreted = rate_of(STREAM_REPS, sf.n_test, || {
        std::hint::black_box(serve_pass(&sf, ScorerBackend::Interpreted));
    });
    let stream_compiled = rate_of(STREAM_REPS, sf.n_test, || {
        std::hint::black_box(serve_pass(&sf, ScorerBackend::Compiled));
    });

    let report = FastpathReport {
        schema: FASTPATH_SCHEMA.into(),
        workload: FastpathWorkload {
            batch_rows: BATCH_ROWS,
            n_features: N_FEATURES,
            n_trees: N_TREES,
            max_depth: MAX_DEPTH,
        },
        batch: FastpathSection::from_rates(batch_interpreted, batch_compiled),
        stream: FastpathSection::from_rates(stream_interpreted, stream_compiled),
    };
    eprintln!(
        "batch ({BATCH_ROWS} rows x {N_FEATURES} features, {N_TREES} trees, depth {MAX_DEPTH}): \
         interpreted {batch_interpreted:.0} pps, compiled {batch_compiled:.0} pps \
         ({:.2}x)",
        report.batch.speedup
    );
    eprintln!(
        "stream ({} test samples): interpreted {stream_interpreted:.0} pps, \
         compiled {stream_compiled:.0} pps ({:.2}x)",
        sf.n_test, report.stream.speedup
    );
    write_report(&report);

    let mut group = c.benchmark_group("fastpath");
    group.sample_size(10);
    group.bench_function("batch_interpreted", |b| {
        b.iter(|| {
            bf.model
                .predict_proba(std::hint::black_box(&bf.ds))
                .expect("predicts")
        })
    });
    let mut out = bf.out.clone();
    group.bench_function("batch_compiled", |b| {
        b.iter(|| {
            bf.compiled
                .predict_proba_into(std::hint::black_box(&bf.frame), &mut out)
                .expect("compiled predicts")
        })
    });
    group.bench_function("stream_interpreted", |b| {
        b.iter(|| serve_pass(&sf, ScorerBackend::Interpreted))
    });
    group.bench_function("stream_compiled", |b| {
        b.iter(|| serve_pass(&sf, ScorerBackend::Compiled))
    });
    group.finish();
}

criterion_group!(benches, bench_fastpath);
criterion_main!(benches);
