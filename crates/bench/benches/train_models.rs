//! Model-training cost (the paper's Table III) and prediction throughput.
//!
//! The paper reports mean training times of 4.81 s (LR), 40.53 s (GBDT),
//! 20.01 min (NN), and 1.04 h (SVM) on an Intel E5-4627v2. Absolute
//! values are hardware- and scale-bound; the *ordering*
//! LR < GBDT < NN < SVM is the reproducible claim, and `repro table3`
//! reports it at full experiment scale. These benches measure the same
//! models on a stage-2-sized slice so Criterion can track regressions.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mlkit::dataset::Dataset;
use mlkit::gbdt::Gbdt;
use mlkit::linear::LogisticRegression;
use mlkit::model::Classifier;
use mlkit::nn::MlpClassifier;
use mlkit::svm::SvmRbf;
use sbepred::datasets::DsSplit;
use sbepred::features::FeatureSpec;
use sbepred::twostage::prepare;
use titan_sim::config::SimConfig;

/// Builds a stage-2 training dataset from the tiny trace, truncated to at
/// most `cap` samples.
fn stage2_dataset(cap: usize) -> Dataset {
    let trace = titan_sim::engine::generate(&SimConfig::tiny(3)).expect("trace generates");
    let split = DsSplit::ds1(&trace).expect("split fits");
    let prepared = prepare(&trace, &split, &FeatureSpec::all()).expect("prepare succeeds");
    let n = prepared.train.len().min(cap);
    let idx: Vec<usize> = (0..n).collect();
    prepared.train.select(&idx)
}

fn bench_training(c: &mut Criterion) {
    let ds = stage2_dataset(4_000);
    let mut group = c.benchmark_group("train");
    group.sample_size(10);

    group.bench_function("lr", |b| {
        b.iter_batched(
            || {
                LogisticRegression::new()
                    .learning_rate(0.5)
                    .epochs(40)
                    .batch_size(256)
            },
            |mut m| m.fit(&ds).expect("lr fits"),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("gbdt", |b| {
        b.iter_batched(
            || Gbdt::new().n_trees(60).max_depth(5).min_samples_leaf(10),
            |mut m| m.fit(&ds).expect("gbdt fits"),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("nn", |b| {
        b.iter_batched(
            || MlpClassifier::new().hidden_layers(&[64, 32]).epochs(10),
            |mut m| m.fit(&ds).expect("nn fits"),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("svm", |b| {
        b.iter_batched(
            || {
                SvmRbf::new()
                    .gamma(0.02)
                    .c(5.0)
                    .max_samples(800)
                    .max_iters(40)
            },
            |mut m| m.fit(&ds).expect("svm fits"),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_prediction(c: &mut Criterion) {
    let ds = stage2_dataset(4_000);
    let mut gbdt = Gbdt::new().n_trees(60).max_depth(5).min_samples_leaf(10);
    gbdt.fit(&ds).expect("gbdt fits");
    let mut lr = LogisticRegression::new().epochs(20);
    lr.fit(&ds).expect("lr fits");

    let mut group = c.benchmark_group("predict");
    group.bench_function("gbdt_proba", |b| {
        b.iter(|| {
            gbdt.predict_proba(std::hint::black_box(&ds))
                .expect("predicts")
        })
    });
    group.bench_function("lr_proba", |b| {
        b.iter(|| {
            lr.predict_proba(std::hint::black_box(&ds))
                .expect("predicts")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_training, bench_prediction);
criterion_main!(benches);
