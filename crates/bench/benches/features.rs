//! Feature-pipeline throughput: extraction per feature group and SBE
//! history queries.

use criterion::{criterion_group, criterion_main, Criterion};
use sbepred::features::{FeatureExtractor, FeatureSpec};
use sbepred::history::SbeHistory;
use sbepred::samples::build_samples;
use titan_sim::config::SimConfig;
use titan_sim::engine::generate;
use titan_sim::topology::NodeId;

fn bench_extraction(c: &mut Criterion) {
    let trace = generate(&SimConfig::tiny(3)).expect("generates");
    let samples = build_samples(&trace).expect("samples build");
    let fx = FeatureExtractor::new(&trace, &samples).expect("extractor builds");
    let subset = &samples[..256.min(samples.len())];

    let mut group = c.benchmark_group("extract_256_samples");
    group.sample_size(10);
    for (name, spec) in [
        ("hist_only", FeatureSpec::only_hist()),
        ("app_only", FeatureSpec::only_app()),
        ("all_features", FeatureSpec::all()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                fx.extract(std::hint::black_box(subset), &spec)
                    .expect("extracts")
            })
        });
    }
    group.finish();
}

fn bench_history(c: &mut Criterion) {
    let trace = generate(&SimConfig::tiny(3)).expect("generates");
    let samples = build_samples(&trace).expect("samples build");
    let history = SbeHistory::build(&samples).expect("history builds");
    let horizon = trace.config().total_minutes();

    let mut group = c.benchmark_group("history");
    group.bench_function("node_between_1000_queries", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..1000u64 {
                let node = NodeId((i % 64) as u32);
                let t = (i * 37) % horizon;
                acc += history.node_between(node, t.saturating_sub(1440), t);
            }
            acc
        })
    });
    group.bench_function("offender_set", |b| {
        b.iter(|| history.offender_nodes_before(std::hint::black_box(horizon / 2)))
    });
    group.finish();
}

criterion_group!(benches, bench_extraction, bench_history);
criterion_main!(benches);
