//! sbed saturation — end-to-end requests/sec through the loopback
//! daemon at 1, 2, and 8 scoring workers.
//!
//! Each pass spawns a fresh daemon on an ephemeral port, drives it
//! with the seeded mock fleet (64 connections on the 1,600-node scaled
//! topology), and measures wall-clock requests/sec; the fastest of
//! several reps is reported (min-time capability estimator, same as
//! the other benches). Latency percentiles come from fleet-side
//! send→ACK timings under [`sbe_bench::WallClock`].
//!
//! Parity is asserted before anything is timed: the response-stream
//! checksum must be identical at every worker count — a fast wrong
//! answer is not a result. The machine-readable `BENCH_sbed.json`
//! (schema `sbe-bench/sbed/1`) is written for `repro check-bench`;
//! set `SBED_BENCH_OUT` to redirect it.

use criterion::{criterion_group, criterion_main, Criterion};
use sbe_bench::{SbedLatency, SbedReport, SbedWorkerRate, SbedWorkload, WallClock};
use sbed::client::{run_fleet, FleetConfig, FleetOutcome};
use sbed::daemon::{Daemon, DaemonConfig, DaemonReport};
use sbed::fleet::{synth_events, SynthConfig};
use sbed::wire::WireEvent;
use std::sync::Arc;
use streamd::artifact::{PipelineArtifact, PipelineModel};
use streamd::serve::ServeConfig;
use titan_sim::topology::Topology;

const CONNS: usize = 64;
const MINUTES: u64 = 120;
const REPS: u32 = 3;

fn synthetic_artifact(n_nodes: u32) -> PipelineArtifact {
    use mlkit::dataset::Dataset;
    use mlkit::gbdt::Gbdt;
    use mlkit::model::Classifier;
    use mlkit::scaler::StandardScaler;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sbepred::features::FeatureSpec;

    let spec = FeatureSpec::no_telemetry();
    let n = spec.n_features();
    let mut rng = StdRng::seed_from_u64(42);
    let rows: Vec<Vec<f32>> = (0..160)
        .map(|_| (0..n).map(|_| rng.gen::<f32>() * 2.0 - 1.0).collect())
        .collect();
    let y: Vec<f32> = rows
        .iter()
        .map(|r| {
            if r.iter().sum::<f32>() > 0.0 {
                1.0
            } else {
                0.0
            }
        })
        .collect();
    let data = Dataset::from_rows(&rows, &y).expect("dataset");
    let scaler = StandardScaler::fit(&data).expect("scaler");
    let scaled = scaler.transform(&data).expect("transform");
    let mut model = Gbdt::new()
        .n_trees(12)
        .max_depth(3)
        .min_samples_leaf(2)
        .seed(5);
    model.fit(&scaled).expect("fit");
    let offenders: Vec<u32> = (0..n_nodes).step_by(2).collect();
    PipelineArtifact::new(
        spec,
        offenders,
        scaler,
        PipelineModel::Gbdt(model),
        0,
        "synthetic",
    )
}

struct Fixture {
    artifact: Arc<PipelineArtifact>,
    topology: Topology,
    events: Vec<WireEvent>,
}

fn fixture() -> Fixture {
    let topology = Topology::scaled().expect("scaled topology");
    let n_nodes = topology.n_nodes();
    let synth = SynthConfig {
        seed: 20_180_625,
        n_nodes,
        minutes: MINUTES,
        launches_per_min: 30,
        max_nodes_per_launch: 8,
        n_apps: 32,
        sbe_per_min: 20,
    };
    Fixture {
        artifact: Arc::new(synthetic_artifact(n_nodes)),
        topology,
        events: synth_events(&synth),
    }
}

fn one_pass(
    f: &Fixture,
    workers: usize,
    clock: &dyn obskit::Clock,
) -> (FleetOutcome, DaemonReport) {
    let serve_cfg = ServeConfig {
        threads: parkit::Threads::Fixed(workers),
        ..ServeConfig::window(0, MINUTES)
    };
    let cfg = DaemonConfig::new("127.0.0.1:0", serve_cfg, f.topology);
    let daemon = Daemon::spawn(Arc::clone(&f.artifact), cfg).expect("daemon spawns");
    let outcome = run_fleet(
        daemon.addr(),
        &f.events,
        &FleetConfig::healthy(CONNS),
        clock,
    )
    .expect("fleet run");
    let report = daemon.join().expect("daemon join");
    (outcome, report)
}

/// Percentile over all fleet-side latencies (nearest-rank).
fn percentile_ns(latencies: &mut [u64], p: f64) -> u64 {
    latencies.sort_unstable();
    if latencies.is_empty() {
        return 0;
    }
    let rank = ((p * latencies.len() as f64).ceil() as usize).clamp(1, latencies.len());
    latencies.get(rank - 1).copied().unwrap_or(0)
}

fn write_report(report: &SbedReport) {
    let path = std::env::var("SBED_BENCH_OUT").unwrap_or_else(|_| "BENCH_sbed.json".into());
    let json = serde_json::to_string_pretty(report).expect("serialises");
    match std::fs::write(&path, json) {
        Ok(()) => eprintln!("sbed report written to {path}"),
        Err(e) => eprintln!("could not write sbed report to {path}: {e}"),
    }
}

fn bench_sbed(c: &mut Criterion) {
    let f = fixture();
    let n_requests = f.events.len() as u64 + 1; // + FINISH
    let clock = WallClock::new();

    // Parity gate: one pass per worker count, identical response
    // streams required before any timing is published.
    let fnvs: Vec<u64> = [1usize, 2, 8]
        .iter()
        .map(|&w| one_pass(&f, w, &obskit::NullClock).1.response_fnv)
        .collect();
    assert!(
        fnvs.iter().all(|&x| x == fnvs[0]),
        "response streams diverged across worker counts: {fnvs:?}"
    );

    // Saturation rates: fastest of REPS passes per worker count.
    let mut rates = Vec::new();
    let mut latencies: Vec<u64> = Vec::new();
    for workers in [1usize, 2, 8] {
        let mut best = f64::INFINITY;
        for _ in 0..REPS {
            let t0 = std::time::Instant::now();
            let (outcome, _) = one_pass(&f, workers, &clock);
            best = best.min(t0.elapsed().as_secs_f64());
            if workers == 8 {
                latencies = outcome
                    .stats
                    .iter()
                    .flat_map(|s| s.latencies_ns.iter().copied())
                    .collect();
            }
        }
        let rps = n_requests as f64 / best.max(1e-9);
        eprintln!("{workers} workers: {rps:.0} req/s ({n_requests} requests, best of {REPS})");
        rates.push(SbedWorkerRate {
            workers,
            requests_per_sec: rps,
        });
    }

    let latency = SbedLatency {
        p50_ns: percentile_ns(&mut latencies.clone(), 0.50),
        p99_ns: percentile_ns(&mut latencies, 0.99),
    };
    eprintln!(
        "fleet latency: p50 {} ns, p99 {} ns",
        latency.p50_ns, latency.p99_ns
    );

    let report = SbedReport::from_rates(
        SbedWorkload {
            conns: CONNS,
            n_nodes: f.topology.n_nodes(),
            requests: n_requests,
            minutes: MINUTES,
        },
        rates,
        latency,
    );
    eprintln!("worker scaling: {:.2}x", report.scaling);
    write_report(&report);

    let mut group = c.benchmark_group("sbed");
    group.sample_size(10);
    for (name, workers) in [("fleet_1w", 1usize), ("fleet_2w", 2), ("fleet_8w", 8)] {
        group.bench_function(name, |b| {
            b.iter(|| std::hint::black_box(one_pass(&f, workers, &obskit::NullClock)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sbed);
criterion_main!(benches);
