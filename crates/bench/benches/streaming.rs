//! Batch vs streaming scoring throughput.
//!
//! Both sides score the same DS1 test window of `tiny(13)` with the same
//! trained GBDT pipeline. The batch path is the offline evaluator's
//! scoring tail (feature extraction → scaler → classifier over all test
//! samples at once); the streaming path is the full `streamd` serve loop
//! (event replay, incremental features, bounded batching). The vendored
//! criterion has no throughput reporting, so each side also prints an
//! explicit samples/sec line from a hand-timed pass.

use criterion::{criterion_group, criterion_main, Criterion};
use mlkit::gbdt::Gbdt;
use sbepred::datasets::DsSplit;
use sbepred::features::{FeatureExtractor, FeatureSpec};
use sbepred::samples::{build_samples, in_window};
use sbepred::twostage::{prepare_with_extractor, run_classifier};
use streamd::artifact::{PipelineArtifact, PipelineModel};
use streamd::serve::{serve, NullSink, ServeConfig};
use titan_sim::config::SimConfig;
use titan_sim::engine::generate;
use titan_sim::trace::TraceSet;

struct Fixture {
    trace: TraceSet,
    artifact: PipelineArtifact,
    window: (u64, u64),
    n_test: usize,
}

fn fixture() -> Fixture {
    let trace = generate(&SimConfig::tiny(13)).expect("generates");
    let samples = build_samples(&trace).expect("samples build");
    let fx = FeatureExtractor::new(&trace, &samples).expect("extractor builds");
    let split = DsSplit::ds1(&trace).expect("split");
    let spec = FeatureSpec::all();
    let prepared = prepare_with_extractor(&fx, &samples, &split, &spec).expect("prepares");
    let mut model = Gbdt::new().n_trees(20).min_samples_leaf(2).seed(7);
    run_classifier(&prepared, &mut model).expect("fits");
    let offenders: Vec<u32> = fx
        .history()
        .offender_nodes_before(split.train_end_min())
        .into_iter()
        .map(|n| n.0)
        .collect();
    let artifact = PipelineArtifact::new(
        spec,
        offenders,
        prepared.scaler.clone(),
        PipelineModel::Gbdt(model),
        split.train_end_min(),
        split.name(),
    );
    let window = split.test_window();
    let n_test = prepared.test_samples.len();
    Fixture {
        trace,
        artifact,
        window,
        n_test,
    }
}

/// The batch scoring tail: extract every test-window sample, scale, and
/// classify — the offline evaluator's per-scoring-pass cost.
fn batch_score(fx: &FeatureExtractor<'_>, f: &Fixture, test: &[sbepred::samples::LabeledSample]) {
    let spec = *f.artifact.spec();
    let stage2: Vec<_> = test
        .iter()
        .filter(|s| f.artifact.is_offender(s.node.0))
        .copied()
        .collect();
    let raw = fx.extract(&stage2, &spec).expect("extracts");
    let scaled = f.artifact.scaler().transform(&raw).expect("transforms");
    let proba = f.artifact.model().predict_proba(&scaled).expect("predicts");
    std::hint::black_box(proba);
}

fn stream_score(f: &Fixture) {
    let cfg = ServeConfig::window(f.window.0, f.window.1);
    let mut sink = NullSink;
    let report = serve(&f.trace, &f.artifact, &cfg, &mut sink).expect("serves");
    std::hint::black_box(report.scored.len());
}

fn bench_scoring(c: &mut Criterion) {
    let f = fixture();
    let samples = build_samples(&f.trace).expect("samples build");
    let fx = FeatureExtractor::new(&f.trace, &samples).expect("extractor builds");
    let test = in_window(&samples, f.window.0, f.window.1);

    // Hand-timed samples/sec, since vendored criterion cannot report
    // throughput units.
    const REPS: u32 = 5;
    let t0 = std::time::Instant::now();
    for _ in 0..REPS {
        batch_score(&fx, &f, &test);
    }
    let batch_rate = (REPS as usize * f.n_test) as f64 / t0.elapsed().as_secs_f64();
    let t0 = std::time::Instant::now();
    for _ in 0..REPS {
        stream_score(&f);
    }
    let stream_rate = (REPS as usize * f.n_test) as f64 / t0.elapsed().as_secs_f64();
    eprintln!(
        "scoring throughput over {} test samples: batch {batch_rate:.0} samples/sec, \
         streaming {stream_rate:.0} samples/sec",
        f.n_test
    );

    let mut group = c.benchmark_group("scoring");
    group.sample_size(10);
    group.bench_function("batch_test_window", |b| {
        b.iter(|| batch_score(&fx, &f, &test))
    });
    group.bench_function("streaming_test_window", |b| b.iter(|| stream_score(&f)));
    group.finish();
}

criterion_group!(benches, bench_scoring);
criterion_main!(benches);
