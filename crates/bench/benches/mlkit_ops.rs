//! Core ML-substrate operation costs: linear algebra, metrics, clustering,
//! and resampling.

use criterion::{criterion_group, criterion_main, Criterion};
use mlkit::dataset::Dataset;
use mlkit::kmeans::kmeans;
use mlkit::matrix::Matrix;
use mlkit::metrics::{roc_auc, ConfusionMatrix};
use mlkit::sampling::{random_undersample, smote};
use mlkit::stats::spearman;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

fn synthetic_dataset(n: usize, d: usize, pos_rate: f64, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        rows.push((0..d).map(|_| rng.gen::<f32>()).collect::<Vec<f32>>());
        y.push(if rng.gen::<f64>() < pos_rate {
            1.0
        } else {
            0.0
        });
    }
    Dataset::from_rows(&rows, &y).expect("valid dataset")
}

fn bench_matrix(c: &mut Criterion) {
    let a = Matrix::from_vec(128, 128, vec![0.5; 128 * 128]).expect("valid");
    let v = vec![1.0f32; 128];
    let mut group = c.benchmark_group("matrix");
    group.bench_function("matmul_128", |b| {
        b.iter(|| a.matmul(std::hint::black_box(&a)).expect("multiplies"))
    });
    group.bench_function("matvec_128", |b| {
        b.iter(|| a.matvec(std::hint::black_box(&v)).expect("multiplies"))
    });
    group.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let truth: Vec<f32> = (0..10_000)
        .map(|_| if rng.gen::<f32>() < 0.1 { 1.0 } else { 0.0 })
        .collect();
    let scores: Vec<f32> = (0..10_000).map(|_| rng.gen()).collect();
    let pred: Vec<f32> = scores
        .iter()
        .map(|&s| if s > 0.5 { 1.0 } else { 0.0 })
        .collect();
    let xs: Vec<f64> = (0..10_000).map(|_| rng.gen()).collect();
    let ys: Vec<f64> = xs.iter().map(|&x| x + rng.gen::<f64>()).collect();

    let mut group = c.benchmark_group("metrics");
    group.bench_function("confusion_10k", |b| {
        b.iter(|| {
            ConfusionMatrix::from_predictions(&truth, std::hint::black_box(&pred)).expect("valid")
        })
    });
    group.bench_function("roc_auc_10k", |b| {
        b.iter(|| roc_auc(&truth, std::hint::black_box(&scores)).expect("valid"))
    });
    group.bench_function("spearman_10k", |b| {
        b.iter(|| spearman(&xs, std::hint::black_box(&ys)).expect("valid"))
    });
    group.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let ds = synthetic_dataset(5_000, 16, 0.05, 2);
    let mut group = c.benchmark_group("sampling");
    group.sample_size(10);
    group.bench_function("random_undersample", |b| {
        b.iter(|| random_undersample(std::hint::black_box(&ds), 2.0, 1).expect("samples"))
    });
    group.bench_function("smote", |b| {
        b.iter(|| smote(std::hint::black_box(&ds), 2.0, 5, 1).expect("samples"))
    });
    group.finish();
}

fn bench_kmeans(c: &mut Criterion) {
    let ds = synthetic_dataset(2_000, 8, 0.5, 3);
    let mut group = c.benchmark_group("kmeans");
    group.sample_size(10);
    group.bench_function("k8_n2000", |b| {
        b.iter(|| kmeans(std::hint::black_box(ds.x()), 8, 20, 1).expect("clusters"))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_matrix,
    bench_metrics,
    bench_sampling,
    bench_kmeans
);
criterion_main!(benches);
