//! Simulator throughput: full trace generation, per-slot telemetry
//! re-simulation, and on-demand telemetry queries.

use criterion::{criterion_group, criterion_main, Criterion};
use titan_sim::apps::AppCatalog;
use titan_sim::config::SimConfig;
use titan_sim::engine::{generate, TelemetryQueryEngine};
use titan_sim::schedule::Schedule;
use titan_sim::telemetry::TelemetrySimulator;
use titan_sim::topology::SlotId;

fn bench_generate(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate");
    group.sample_size(10);
    group.bench_function("tiny_trace", |b| {
        b.iter(|| generate(std::hint::black_box(&SimConfig::tiny(3))).expect("generates"))
    });
    group.finish();
}

fn bench_slot_simulation(c: &mut Criterion) {
    let cfg = SimConfig::tiny(3);
    let catalog = AppCatalog::generate(&cfg.workload, cfg.seed, cfg.days).expect("catalog");
    let schedule = Schedule::generate(&cfg, &catalog).expect("schedule");
    let sim = TelemetrySimulator::new(&cfg, &schedule, &catalog).expect("simulator");
    let mut group = c.benchmark_group("telemetry");
    group.sample_size(20);
    // Full 30-day horizon for one 4-node slot = ~173k simulated minutes.
    group.bench_function("slot_full_horizon", |b| {
        b.iter(|| {
            sim.simulate_slot(std::hint::black_box(SlotId(1)))
                .expect("simulates")
        })
    });
    group.finish();
}

fn bench_query_engine(c: &mut Criterion) {
    let cfg = SimConfig::tiny(3);
    let trace = generate(&cfg).expect("generates");
    let engine = TelemetryQueryEngine::new(&trace).expect("engine builds");
    // 64 samples spread over the trace.
    let step = (trace.samples().len() / 64).max(1);
    let pairs: Vec<_> = trace
        .samples()
        .iter()
        .step_by(step)
        .map(|s| (s.aprun, s.node))
        .collect();
    let mut group = c.benchmark_group("query");
    group.sample_size(10);
    group.bench_function("telemetry_stats_64_samples", |b| {
        b.iter(|| engine.query(std::hint::black_box(&pairs)).expect("queries"))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_generate,
    bench_slot_simulation,
    bench_query_engine
);
criterion_main!(benches);
