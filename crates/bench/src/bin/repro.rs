//! Regenerates the paper's tables and figures from a synthetic trace.
//!
//! Usage:
//!
//! ```text
//! repro [--config scaled|tiny|titan] [--seed N] [--out DIR]
//!       [--metrics-out FILE] <experiment>...
//! ```
//!
//! `--metrics-out FILE` records pipeline observability metrics (trace
//! generation counts, feature-extraction and TwoStage counters, GBDT
//! training-loop progress) and writes the stable `obskit/1` JSON snapshot
//! to `FILE`. The snapshot is deterministic for a given config/seed.
//!
//! `<experiment>` is one or more of: `fig1 fig2 fig3 fig4 fig5 fig6 fig7
//! fig8 table1 fig10 table2 table3 fig11 table4 fig12 fig13 table5 table6`,
//! or the groups `characterization`, `prediction`, `all`.

use sbe_bench::{persist_json, WallClock};
use sbepred::experiments::{
    characterization as ch, extensions as ext, prediction as pr, ExperimentOutput, Lab, ModelKind,
};
use std::path::PathBuf;
use std::process::ExitCode;
use titan_sim::config::SimConfig;

const CHARACTERIZATION: [&str; 8] = [
    "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
];
const PREDICTION: [&str; 10] = [
    "table1", "fig10", "table2", "table3", "fig11", "table4", "fig12", "fig13", "table5", "table6",
];
const EXTENSIONS: [&str; 5] = [
    "ext_forecast",
    "ext_imbalance",
    "ext_retrain",
    "ext_oracle",
    "ext_importance",
];

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro [--config scaled|tiny|titan] [--seed N] [--out DIR] \
         [--metrics-out FILE] <experiment>...\n\
         experiments: {} {} {} | groups: characterization prediction extensions all",
        CHARACTERIZATION.join(" "),
        PREDICTION.join(" "),
        EXTENSIONS.join(" ")
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut config = "scaled".to_string();
    let mut seed = 42u64;
    let mut out_dir: Option<PathBuf> = None;
    let mut metrics_out: Option<PathBuf> = None;
    let mut wanted: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--config" => match args.next() {
                Some(v) => config = v,
                None => return usage(),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return usage(),
            },
            "--out" => match args.next() {
                Some(v) => out_dir = Some(PathBuf::from(v)),
                None => return usage(),
            },
            "--metrics-out" => match args.next() {
                Some(v) => metrics_out = Some(PathBuf::from(v)),
                None => return usage(),
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() {
        return usage();
    }

    // Expand groups.
    let mut ids: Vec<&str> = Vec::new();
    for w in &wanted {
        match w.as_str() {
            "all" => {
                ids.extend(CHARACTERIZATION);
                ids.extend(PREDICTION);
                ids.extend(EXTENSIONS);
            }
            "characterization" => ids.extend(CHARACTERIZATION),
            "prediction" => ids.extend(PREDICTION),
            "extensions" => ids.extend(EXTENSIONS),
            other
                if CHARACTERIZATION.contains(&other)
                    || PREDICTION.contains(&other)
                    || EXTENSIONS.contains(&other) =>
            {
                ids.push(Box::leak(other.to_string().into_boxed_str()))
            }
            other => {
                eprintln!("unknown experiment `{other}`");
                return usage();
            }
        }
    }
    ids.dedup();

    let cfg = match config.as_str() {
        "scaled" => SimConfig::scaled(seed),
        "tiny" => SimConfig::tiny(seed),
        "titan" => SimConfig::titan_scale(seed),
        other => {
            eprintln!("unknown config `{other}`");
            return usage();
        }
    };

    eprintln!(
        "generating trace: {} nodes, {} days, seed {seed}...",
        cfg.topology.n_nodes(),
        cfg.days
    );
    // A full recorder only when metrics were requested; the null recorder
    // path is a single branch per event.
    let mut rec = if metrics_out.is_some() {
        obskit::Recorder::new()
    } else {
        obskit::Recorder::null()
    };
    let t0 = std::time::Instant::now();
    let trace = match titan_sim::engine::generate_observed(&cfg, &mut rec) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace generation failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "trace ready in {:.1?}: {} apruns, {} samples, positive rate {:.4}",
        t0.elapsed(),
        trace.apruns().len(),
        trace.samples().len(),
        trace.positive_rate()
    );
    // The bench crate owns the workspace's only wall clock; injecting it
    // restores real train-time columns in the tables.
    let wall = WallClock::new();
    let lab = match Lab::new(&trace) {
        Ok(l) => l.with_clock(&wall),
        Err(e) => {
            eprintln!("lab construction failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut failures = 0;
    let emit = |out: ExperimentOutput| {
        println!("{out}");
        if let Some(dir) = &out_dir {
            if let Err(e) = persist_json(dir, &out) {
                eprintln!("warning: could not persist {}: {e}", out.id);
            }
        }
    };

    // table2 and table3 come from one pass; cache when both requested.
    let mut t2t3: Option<(ExperimentOutput, ExperimentOutput)> = None;
    for id in ids {
        let started = std::time::Instant::now();
        let result: sbepred::Result<ExperimentOutput> = match id {
            "fig1" => ch::fig1(&lab),
            "fig2" => ch::fig2(&lab),
            "fig3" => ch::fig3(&lab),
            "fig4" => ch::fig4(&lab),
            "fig5" => ch::fig5(&lab),
            "fig6" => ch::fig6(&lab),
            "fig7" => ch::fig7(&lab),
            "fig8" => ch::fig8(&lab),
            "table1" => pr::table1(&lab),
            "fig10" => pr::fig10(&lab),
            "table2" | "table3" => {
                if t2t3.is_none() {
                    match pr::table2_table3(&lab) {
                        Ok(pair) => t2t3 = Some(pair),
                        Err(e) => {
                            eprintln!("{id} failed: {e}");
                            failures += 1;
                            continue;
                        }
                    }
                }
                let (t2, t3) = t2t3.clone().expect("cached above");
                Ok(if id == "table2" { t2 } else { t3 })
            }
            "fig11" => pr::fig11(&lab),
            "table4" => pr::table4(&lab),
            "fig12" => pr::fig12(&lab),
            "fig13" => pr::fig13(&lab),
            "table5" => pr::table5(&lab),
            "table6" => pr::table6(&lab),
            "ext_forecast" => ext::ext_forecast(&lab),
            "ext_imbalance" => ext::ext_imbalance(&lab),
            "ext_retrain" => ext::ext_retrain(&lab),
            "ext_oracle" => ext::ext_oracle(&lab),
            "ext_importance" => ext::ext_importance(&lab),
            other => {
                eprintln!("unknown experiment `{other}`");
                failures += 1;
                continue;
            }
        };
        match result {
            Ok(out) => {
                emit(out);
                eprintln!("[{id} done in {:.1?}]\n", started.elapsed());
            }
            Err(e) => {
                eprintln!("{id} failed: {e}");
                failures += 1;
            }
        }
    }
    if let Some(path) = &metrics_out {
        // One observed DS1 GBDT pass exercises the whole instrumented
        // pipeline (features -> TwoStage -> GBDT training loop) so the
        // snapshot covers every layer, not just trace generation.
        let mut observed_pass = || -> sbepred::Result<()> {
            let split = sbepred::datasets::DsSplit::ds1(lab.trace())?;
            let spec = sbepred::features::FeatureSpec::all();
            let prepared = sbepred::twostage::prepare_with_extractor_observed(
                lab.extractor(),
                lab.samples(),
                &split,
                &spec,
                &mut rec,
            )?;
            let mut model = ModelKind::Gbdt.build(seed);
            sbepred::twostage::run_classifier_observed(
                &prepared,
                &mut model,
                &mut rec,
                lab.clock(),
            )?;
            Ok(())
        };
        if let Err(e) = observed_pass() {
            eprintln!("metrics pass failed: {e}");
            failures += 1;
        } else {
            eprint!("{}", sbepred::report::MetricsReport::from_recorder(&rec));
            if let Some(dir) = path.parent() {
                if !dir.as_os_str().is_empty() {
                    std::fs::create_dir_all(dir).ok();
                }
            }
            match std::fs::write(path, rec.snapshot_json()) {
                Ok(()) => eprintln!("metrics snapshot written to {}", path.display()),
                Err(e) => {
                    eprintln!("could not write metrics snapshot: {e}");
                    failures += 1;
                }
            }
        }
    }

    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
